package scenario

import (
	"encoding/json"
	"os"
	"time"
)

// Summary is the per-run verdict written as summary.json: identification,
// cohort accounting, the KPI digests, and every evaluated gate. Pass is the
// single bit CI consumes; FailReasons carries the distinct reason codes of
// the gates that failed.
type Summary struct {
	Profile     string    `json:"profile"`
	Description string    `json:"description,omitempty"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
	DurationSec float64   `json:"duration_sec"`
	Samples     int       `json:"samples"`

	Totals       Totals  `json:"totals"`
	Completeness float64 `json:"completeness"`

	// Backlog KPI digests (tasks) split by phase.
	SteadyBacklogP50 float64 `json:"steady_backlog_p50"`
	SteadyBacklogP95 float64 `json:"steady_backlog_p95"`
	BurstBacklogP95  float64 `json:"burst_backlog_p95,omitempty"`
	BacklogMax       float64 `json:"backlog_max"`

	// Client-observed latency digests over the whole run (milliseconds).
	SubmitP50MS float64 `json:"submit_p50_ms"`
	SubmitP95MS float64 `json:"submit_p95_ms"`
	RTTP50MS    float64 `json:"rtt_p50_ms"`
	RTTP95MS    float64 `json:"rtt_p95_ms"`
	RTTP99MS    float64 `json:"rtt_p99_ms"`

	// ThroughputPerSec is observed task completions / load duration.
	ThroughputPerSec float64 `json:"throughput_per_sec"`

	Gates       []GateResult `json:"gates"`
	Valid       bool         `json:"valid"`
	Pass        bool         `json:"pass"`
	FailReasons []string     `json:"fail_reasons,omitempty"`

	// PprofFiles lists profiles captured during the run (burst-peak CPU +
	// heap), relative to the output directory.
	PprofFiles []string `json:"pprof_files,omitempty"`
	PprofError string   `json:"pprof_error,omitempty"`
}

// latencyDigest merges the per-window percentile columns into run-level
// digests, weighting each window's percentile by its event count. An exact
// run-level percentile would need the raw samples; windows keep memory
// bounded and this weighted merge is stable enough for gating trends.
func latencyDigest(samples []Sample, pick func(WindowStats) (float64, int64)) float64 {
	var weighted float64
	var n int64
	for _, s := range samples {
		v, c := pick(s.Window)
		if c > 0 && v > 0 {
			weighted += v * float64(c)
			n += c
		}
	}
	if n == 0 {
		return 0
	}
	return weighted / float64(n)
}

// BuildSummary evaluates gates and assembles the run summary.
func BuildSummary(p Profile, samples []Sample, tot Totals, started, finished time.Time) Summary {
	p = p.normalized()
	gates, valid, pass := EvaluateGates(p, samples, tot)
	s := Summary{
		Profile:     p.Name,
		Description: p.Description,
		StartedAt:   started,
		FinishedAt:  finished,
		DurationSec: finished.Sub(started).Seconds(),
		Samples:     len(samples),
		Totals:      tot,
		Gates:       gates,
		Valid:       valid,
		Pass:        pass,
	}
	s.Completeness = tot.Completeness()
	steady := backlogSeries(samples, PhaseSteady)
	s.SteadyBacklogP50 = percentile(steady, 0.50)
	s.SteadyBacklogP95 = percentile(steady, 0.95)
	s.BurstBacklogP95 = percentile(backlogSeries(samples, PhaseBurst), 0.95)
	for _, v := range backlogSeries(samples, "") {
		if v > s.BacklogMax {
			s.BacklogMax = v
		}
	}
	s.SubmitP50MS = latencyDigest(samples, func(w WindowStats) (float64, int64) { return w.SubmitP50MS, w.Submitted })
	s.SubmitP95MS = latencyDigest(samples, func(w WindowStats) (float64, int64) { return w.SubmitP95MS, w.Submitted })
	s.RTTP50MS = latencyDigest(samples, func(w WindowStats) (float64, int64) { return w.RTTP50MS, w.Completed })
	s.RTTP95MS = latencyDigest(samples, func(w WindowStats) (float64, int64) { return w.RTTP95MS, w.Completed })
	s.RTTP99MS = latencyDigest(samples, func(w WindowStats) (float64, int64) { return w.RTTP99MS, w.Completed })
	if d := s.DurationSec; d > 0 {
		s.ThroughputPerSec = float64(tot.Succeeded+tot.Failed) / d
	}
	for _, g := range gates {
		if !g.Pass {
			s.FailReasons = append(s.FailReasons, g.Reason)
		}
	}
	return s
}

// SaveSummaryJSON writes summary.json at path.
func SaveSummaryJSON(path string, s Summary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
