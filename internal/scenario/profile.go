// Package scenario is the load-and-measure harness: declarative traffic
// profiles (base + burst rates, tenant mix, payload mix) drive a loadgen
// against a running gc-webservice while a poller scrapes /metrics,
// /metrics/fleet, and /debug/fleet at a fixed interval, recording KPI time
// series. Each run emits samples.csv + summary.json with run-validity gates
// (cohort completeness, minimum sample count) and KPI threshold gates — the
// primary KPI is the fleet backlog p95, which after a burst must recover to
// near its steady-state level within a bounded number of poll intervals.
//
// The design follows the benchstat-over-scrapes pattern: measure the system
// from the outside through the same observability surface operators use, so
// a regression in the metrics pipeline fails the run just like a regression
// in the data path.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"globuscompute/internal/workload"
)

// Phase labels attached to every sample, derived from the profile's burst
// schedule at the sample's offset.
const (
	PhaseSteady   = "steady"   // before the first burst window (or no burst)
	PhaseBurst    = "burst"    // inside a burst window
	PhaseRecovery = "recovery" // after a burst window
)

// TenantSpec is one synthetic tenant: a name (used for idempotency-key
// prefixes and reporting) and its base submission rate. Interactive tenants
// submit with the latency-sensitive priority class.
type TenantSpec struct {
	Name        string  `json:"name"`
	RatePerSec  float64 `json:"rate_per_sec"`
	Interactive bool    `json:"interactive,omitempty"`
}

// PayloadBand is one entry of the payload-size mix: tasks draw their
// argument size from the bands proportionally to Weight.
type PayloadBand struct {
	Bytes  int     `json:"bytes"`
	Weight float64 `json:"weight"`
}

// BurstSpec schedules overload windows: every burst multiplies all tenant
// rates by Factor for DurationSec. The first burst begins AfterSec into the
// run; EverySec > 0 repeats bursts at that cadence until the run ends.
type BurstSpec struct {
	AfterSec    float64 `json:"after_sec"`
	DurationSec float64 `json:"duration_sec"`
	EverySec    float64 `json:"every_sec,omitempty"`
	Factor      float64 `json:"factor"`
}

// GateSpec configures the run-validity and KPI gates evaluated over the
// recorded samples. Validity gates decide whether the run measured anything
// at all; KPI gates decide whether the system behaved.
type GateSpec struct {
	// MinSamples is the run-validity floor on recorded samples.
	MinSamples int `json:"min_samples"`
	// MinSteadySamples is how many pre-burst samples the steady baseline
	// needs before the recovery gate is meaningful (default 4 when a burst
	// is scheduled).
	MinSteadySamples int `json:"min_steady_samples,omitempty"`
	// MinCompleteness is the cohort gate: observed-terminal / accepted must
	// reach this fraction by the end of the drain (default 1.0 — every
	// accepted task must reach a terminal state).
	MinCompleteness float64 `json:"min_completeness,omitempty"`
	// Recovery gate (burst profiles): after the last burst ends, the
	// trailing backlog p95 (a RecoveryWindow-sample sliding window) must
	// fall to RecoveryFactor x the steady-state backlog p95 — floored at
	// RecoveryFloor tasks so a near-zero steady baseline doesn't demand the
	// impossible — within RecoverWithin poll intervals.
	RecoveryFactor float64 `json:"recovery_factor,omitempty"`
	RecoveryFloor  float64 `json:"recovery_floor,omitempty"`
	RecoverWithin  int     `json:"recover_within,omitempty"`
	RecoveryWindow int     `json:"recovery_window,omitempty"`
	// MaxSteadyBacklogP95 bounds the steady-phase backlog p95 (0 = gate
	// off). At low utilization backlog should hover near the in-service
	// task count, so a small ceiling catches queue leaks.
	MaxSteadyBacklogP95 float64 `json:"max_steady_backlog_p95,omitempty"`
	// MaxSteadyShedRatio bounds steady-phase sheds / submissions. The
	// default 0 means no steady-state sheds are tolerated; set negative to
	// disable (e.g. profiles that run hot on purpose). Burst-phase sheds
	// never gate — shedding under overload is the designed behavior.
	MaxSteadyShedRatio float64 `json:"max_steady_shed_ratio,omitempty"`
}

// Profile is one declarative scenario: who submits, how fast, with what
// payloads, for how long, and what the recorded series must look like for
// the run to pass.
type Profile struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// DurationSec is the load window. Sampling continues through the drain
	// that follows, so post-burst recovery is observed even when the last
	// burst ends near the load window's edge.
	DurationSec     float64 `json:"duration_sec"`
	PollIntervalSec float64 `json:"poll_interval_sec"`
	// StatusPollIntervalSec paces the client-side roundtrip tracker
	// (batch_status sweeps over outstanding tasks). Default 0.25.
	StatusPollIntervalSec float64 `json:"status_poll_interval_sec,omitempty"`
	// DrainTimeoutSec bounds the wait for outstanding tasks after the load
	// window closes (default 30). Tasks still outstanding at the deadline
	// count against cohort completeness.
	DrainTimeoutSec float64 `json:"drain_timeout_sec,omitempty"`
	// SubmitBatch is tasks per POST /v2/submit (default 8).
	SubmitBatch int          `json:"submit_batch,omitempty"`
	Tenants     []TenantSpec `json:"tenants"`
	Burst       *BurstSpec   `json:"burst,omitempty"`
	PayloadMix  []PayloadBand `json:"payload_mix,omitempty"`
	// ShellFraction of tasks submit as shell-kind payloads (rendered
	// ShellSpec); the rest are python-kind identity calls.
	ShellFraction float64 `json:"shell_fraction,omitempty"`
	// PprofSeconds > 0 captures a CPU profile (plus a heap snapshot) from
	// the webservice's /debug/pprof at the peak of the first burst, written
	// next to samples.csv. Requires the service to run with -pprof.
	PprofSeconds int      `json:"pprof_seconds,omitempty"`
	Gates        GateSpec `json:"gates"`
	Seed         int64    `json:"seed,omitempty"`
}

// normalized returns a copy with defaults applied.
func (p Profile) normalized() Profile {
	if p.PollIntervalSec <= 0 {
		p.PollIntervalSec = 0.5
	}
	if p.StatusPollIntervalSec <= 0 {
		p.StatusPollIntervalSec = 0.25
	}
	if p.DrainTimeoutSec <= 0 {
		p.DrainTimeoutSec = 30
	}
	if p.SubmitBatch <= 0 {
		p.SubmitBatch = 8
	}
	if len(p.PayloadMix) == 0 {
		p.PayloadMix = []PayloadBand{{Bytes: 256, Weight: 0.7}, {Bytes: 2048, Weight: 0.25}, {Bytes: 16384, Weight: 0.05}}
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Gates.MinCompleteness <= 0 {
		p.Gates.MinCompleteness = 1.0
	}
	if p.Burst != nil {
		if p.Gates.MinSteadySamples <= 0 {
			p.Gates.MinSteadySamples = 4
		}
		if p.Gates.RecoveryFactor <= 0 {
			p.Gates.RecoveryFactor = 2.0
		}
		if p.Gates.RecoveryFloor <= 0 {
			p.Gates.RecoveryFloor = 64
		}
		if p.Gates.RecoveryWindow <= 0 {
			p.Gates.RecoveryWindow = 4
		}
		if p.Gates.RecoverWithin <= 0 {
			p.Gates.RecoverWithin = 24
		}
	}
	return p
}

// Validate rejects profiles that cannot drive a run.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("scenario: profile needs a name")
	}
	if p.DurationSec <= 0 {
		return fmt.Errorf("scenario: profile %q: duration_sec must be > 0", p.Name)
	}
	if len(p.Tenants) == 0 {
		return fmt.Errorf("scenario: profile %q: at least one tenant", p.Name)
	}
	total := 0.0
	for _, t := range p.Tenants {
		if t.Name == "" || t.RatePerSec <= 0 {
			return fmt.Errorf("scenario: profile %q: tenant needs name and rate_per_sec > 0", p.Name)
		}
		total += t.RatePerSec
	}
	if total <= 0 {
		return fmt.Errorf("scenario: profile %q: zero aggregate rate", p.Name)
	}
	if b := p.Burst; b != nil {
		if b.Factor <= 0 || b.DurationSec <= 0 {
			return fmt.Errorf("scenario: profile %q: burst needs factor and duration_sec > 0", p.Name)
		}
		if b.AfterSec < 0 || b.AfterSec+b.DurationSec > p.DurationSec {
			return fmt.Errorf("scenario: profile %q: first burst [%g,%g) outside run window", p.Name, b.AfterSec, b.AfterSec+b.DurationSec)
		}
		if b.EverySec > 0 && b.EverySec < b.DurationSec {
			return fmt.Errorf("scenario: profile %q: burst cadence shorter than burst duration", p.Name)
		}
	}
	if p.ShellFraction < 0 || p.ShellFraction > 1 {
		return fmt.Errorf("scenario: profile %q: shell_fraction outside [0,1]", p.Name)
	}
	for _, b := range p.PayloadMix {
		if b.Bytes < 0 || b.Weight < 0 {
			return fmt.Errorf("scenario: profile %q: negative payload band", p.Name)
		}
	}
	return nil
}

// TotalRatePerSec is the aggregate steady-state submission rate.
func (p Profile) TotalRatePerSec() float64 {
	total := 0.0
	for _, t := range p.Tenants {
		total += t.RatePerSec
	}
	return total
}

// inBurst reports whether offset falls inside a scheduled burst window.
func (p Profile) inBurst(offset time.Duration) bool {
	b := p.Burst
	if b == nil {
		return false
	}
	o := offset.Seconds()
	if o < b.AfterSec {
		return false
	}
	since := o - b.AfterSec
	if b.EverySec > 0 {
		// Position within the repeating cadence. A window that starts
		// inside the run counts even when it extends past the nominal end —
		// load simply stops at the run boundary.
		k := int(since / b.EverySec)
		start := b.AfterSec + float64(k)*b.EverySec
		return start < p.DurationSec && o < start+b.DurationSec
	}
	return since < b.DurationSec
}

// RateFactor is the rate multiplier at a given offset (1 outside bursts).
func (p Profile) RateFactor(offset time.Duration) float64 {
	if p.inBurst(offset) {
		return p.Burst.Factor
	}
	return 1
}

// PhaseAt labels an offset: steady until the first burst begins, burst
// inside a window, recovery anywhere after a window.
func (p Profile) PhaseAt(offset time.Duration) string {
	b := p.Burst
	if b == nil {
		return PhaseSteady
	}
	if offset.Seconds() < b.AfterSec {
		return PhaseSteady
	}
	if p.inBurst(offset) {
		return PhaseBurst
	}
	return PhaseRecovery
}

// LastBurstEnd is the offset at which the final scheduled burst window
// closes (false when the profile has no burst).
func (p Profile) LastBurstEnd() (time.Duration, bool) {
	b := p.Burst
	if b == nil {
		return 0, false
	}
	end := b.AfterSec + b.DurationSec
	if b.EverySec > 0 {
		for start := b.AfterSec + b.EverySec; start < p.DurationSec; start += b.EverySec {
			end = start + b.DurationSec
		}
	}
	return time.Duration(end * float64(time.Second)), true
}

// LoadProfile reads a profile from a JSON file.
func LoadProfile(path string) (Profile, error) {
	var p Profile
	data, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("scenario: parse %s: %w", path, err)
	}
	p = p.normalized()
	return p, p.Validate()
}

// tenantMix derives a heavy-tailed tenant set from the workload model: n
// tenants whose rates sum to totalPerSec (the paper's skewed multi-tenant
// traffic, reused as the loadgen's tenant mix).
func tenantMix(seed int64, n int, totalPerSec float64, interactiveEvery int) []TenantSpec {
	rates := workload.TenantRates(seed, n, totalPerSec, 1.1)
	specs := make([]TenantSpec, len(rates))
	for i, r := range rates {
		specs[i] = TenantSpec{Name: r.Name, RatePerSec: r.RatePerSec}
		if interactiveEvery > 0 && i%interactiveEvery == 0 {
			specs[i].Interactive = true
		}
	}
	return specs
}

// Builtin returns a named built-in profile. The short "steady" and "burst"
// profiles size to a 16-agent simulated fleet at 20ms/task (800 tasks/s of
// capacity): steady runs at 25% utilization, burst offers 2x capacity for a
// few seconds and must recover. The "-full" variants run the same shapes
// long enough for stable percentiles (minutes, repeated bursts).
func Builtin(name string) (Profile, bool) {
	var p Profile
	switch name {
	case "steady":
		p = Profile{
			Name:        "steady",
			Description: "steady-state: 200 tasks/s across 6 tenants for 10s; no sheds, flat backlog",
			DurationSec: 10, PollIntervalSec: 0.5,
			Tenants:       tenantMix(7, 6, 200, 3),
			ShellFraction: 0.2,
			Gates: GateSpec{
				MinSamples:          15,
				MaxSteadyBacklogP95: 96,
			},
		}
	case "burst":
		p = Profile{
			Name:        "burst",
			Description: "8x burst for 4s over a 200 tasks/s base; backlog p95 must recover within 12s",
			DurationSec: 24, PollIntervalSec: 0.5,
			Tenants:       tenantMix(11, 6, 200, 3),
			ShellFraction: 0.2,
			Burst:         &BurstSpec{AfterSec: 6, DurationSec: 4, Factor: 8},
			PprofSeconds:  2,
			Gates: GateSpec{
				MinSamples:    36,
				RecoverWithin: 24, // 12s at the 0.5s poll interval
			},
		}
	case "steady-full":
		p = Profile{
			Name:        "steady-full",
			Description: "steady-state soak: 200 tasks/s for 2 minutes",
			DurationSec: 120, PollIntervalSec: 1,
			Tenants:       tenantMix(7, 8, 200, 3),
			ShellFraction: 0.2,
			Gates: GateSpec{
				MinSamples:          100,
				MaxSteadyBacklogP95: 96,
			},
		}
	case "burst-full":
		p = Profile{
			Name:        "burst-full",
			Description: "repeated 8x bursts (6s every 40s) over 3 minutes; every recovery gated",
			DurationSec: 180, PollIntervalSec: 1,
			Tenants:       tenantMix(11, 8, 200, 3),
			ShellFraction: 0.2,
			Burst:         &BurstSpec{AfterSec: 20, DurationSec: 6, EverySec: 40, Factor: 8},
			PprofSeconds:  3,
			Gates: GateSpec{
				MinSamples:    150,
				RecoverWithin: 20,
			},
		}
	default:
		return Profile{}, false
	}
	return p.normalized(), true
}

// BuiltinNames lists the built-in profiles for CLI help.
func BuiltinNames() []string { return []string{"steady", "burst", "steady-full", "burst-full"} }
