package scenario

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"time"
)

// CapturePprof pulls a CPU profile (cpuSeconds long) and a heap snapshot
// from a /debug/pprof-serving process into dir, named <prefix>.cpu.pb.gz
// and <prefix>.heap.pb.gz. The service must run with -pprof; token rides
// the query string for the webservice's debug auth (agents serve pprof
// unauthenticated on their metrics mux and ignore it).
func CapturePprof(dir, prefix, baseURL, token string, cpuSeconds int) ([]string, error) {
	if cpuSeconds <= 0 {
		cpuSeconds = 2
	}
	client := &http.Client{Timeout: time.Duration(cpuSeconds+30) * time.Second}
	tok := ""
	if token != "" {
		tok = "&token=" + url.QueryEscape(token)
	}
	var files []string
	fetch := func(path, out string) error {
		resp, err := client.Get(baseURL + path + tok)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %d", path, resp.StatusCode)
		}
		f, err := os.Create(filepath.Join(dir, out))
		if err != nil {
			return err
		}
		if _, err := io.Copy(f, resp.Body); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		files = append(files, out)
		return nil
	}
	// CPU first — it blocks for cpuSeconds, landing the heap snapshot right
	// at the end of the capture window.
	if err := fetch(fmt.Sprintf("/debug/pprof/profile?seconds=%d", cpuSeconds), prefix+".cpu.pb.gz"); err != nil {
		return files, err
	}
	if err := fetch("/debug/pprof/heap?gc=0", prefix+".heap.pb.gz"); err != nil {
		return files, err
	}
	return files, nil
}
