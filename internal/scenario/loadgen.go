package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/sdk"
	"globuscompute/internal/webservice"
)

// maxWinLatSamples bounds per-window latency sample memory; counts beyond
// the cap still count, only their latency samples are dropped.
const maxWinLatSamples = 16384

// LoadgenConfig wires a Loadgen against a running service.
type LoadgenConfig struct {
	// Service is the REST host:port; Token authenticates every tenant (per
	// the bootstrap identity — tenant separation here is about traffic
	// shape, not auth isolation).
	Service string
	Token   string
	// Target receives every submission: a single endpoint ID, a routing
	// group ID (placement fans out), or a multi-user endpoint ID.
	Target  protocol.UUID
	Profile Profile
	// FnPython/FnShell are pre-registered function IDs for the task-type
	// mix (FnShell may be empty when ShellFraction is 0).
	FnPython protocol.UUID
	FnShell  protocol.UUID
}

// Loadgen drives the profile's tenants against the service: paced batch
// submissions with burst windows, a batch_status sweep observing task
// roundtrips, and windowed client-side stats drained by the sampler.
type Loadgen struct {
	cfg   LoadgenConfig
	start time.Time

	mu      sync.Mutex
	tot     Totals
	pending map[protocol.UUID]time.Time
	win     winAccum

	quit     chan struct{} // closes when the load window ends
	loadDone sync.WaitGroup
	pollQuit chan struct{}
	pollDone chan struct{}
}

// winAccum collects one sampler window of client-side events.
type winAccum struct {
	submitted, accepted, shed, errors int64
	completed, failed                 int64
	submitLatMS, rttLatMS             []float64
}

// NewLoadgen validates the config and builds an idle loadgen.
func NewLoadgen(cfg LoadgenConfig) (*Loadgen, error) {
	cfg.Profile = cfg.Profile.normalized()
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.Target == "" {
		return nil, fmt.Errorf("scenario: loadgen needs a target endpoint or routing group")
	}
	if cfg.FnPython == "" {
		return nil, fmt.Errorf("scenario: loadgen needs a registered python function")
	}
	if cfg.Profile.ShellFraction > 0 && cfg.FnShell == "" {
		return nil, fmt.Errorf("scenario: profile %q mixes shell tasks but no shell function is registered", cfg.Profile.Name)
	}
	return &Loadgen{
		cfg:      cfg,
		pending:  make(map[protocol.UUID]time.Time),
		quit:     make(chan struct{}),
		pollQuit: make(chan struct{}),
		pollDone: make(chan struct{}),
	}, nil
}

// newClient builds a per-goroutine SDK client with retries disabled: the
// harness measures sheds and transport errors instead of papering over
// them.
func (l *Loadgen) newClient() *sdk.Client {
	c := sdk.NewClient(l.cfg.Service, l.cfg.Token)
	c.MaxRetries = -1
	return c
}

// Start launches one pacing goroutine per tenant plus the roundtrip
// sweeper. Offsets (burst windows, phases) are measured from start.
func (l *Loadgen) Start(start time.Time) {
	l.start = start
	for i, t := range l.cfg.Profile.Tenants {
		l.loadDone.Add(1)
		go l.tenant(t, rand.New(rand.NewSource(l.cfg.Profile.Seed+int64(i)*7919)))
	}
	go l.sweep()
}

// StopLoad ends the load window: tenants finish their in-flight batch and
// exit. The roundtrip sweeper keeps running for Drain.
func (l *Loadgen) StopLoad() {
	select {
	case <-l.quit:
	default:
		close(l.quit)
	}
	l.loadDone.Wait()
}

// Drain waits for every accepted task to reach a terminal state, up to
// timeout, then stops the sweeper. Returns true when the cohort fully
// drained.
func (l *Loadgen) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		l.mu.Lock()
		n := len(l.pending)
		l.mu.Unlock()
		if n == 0 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	close(l.pollQuit)
	<-l.pollDone
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending) == 0
}

// Totals snapshots the cumulative counters.
func (l *Loadgen) Totals() Totals {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.tot
	t.Outstanding = int64(len(l.pending))
	return t
}

// TakeWindow drains the stats accumulated since the previous call
// (implements WindowSource for the sampler).
func (l *Loadgen) TakeWindow() WindowStats {
	l.mu.Lock()
	w := l.win
	l.win = winAccum{}
	l.mu.Unlock()
	return WindowStats{
		Submitted: w.submitted, Accepted: w.accepted, Shed: w.shed, Errors: w.errors,
		Completed: w.completed, Failed: w.failed,
		SubmitP50MS: percentile(w.submitLatMS, 0.50),
		SubmitP95MS: percentile(w.submitLatMS, 0.95),
		SubmitP99MS: percentile(w.submitLatMS, 0.99),
		RTTP50MS:    percentile(w.rttLatMS, 0.50),
		RTTP95MS:    percentile(w.rttLatMS, 0.95),
		RTTP99MS:    percentile(w.rttLatMS, 0.99),
	}
}

// payloadFor draws a task payload: python identity calls carry a filler
// argument sized from the payload mix; shell tasks are a constant rendered
// ShellSpec (the size mix exercises the python data path).
func (l *Loadgen) payloadFor(rng *rand.Rand) (protocol.UUID, []byte) {
	if l.cfg.Profile.ShellFraction > 0 && rng.Float64() < l.cfg.Profile.ShellFraction {
		return l.cfg.FnShell, []byte(`{"command":"echo scenario"}`)
	}
	mix := l.cfg.Profile.PayloadMix
	total := 0.0
	for _, b := range mix {
		total += b.Weight
	}
	size := mix[0].Bytes
	if total > 0 {
		pick := rng.Float64() * total
		for _, b := range mix {
			if pick -= b.Weight; pick <= 0 {
				size = b.Bytes
				break
			}
		}
	}
	filler := make([]byte, size)
	for i := range filler {
		filler[i] = 'x'
	}
	payload, _ := json.Marshal(map[string]any{"entrypoint": "identity", "args": []any{string(filler)}})
	return l.cfg.FnPython, payload
}

// tenant paces one tenant's submissions: batches of SubmitBatch tasks at
// rate_per_sec x the profile's burst factor, measured against absolute due
// times so pacing error does not accumulate. A tenant that falls more than
// a second behind (slow harness host) skips ahead instead of compressing
// the deficit into a phantom burst.
func (l *Loadgen) tenant(spec TenantSpec, rng *rand.Rand) {
	defer l.loadDone.Done()
	client := l.newClient()
	dur := time.Duration(l.cfg.Profile.DurationSec * float64(time.Second))
	b := l.cfg.Profile.SubmitBatch
	next := l.start
	for {
		select {
		case <-l.quit:
			return
		default:
		}
		now := time.Now()
		offset := now.Sub(l.start)
		if offset >= dur {
			return
		}
		rate := spec.RatePerSec * l.cfg.Profile.RateFactor(offset)

		reqs := make([]webservice.SubmitRequest, b)
		for i := range reqs {
			fn, payload := l.payloadFor(rng)
			reqs[i] = webservice.SubmitRequest{EndpointID: l.cfg.Target, FunctionID: fn, Payload: payload}
		}
		t0 := time.Now()
		ids, err := client.SubmitBatchOpts(reqs, webservice.SubmitOptions{Interactive: spec.Interactive})
		latMS := float64(time.Since(t0)) / float64(time.Millisecond)
		l.recordSubmit(ids, err, b, latMS, t0)

		next = next.Add(time.Duration(float64(b) / rate * float64(time.Second)))
		if now = time.Now(); next.Before(now.Add(-time.Second)) {
			next = now
		}
		if wait := time.Until(next); wait > 0 {
			select {
			case <-l.quit:
				return
			case <-time.After(wait):
			}
		}
	}
}

func (l *Loadgen) recordSubmit(ids []protocol.UUID, err error, batch int, latMS float64, at time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := int64(batch)
	l.tot.Submitted += n
	l.win.submitted += n
	if len(l.win.submitLatMS) < maxWinLatSamples {
		l.win.submitLatMS = append(l.win.submitLatMS, latMS)
	}
	switch {
	case err == nil:
		l.tot.Accepted += n
		l.win.accepted += n
		for _, id := range ids {
			l.pending[id] = at
		}
	case errors.Is(err, sdk.ErrOverloaded):
		l.tot.Shed += n
		l.win.shed += n
	default:
		l.tot.Errors += n
		l.win.errors += n
	}
}

// batchStatusLimit matches the service's batch_status request cap.
const batchStatusLimit = 1024

// sweep polls batch_status over the outstanding cohort, recording
// client-observed roundtrips as tasks reach terminal states. It runs from
// Start until Drain ends it.
func (l *Loadgen) sweep() {
	defer close(l.pollDone)
	client := l.newClient()
	interval := time.Duration(l.cfg.Profile.StatusPollIntervalSec * float64(time.Second))
	for {
		select {
		case <-l.pollQuit:
			return
		case <-time.After(interval):
		}
		l.mu.Lock()
		ids := make([]protocol.UUID, 0, len(l.pending))
		for id := range l.pending {
			ids = append(ids, id)
		}
		l.mu.Unlock()
		for lo := 0; lo < len(ids); lo += batchStatusLimit {
			hi := lo + batchStatusLimit
			if hi > len(ids) {
				hi = len(ids)
			}
			sts, err := client.TaskStatuses(ids[lo:hi])
			if err != nil {
				break // transient; retry next sweep
			}
			now := time.Now()
			l.mu.Lock()
			for _, st := range sts {
				if !st.State.Terminal() {
					continue
				}
				submitted, ok := l.pending[st.TaskID]
				if !ok {
					continue
				}
				delete(l.pending, st.TaskID)
				if st.State == protocol.StateSuccess {
					l.tot.Succeeded++
					l.win.completed++
				} else {
					l.tot.Failed++
					l.win.failed++
				}
				if len(l.win.rttLatMS) < maxWinLatSamples {
					l.win.rttLatMS = append(l.win.rttLatMS, float64(now.Sub(submitted))/float64(time.Millisecond))
				}
			}
			l.mu.Unlock()
		}
	}
}
