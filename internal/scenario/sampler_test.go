package scenario

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"globuscompute/internal/obs"
)

// fakeWindow hands the sampler a canned client window.
type fakeWindow struct{ w WindowStats }

func (f *fakeWindow) TakeWindow() WindowStats { return f.w }

// syntheticService serves canned bodies for all four sampler sources,
// checking that the debug token rides every request.
func syntheticService(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	requireToken := func(r *http.Request) bool {
		return r.URL.Query().Get("token") == "tok" || r.Header.Get("Authorization") == "Bearer tok"
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !requireToken(r) {
			http.Error(w, "forbidden", http.StatusForbidden)
			return
		}
		w.Write([]byte(`# TYPE gc_shed_total counter
gc_shed_total 12
# TYPE gc_admission_admitted_total counter
gc_admission_admitted_total 400
# TYPE gc_route_picks_total counter
gc_route_picks_total 380
# TYPE gc_broker_depth_tasks_aaa gauge
gc_broker_depth_tasks_aaa 7
# TYPE gc_broker_depth_tasks_bbb gauge
gc_broker_depth_tasks_bbb 5
# TYPE gc_broker_depth_results_aaa gauge
gc_broker_depth_results_aaa 99
`))
	})
	mux.HandleFunc("/metrics/fleet", func(w http.ResponseWriter, r *http.Request) {
		if !requireToken(r) {
			http.Error(w, "forbidden", http.StatusForbidden)
			return
		}
		w.Write([]byte(`# TYPE gc_endpoint_service_rate_tasks_per_second gauge
gc_endpoint_service_rate_tasks_per_second{endpoint="ep-1"} 42.5
gc_endpoint_service_rate_tasks_per_second{endpoint="ep-2"} 7.5
`))
	})
	mux.HandleFunc("/debug/fleet", func(w http.ResponseWriter, r *http.Request) {
		if !requireToken(r) {
			http.Error(w, "forbidden", http.StatusForbidden)
			return
		}
		egress := int64(4)
		rep := fleetReport{
			Fleet: obs.FleetHealth{
				EndpointsTotal: 2, EndpointsOnline: 2,
				Endpoints: []obs.EndpointHealth{
					{EndpointID: "ep-1", Online: true, PendingTasks: 30, EgressBacklog: &egress},
					{EndpointID: "ep-2", Online: true, PendingTasks: 10},
				},
			},
			Alerts: []obs.Alert{
				{Rule: "backlog", EndpointID: "ep-1", State: obs.StateFiring},
				{Rule: "latency", EndpointID: "ep-2", State: obs.StatePending},
			},
		}
		json.NewEncoder(w).Encode(rep)
	})
	mux.HandleFunc("/v2/usage", func(w http.ResponseWriter, r *http.Request) {
		if !requireToken(r) {
			http.Error(w, "forbidden", http.StatusForbidden)
			return
		}
		w.Write([]byte(`{"tasks":100,"tasks_by_state":{"success":90,"received":4,"delivered":6}}`))
	})
	return httptest.NewServer(mux)
}

func TestSamplerScrapesAllSources(t *testing.T) {
	srv := syntheticService(t)
	defer srv.Close()

	p, ok := Builtin("burst")
	if !ok {
		t.Fatal("missing builtin burst profile")
	}
	win := &fakeWindow{w: WindowStats{Submitted: 80, Accepted: 78, Shed: 2, Completed: 70, RTTP95MS: 33}}
	s := NewSampler(SamplerConfig{
		Targets: Targets{BaseURL: srv.URL, Token: "tok"},
		Phase:   p.PhaseAt,
		Window:  win,
	})
	s.start = time.Now()
	sm := s.sampleAt(s.start.Add(7 * time.Second)) // mid-burst offset

	if sm.ScrapeErrs != 0 {
		t.Fatalf("scrape errors: %+v", sm)
	}
	if sm.Phase != PhaseBurst {
		t.Fatalf("phase at +7s = %q, want burst", sm.Phase)
	}
	// Broker depth sums task queues only — not the results queue gauge.
	if sm.BrokerDepth != 12 {
		t.Fatalf("broker depth = %d, want 12", sm.BrokerDepth)
	}
	if sm.FleetPending != 40 || sm.FleetEgress != 4 {
		t.Fatalf("fleet pending/egress = %d/%d, want 40/4", sm.FleetPending, sm.FleetEgress)
	}
	if want := 40 + 4 + 12; sm.Backlog != want {
		t.Fatalf("backlog KPI = %d, want %d", sm.Backlog, want)
	}
	if sm.ServiceRateSum != 50 {
		t.Fatalf("service rate sum = %g, want 50", sm.ServiceRateSum)
	}
	if sm.ShedsTotal != 12 || sm.AdmittedTotal != 400 || sm.RoutePicksTotal != 380 {
		t.Fatalf("counters = %g/%g/%g", sm.ShedsTotal, sm.AdmittedTotal, sm.RoutePicksTotal)
	}
	if sm.EndpointsOnline != 2 || sm.AlertsFiring != 1 {
		t.Fatalf("online=%d firing=%d, want 2/1 (pending alerts must not count)", sm.EndpointsOnline, sm.AlertsFiring)
	}
	if sm.TasksByState["success"] != 90 || sm.TasksByState["delivered"] != 6 {
		t.Fatalf("task states = %v", sm.TasksByState)
	}
	if sm.Window.Submitted != 80 || sm.Window.RTTP95MS != 33 {
		t.Fatalf("window not drained from source: %+v", sm.Window)
	}
}

func TestSamplerRecordsScrapeFailures(t *testing.T) {
	// A server that answers nothing keeps the time base intact: the sample
	// is recorded with zero fields and all four sources counted as errors.
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	s := NewSampler(SamplerConfig{Targets: Targets{BaseURL: srv.URL, Token: "tok"}})
	s.start = time.Now()
	sm := s.sampleAt(s.start.Add(time.Second))
	if sm.ScrapeErrs != 4 {
		t.Fatalf("scrape errs = %d, want 4", sm.ScrapeErrs)
	}
	if sm.Backlog != 0 || sm.Phase != PhaseSteady {
		t.Fatalf("failed sample not zero-valued: %+v", sm)
	}
}

func TestSamplerCollectsSeries(t *testing.T) {
	srv := syntheticService(t)
	defer srv.Close()
	s := NewSampler(SamplerConfig{
		Targets:  Targets{BaseURL: srv.URL, Token: "tok"},
		Interval: 20 * time.Millisecond,
	})
	s.Start(time.Now())
	time.Sleep(150 * time.Millisecond)
	samples := s.Stop()
	if len(samples) < 3 {
		t.Fatalf("collected %d samples, want >= 3", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].OffsetSec <= samples[i-1].OffsetSec {
			t.Fatalf("offsets not monotonic: %g then %g", samples[i-1].OffsetSec, samples[i].OffsetSec)
		}
	}
}
