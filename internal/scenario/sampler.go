package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"globuscompute/internal/obs"
	"globuscompute/internal/protocol"
)

// Targets locates a running web service for the sampler and pprof capture:
// the REST base URL and the bearer/debug token (the same token works for
// both — REST sends it as a Bearer header, debug endpoints as ?token=).
type Targets struct {
	BaseURL string
	Token   string
}

// SamplerConfig wires a Sampler.
type SamplerConfig struct {
	Targets  Targets
	Interval time.Duration
	// Phase labels each sample from its offset (Profile.PhaseAt).
	Phase func(offset time.Duration) string
	// Window, when non-nil, is drained once per sample for the
	// client-observed columns.
	Window WindowSource
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// Sampler polls /metrics, /metrics/fleet, /debug/fleet, and /v2/usage at a
// fixed interval, appending one Sample per tick. It keeps sampling through
// the drain after load stops — that tail is where recovery gates look.
type Sampler struct {
	cfg   SamplerConfig
	start time.Time

	mu      sync.Mutex
	samples []Sample

	stop chan struct{}
	done chan struct{}
}

// NewSampler builds a sampler; call Start then Stop.
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.Phase == nil {
		cfg.Phase = func(time.Duration) string { return PhaseSteady }
	}
	return &Sampler{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
}

// Start begins polling; offsets are measured from start.
func (s *Sampler) Start(start time.Time) {
	s.start = start
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case now := <-tick.C:
				sm := s.sampleAt(now)
				s.mu.Lock()
				s.samples = append(s.samples, sm)
				s.mu.Unlock()
			}
		}
	}()
}

// Stop halts polling and returns the recorded series.
func (s *Sampler) Stop() []Sample {
	close(s.stop)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...)
}

// sampleAt performs one poll of every source. Failed sources leave their
// fields zero and bump ScrapeErrs — a sample is still recorded so the time
// base stays regular.
func (s *Sampler) sampleAt(now time.Time) Sample {
	offset := now.Sub(s.start)
	sm := Sample{
		Time:      now,
		OffsetSec: offset.Seconds(),
		Phase:     s.cfg.Phase(offset),
	}
	if err := s.scrapeMetrics(&sm); err != nil {
		sm.ScrapeErrs++
	}
	if err := s.scrapeFederation(&sm); err != nil {
		sm.ScrapeErrs++
	}
	if err := s.scrapeFleet(&sm); err != nil {
		sm.ScrapeErrs++
	}
	if err := s.scrapeUsage(&sm); err != nil {
		sm.ScrapeErrs++
	}
	if s.cfg.Window != nil {
		sm.Window = s.cfg.Window.TakeWindow()
	}
	sm.Backlog = sm.FleetPending + sm.FleetEgress + sm.BrokerDepth
	return sm
}

func (s *Sampler) get(path string) (io.ReadCloser, error) {
	u := s.cfg.Targets.BaseURL + path
	if strings.Contains(path, "?") {
		u += "&token=" + url.QueryEscape(s.cfg.Targets.Token)
	} else {
		u += "?token=" + url.QueryEscape(s.cfg.Targets.Token)
	}
	req, err := http.NewRequest("GET", u, nil)
	if err != nil {
		return nil, err
	}
	// Debug endpoints check ?token=, REST endpoints the Bearer header; send
	// both so one helper serves every source.
	req.Header.Set("Authorization", "Bearer "+s.cfg.Targets.Token)
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: %d", path, resp.StatusCode)
	}
	return resp.Body, nil
}

// scrapeMetrics reads the service-side counters and broker queue depths
// from /metrics (Prometheus text).
func (s *Sampler) scrapeMetrics(sm *Sample) error {
	body, err := s.get("/metrics")
	if err != nil {
		return err
	}
	defer body.Close()
	exp, err := obs.ParseExposition(body)
	if err != nil {
		return err
	}
	first := func(name string) float64 {
		if f := exp.Family(name); f != nil && len(f.Samples) > 0 {
			return f.Samples[0].Value
		}
		return 0
	}
	sm.ShedsTotal = first("gc_shed_total")
	sm.AdmittedTotal = first("gc_admission_admitted_total")
	sm.RoutePicksTotal = first("gc_route_picks_total")
	// Broker task-queue depth gauges are one family per queue
	// (gc_broker_depth_tasks_<id>); result/command queues are excluded —
	// tasks parked there are already counted by the endpoint's own view.
	depth := 0.0
	for name, f := range exp.Families {
		if strings.HasPrefix(name, "gc_broker_depth_tasks_") && len(f.Samples) > 0 {
			depth += f.Samples[0].Value
		}
	}
	sm.BrokerDepth = int(depth)
	return nil
}

// scrapeFederation reads /metrics/fleet and sums the per-endpoint
// service-rate EWMA gauges (the fleet's smoothed drain capacity).
func (s *Sampler) scrapeFederation(sm *Sample) error {
	body, err := s.get("/metrics/fleet")
	if err != nil {
		return err
	}
	defer body.Close()
	exp, err := obs.ParseExposition(body)
	if err != nil {
		return err
	}
	if f := exp.Family("gc_endpoint_service_rate_tasks_per_second"); f != nil {
		for _, sp := range f.Samples {
			sm.ServiceRateSum += sp.Value
		}
	}
	return nil
}

// fleetReport mirrors the GET /debug/fleet response body.
type fleetReport struct {
	Fleet  obs.FleetHealth `json:"fleet"`
	Alerts []obs.Alert     `json:"alerts"`
}

// scrapeFleet reads the structured fleet health: per-endpoint pending and
// egress backlogs, liveness, and firing alerts.
func (s *Sampler) scrapeFleet(sm *Sample) error {
	body, err := s.get("/debug/fleet")
	if err != nil {
		return err
	}
	defer body.Close()
	var rep fleetReport
	if err := json.NewDecoder(body).Decode(&rep); err != nil {
		return err
	}
	sm.EndpointsTotal = rep.Fleet.EndpointsTotal
	sm.EndpointsOnline = rep.Fleet.EndpointsOnline
	for _, ep := range rep.Fleet.Endpoints {
		sm.FleetPending += int(ep.PendingTasks)
		if ep.EgressBacklog != nil {
			sm.FleetEgress += int(*ep.EgressBacklog)
		}
	}
	for _, a := range rep.Alerts {
		if a.State == obs.StateFiring {
			sm.AlertsFiring++
		}
	}
	return nil
}

// usageStats mirrors the GET /v2/usage response body (kept local so the
// sampler depends only on the wire shape, like an external client would).
type usageStats struct {
	Tasks        int                        `json:"tasks"`
	TasksByState map[protocol.TaskState]int `json:"tasks_by_state"`
}

// scrapeUsage reads the server-side task-state census.
func (s *Sampler) scrapeUsage(sm *Sample) error {
	body, err := s.get("/v2/usage")
	if err != nil {
		return err
	}
	defer body.Close()
	var u usageStats
	if err := json.NewDecoder(body).Decode(&u); err != nil {
		return err
	}
	sm.TasksByState = u.TasksByState
	return nil
}
