package scenario

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"globuscompute/internal/protocol"
)

// WindowStats is what the client side observed between two consecutive
// samples: submission/outcome counts and latency percentiles over the
// window. Percentiles are milliseconds; zero when the window saw no events.
type WindowStats struct {
	Submitted int64 `json:"submitted"`
	Accepted  int64 `json:"accepted"`
	Shed      int64 `json:"shed"`
	Errors    int64 `json:"errors"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`

	SubmitP50MS float64 `json:"submit_p50_ms"`
	SubmitP95MS float64 `json:"submit_p95_ms"`
	SubmitP99MS float64 `json:"submit_p99_ms"`
	RTTP50MS    float64 `json:"rtt_p50_ms"`
	RTTP95MS    float64 `json:"rtt_p95_ms"`
	RTTP99MS    float64 `json:"rtt_p99_ms"`
}

// WindowSource hands the sampler the client-side stats accumulated since
// the previous call (the loadgen implements it; tests fake it).
type WindowSource interface {
	TakeWindow() WindowStats
}

// Sample is one poll of the observability surface plus the client window
// that ended at it. Backlog is the primary KPI: tasks admitted but not yet
// resulted, summed across where they can hide — endpoint task queues
// (fleet pending), agent egress buffers, and broker task queues.
type Sample struct {
	Time      time.Time `json:"time"`
	OffsetSec float64   `json:"offset_sec"`
	Phase     string    `json:"phase"`

	FleetPending    int `json:"fleet_pending"`
	FleetEgress     int `json:"fleet_egress"`
	BrokerDepth     int `json:"broker_depth"`
	Backlog         int `json:"backlog"`
	EndpointsOnline int `json:"endpoints_online"`
	EndpointsTotal  int `json:"endpoints_total"`
	AlertsFiring    int `json:"alerts_firing"`
	// ServiceRateSum is the fleet-wide sum of the per-endpoint service-rate
	// EWMA gauges from the federation scrape (tasks/s of drain capacity).
	ServiceRateSum float64 `json:"service_rate_sum"`

	// Cumulative counters from /metrics (not deltas; plot or diff offline).
	ShedsTotal      float64 `json:"sheds_total"`
	AdmittedTotal   float64 `json:"admitted_total"`
	RoutePicksTotal float64 `json:"route_picks_total"`

	// Server-side task-state census from /v2/usage.
	TasksByState map[protocol.TaskState]int `json:"tasks_by_state,omitempty"`

	Window WindowStats `json:"window"`
	// ScrapeErrs counts sources that failed this poll (0 = clean sample).
	ScrapeErrs int `json:"scrape_errs"`
}

// csvHeader must stay in sync with row(); the column set is the stable
// interface consumed by plotting/diffing tools.
var csvHeader = []string{
	"offset_sec", "phase",
	"backlog", "fleet_pending", "fleet_egress", "broker_depth",
	"endpoints_online", "endpoints_total", "alerts_firing", "service_rate_sum",
	"sheds_total", "admitted_total", "route_picks_total",
	"tasks_received", "tasks_waiting", "tasks_delivered", "tasks_running",
	"tasks_success", "tasks_failed", "tasks_cancelled",
	"win_submitted", "win_accepted", "win_shed", "win_errors",
	"win_completed", "win_failed",
	"win_submit_p50_ms", "win_submit_p95_ms", "win_submit_p99_ms",
	"win_rtt_p50_ms", "win_rtt_p95_ms", "win_rtt_p99_ms",
	"scrape_errs",
}

func (s Sample) row() []string {
	st := func(k protocol.TaskState) string { return fmt.Sprintf("%d", s.TasksByState[k]) }
	f := func(v float64) string { return fmt.Sprintf("%.3f", v) }
	return []string{
		fmt.Sprintf("%.3f", s.OffsetSec), s.Phase,
		fmt.Sprintf("%d", s.Backlog), fmt.Sprintf("%d", s.FleetPending),
		fmt.Sprintf("%d", s.FleetEgress), fmt.Sprintf("%d", s.BrokerDepth),
		fmt.Sprintf("%d", s.EndpointsOnline), fmt.Sprintf("%d", s.EndpointsTotal),
		fmt.Sprintf("%d", s.AlertsFiring), f(s.ServiceRateSum),
		f(s.ShedsTotal), f(s.AdmittedTotal), f(s.RoutePicksTotal),
		st(protocol.StateReceived), st(protocol.StateWaiting), st(protocol.StateDelivered),
		st(protocol.StateRunning), st(protocol.StateSuccess), st(protocol.StateFailed),
		st(protocol.StateCancelled),
		fmt.Sprintf("%d", s.Window.Submitted), fmt.Sprintf("%d", s.Window.Accepted),
		fmt.Sprintf("%d", s.Window.Shed), fmt.Sprintf("%d", s.Window.Errors),
		fmt.Sprintf("%d", s.Window.Completed), fmt.Sprintf("%d", s.Window.Failed),
		f(s.Window.SubmitP50MS), f(s.Window.SubmitP95MS), f(s.Window.SubmitP99MS),
		f(s.Window.RTTP50MS), f(s.Window.RTTP95MS), f(s.Window.RTTP99MS),
		fmt.Sprintf("%d", s.ScrapeErrs),
	}
}

// WriteSamplesCSV writes the full time series in the stable column order.
func WriteSamplesCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, s := range samples {
		if err := cw.Write(s.row()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveSamplesCSV writes samples.csv at path.
func SaveSamplesCSV(path string, samples []Sample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSamplesCSV(f, samples); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// percentile is nearest-rank over a copy (p in [0,1]); 0 for empty input.
func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// backlogSeries extracts the KPI series for samples matching a phase
// ("" = all samples).
func backlogSeries(samples []Sample, phase string) []float64 {
	var out []float64
	for _, s := range samples {
		if phase == "" || s.Phase == phase {
			out = append(out, float64(s.Backlog))
		}
	}
	return out
}
