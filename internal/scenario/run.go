package scenario

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/sdk"
)

// RunConfig parameterizes one scenario run.
type RunConfig struct {
	// Service/Token reach the web service's REST API; Target is the
	// endpoint or routing-group UUID every submission names.
	Service string
	Token   string
	Target  protocol.UUID
	Profile Profile
	// OutDir receives samples.csv, summary.json, and any pprof captures
	// (created if missing).
	OutDir string
	// Logf, when set, receives progress lines (testing.T.Logf, log.Printf).
	Logf func(format string, args ...any)
}

// RunResult is a completed run: the verdict, the raw series, and where
// they were written.
type RunResult struct {
	Summary     Summary
	Samples     []Sample
	SamplesCSV  string
	SummaryJSON string
}

// Run executes one profile end to end: register the task-mix functions,
// start the sampler and the loadgen, capture burst-peak pprof when asked,
// drain, evaluate gates, and write samples.csv + summary.json under
// OutDir. The error return is for harness failures (bad profile, cannot
// reach the service, cannot write output); a measured-but-failing run
// returns nil error with Summary.Pass == false.
func Run(ctx context.Context, cfg RunConfig) (*RunResult, error) {
	cfg.Profile = cfg.Profile.normalized()
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return nil, err
	}

	// The task-type mix: a python identity function and a no-op shell
	// command, registered fresh so the run is self-contained.
	client := sdk.NewClient(cfg.Service, cfg.Token)
	fnPy, err := client.RegisterFunction(protocol.KindPython, []byte(`{"entrypoint":"identity"}`))
	if err != nil {
		return nil, fmt.Errorf("scenario: register python function: %w", err)
	}
	var fnSh protocol.UUID
	if cfg.Profile.ShellFraction > 0 {
		fnSh, err = client.RegisterFunction(protocol.KindShell, []byte(`{"command":"echo scenario"}`))
		if err != nil {
			return nil, fmt.Errorf("scenario: register shell function: %w", err)
		}
	}

	lg, err := NewLoadgen(LoadgenConfig{
		Service: cfg.Service, Token: cfg.Token, Target: cfg.Target,
		Profile: cfg.Profile, FnPython: fnPy, FnShell: fnSh,
	})
	if err != nil {
		return nil, err
	}
	sampler := NewSampler(SamplerConfig{
		Targets:  Targets{BaseURL: "http://" + cfg.Service, Token: cfg.Token},
		Interval: time.Duration(cfg.Profile.PollIntervalSec * float64(time.Second)),
		Phase:    cfg.Profile.PhaseAt,
		Window:   lg,
	})

	started := time.Now()
	logf("scenario %s: %s tenants=%d rate=%.0f/s duration=%.0fs",
		cfg.Profile.Name, cfg.Profile.Description, len(cfg.Profile.Tenants),
		cfg.Profile.TotalRatePerSec(), cfg.Profile.DurationSec)
	sampler.Start(started)
	lg.Start(started)

	// Continuous-profiling hook: capture CPU + heap from the webservice at
	// the peak of the first burst window. Failures are recorded in the
	// summary, not fatal — a service without -pprof still measures.
	var pprofFiles []string
	var pprofErr error
	pprofDone := make(chan struct{})
	if cfg.Profile.PprofSeconds > 0 && cfg.Profile.Burst != nil {
		b := cfg.Profile.Burst
		delay := time.Duration((b.AfterSec + b.DurationSec/4) * float64(time.Second))
		secs := cfg.Profile.PprofSeconds
		if max := int(b.DurationSec / 2); secs > max && max >= 1 {
			secs = max
		}
		go func() {
			defer close(pprofDone)
			select {
			case <-ctx.Done():
				return
			case <-time.After(delay):
			}
			logf("scenario %s: capturing burst-peak pprof (%ds CPU + heap)", cfg.Profile.Name, secs)
			pprofFiles, pprofErr = CapturePprof(cfg.OutDir, cfg.Profile.Name,
				"http://"+cfg.Service, cfg.Token, secs)
		}()
	} else {
		close(pprofDone)
	}

	// Load window.
	loadDur := time.Duration(cfg.Profile.DurationSec * float64(time.Second))
	select {
	case <-ctx.Done():
	case <-time.After(loadDur):
	}
	lg.StopLoad()

	// Drain: the sampler keeps polling so the recovery tail is recorded.
	drained := lg.Drain(time.Duration(cfg.Profile.DrainTimeoutSec * float64(time.Second)))
	if !drained {
		logf("scenario %s: drain timeout with %d tasks outstanding", cfg.Profile.Name, lg.Totals().Outstanding)
	}
	<-pprofDone
	samples := sampler.Stop()
	finished := time.Now()

	tot := lg.Totals()
	summary := BuildSummary(cfg.Profile, samples, tot, started, finished)
	summary.PprofFiles = pprofFiles
	if pprofErr != nil {
		summary.PprofError = pprofErr.Error()
	}

	res := &RunResult{
		Summary:     summary,
		Samples:     samples,
		SamplesCSV:  filepath.Join(cfg.OutDir, "samples.csv"),
		SummaryJSON: filepath.Join(cfg.OutDir, "summary.json"),
	}
	if err := SaveSamplesCSV(res.SamplesCSV, samples); err != nil {
		return nil, err
	}
	if err := SaveSummaryJSON(res.SummaryJSON, summary); err != nil {
		return nil, err
	}
	logf("scenario %s: %d samples, accepted=%d shed=%d completeness=%.4f steadyP95=%.0f burstP95=%.0f valid=%v pass=%v",
		cfg.Profile.Name, summary.Samples, tot.Accepted, tot.Shed, summary.Completeness,
		summary.SteadyBacklogP95, summary.BurstBacklogP95, summary.Valid, summary.Pass)
	for _, r := range summary.FailReasons {
		logf("scenario %s: FAIL %s", cfg.Profile.Name, r)
	}
	return res, nil
}
