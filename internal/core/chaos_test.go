package core_test

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/protocol"
	"globuscompute/internal/webservice"
)

// TestChaosAgentRestart submits a stream of tasks while the endpoint agent
// is stopped and restarted; every task must still reach a terminal state
// (no silent loss), and work submitted while the agent is down executes
// after it returns — the buffering behaviour the paper's web service
// promises.
func TestChaosAgentRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 2, DisableHTTP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tok, err := tb.IssueToken("chaos@uchicago.edu", "uchicago")
	if err != nil {
		t.Fatal(err)
	}
	fnID, err := tb.Service.RegisterFunction("chaos", protocol.KindPython, []byte(`{"entrypoint":"identity"}`))
	if err != nil {
		t.Fatal(err)
	}
	epID, agent, err := tb.StartRestartableEndpoint(core.EndpointOptions{
		Name: "chaos-ep", Owner: "chaos", Workers: 2, MaxBlocks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	submit := func(i int) protocol.UUID {
		payload, _ := protocol.EncodePayload(protocol.PythonSpec{
			Entrypoint: "identity",
			Args:       []json.RawMessage{json.RawMessage(fmt.Sprintf("%d", i))},
		})
		ids, err := tb.Service.Submit(tok, []webservice.SubmitRequest{
			{EndpointID: epID, FunctionID: fnID, Payload: payload},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ids[0]
	}

	var ids []protocol.UUID
	// Phase 1: agent up.
	for i := 0; i < 30; i++ {
		ids = append(ids, submit(i))
	}
	// Phase 2: agent down; submissions buffer.
	agent.Stop()
	for i := 30; i < 60; i++ {
		ids = append(ids, submit(i))
	}
	// Phase 3: agent restarts with the same endpoint ID and drains.
	agent2, err := tb.RestartEndpointAgent(epID, core.EndpointOptions{
		Name: "chaos-ep", Owner: "chaos", Workers: 2, MaxBlocks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = agent2
	for i := 60; i < 90; i++ {
		ids = append(ids, submit(i))
	}

	// Every task terminal; everything submitted while the agent was down
	// or after restart must succeed (phase-1 stragglers may have been
	// failed by the agent shutdown, which is a reported outcome, not a
	// loss).
	deadline := time.Now().Add(60 * time.Second)
	success, failed := 0, 0
	for _, id := range ids {
		for {
			st, err := tb.Service.GetTask(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.State.Terminal() {
				if st.State == protocol.StateSuccess {
					success++
				} else {
					failed++
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("task %s stuck in %s", id, st.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if success+failed != len(ids) {
		t.Fatalf("terminal = %d of %d", success+failed, len(ids))
	}
	// Phases 2 and 3 (60 tasks) were never exposed to the shutdown.
	if success < 60 {
		t.Errorf("successes = %d, want >= 60 (failures: %d)", success, failed)
	}
	t.Logf("chaos outcome: %d success, %d failed-by-shutdown of %d", success, failed, len(ids))
}
