package core_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/idmap"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/sdk"
)

func uchicagoMapper(t *testing.T) idmap.Mapper {
	t.Helper()
	m, err := idmap.NewExpressionMapper([]idmap.Rule{{
		Match: `(.*)@uchicago\.edu`, Output: "{0}",
	}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

type stack struct {
	tb     *core.Testbed
	client *sdk.Client
	conn   broker.Conn
	objs   *objectstore.Client
}

func newStack(t *testing.T) *stack {
	t.Helper()
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	tok, err := tb.IssueToken("alice@uchicago.edu", "uchicago")
	if err != nil {
		t.Fatal(err)
	}
	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	return &stack{
		tb:     tb,
		client: sdk.NewClient(tb.ServiceAddr(), tok.Value),
		conn:   bc.AsConn(),
		objs:   objectstore.NewClient(tb.ObjectsSrv.Addr()),
	}
}

func (s *stack) executor(t *testing.T, ep protocol.UUID) *sdk.Executor {
	t.Helper()
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: s.client, EndpointID: ep, Conn: s.conn, Objects: s.objs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	return ex
}

// TestMEPStartEndpointFlow reproduces Fig. 1 end to end: a task submitted
// to a multi-user endpoint spawns a user endpoint under the mapped local
// account, which then executes the task.
func TestMEPStartEndpointFlow(t *testing.T) {
	s := newStack(t)
	mepID, mgr, err := s.tb.StartMEP(core.MEPOptions{
		Name: "cluster-mep", Owner: "admin@uchicago.edu",
		Mapper:      uchicagoMapper(t),
		SandboxRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := s.executor(t, mepID)
	ex.UserEndpointConfig = map[string]any{
		"NODES_PER_BLOCK": 2,
		"ACCOUNT_ID":      "314159265",
		"WALLTIME":        "00:20:00",
	}
	// The shell task observes the mapped local user (privilege drop).
	sf := sdk.NewShellFunction("echo user=$GC_LOCAL_USER")
	fut, err := ex.SubmitShell(sf, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	sr, err := fut.ShellResult(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Stdout != "user=alice" {
		t.Errorf("stdout = %q, want user=alice (identity mapping)", sr.Stdout)
	}
	stats := mgr.Stats()
	if stats.ChildrenSpawned != 1 || stats.ActiveChildren != 1 {
		t.Errorf("mep stats = %+v", stats)
	}
	if stats.ByLocalUser["alice"] != 1 {
		t.Errorf("by-user = %v", stats.ByLocalUser)
	}
}

// TestMEPConfigHashReuse verifies repeated submissions with the same user
// config share one user endpoint while different configs spawn new ones.
func TestMEPConfigHashReuse(t *testing.T) {
	s := newStack(t)
	mepID, mgr, err := s.tb.StartMEP(core.MEPOptions{
		Name: "mep", Owner: "admin@uchicago.edu", Mapper: uchicagoMapper(t),
		SandboxRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	fn := &sdk.PythonFunction{Entrypoint: "identity"}

	ex := s.executor(t, mepID)
	ex.UserEndpointConfig = map[string]any{"NODES_PER_BLOCK": 1, "ACCOUNT_ID": "a1"}
	for i := 0; i < 5; i++ {
		fut, err := ex.Submit(fn, i)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fut.ResultWithin(20 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if got := mgr.Stats().ChildrenSpawned; got != 1 {
		t.Errorf("children after same-config submits = %d, want 1", got)
	}

	// New executor, different config -> second UEP.
	ex2 := s.executor(t, mepID)
	ex2.UserEndpointConfig = map[string]any{"NODES_PER_BLOCK": 2, "ACCOUNT_ID": "a1"}
	fut, err := ex2.Submit(fn, "again")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.ResultWithin(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Stats().ChildrenSpawned; got != 2 {
		t.Errorf("children after new config = %d, want 2", got)
	}
}

// TestMEPSchemaRejection: an out-of-policy user config is rejected by the
// MEP and the task fails rather than hangs... the web service spawns the
// child record optimistically, so the failure surfaces as the task never
// starting; the MEP records a config rejection.
func TestMEPSchemaRejection(t *testing.T) {
	s := newStack(t)
	mepID, mgr, err := s.tb.StartMEP(core.MEPOptions{
		Name: "mep", Owner: "admin@uchicago.edu", Mapper: uchicagoMapper(t),
		SandboxRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := s.executor(t, mepID)
	ex.UserEndpointConfig = map[string]any{"NODES_PER_BLOCK": 9999, "ACCOUNT_ID": "a1"}
	if _, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for mgr.Stats().ConfigRejected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("config rejection never recorded")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if mgr.Stats().ChildrenSpawned != 0 {
		t.Error("out-of-policy config spawned an endpoint")
	}
}

// TestMEPIdleReap verifies user endpoints are destroyed after their tasks
// complete ("once the submitted tasks are completed, the user endpoint is
// destroyed").
func TestMEPIdleReap(t *testing.T) {
	s := newStack(t)
	mepID, mgr, err := s.tb.StartMEP(core.MEPOptions{
		Name: "mep", Owner: "admin@uchicago.edu", Mapper: uchicagoMapper(t),
		IdleTimeout: 100 * time.Millisecond,
		SandboxRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := s.executor(t, mepID)
	ex.UserEndpointConfig = map[string]any{"NODES_PER_BLOCK": 1, "ACCOUNT_ID": "a1"}
	fut, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.ResultWithin(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for mgr.Stats().ChildrenReaped == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle child never reaped: %+v", mgr.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if mgr.Stats().ActiveChildren != 0 {
		t.Errorf("active children = %d after reap", mgr.Stats().ActiveChildren)
	}
}

// TestMEPMPITemplate runs an MPIFunction through a MEP whose template
// selects the GlobusMPIEngine.
func TestMEPMPITemplate(t *testing.T) {
	s := newStack(t)
	tmpl := `{
	  "engine": {"type": "GlobusMPIEngine", "nodes_per_block": {{ NODES_PER_BLOCK }}, "mpi_launcher": "srun"},
	  "provider": {"type": "SlurmProvider", "partition": "default", "account": "{{ ACCOUNT_ID }}"}
	}`
	mepID, _, err := s.tb.StartMEP(core.MEPOptions{
		Name: "mpi-mep", Owner: "admin@uchicago.edu", Mapper: uchicagoMapper(t),
		Template:    tmpl,
		SandboxRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := s.executor(t, mepID)
	ex.UserEndpointConfig = map[string]any{"NODES_PER_BLOCK": 2, "ACCOUNT_ID": "a1"}
	ex.ResourceSpec = protocol.ResourceSpec{NumNodes: 2, RanksPerNode: 2}
	fut, err := ex.SubmitMPI(sdk.NewMPIFunction("echo $GC_NODE"), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sr, err := fut.ShellResult(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(sr.Stdout, "\n"); len(lines) != 4 {
		t.Errorf("rank lines = %d, want 4: %q", len(lines), sr.Stdout)
	}
	if !strings.HasPrefix(sr.Cmd, "srun ") {
		t.Errorf("cmd = %q, want srun prefix from template", sr.Cmd)
	}
}

// TestMEPUnmappedUserTaskNeverRuns: unauthorized identities must not get a
// user endpoint.
func TestMEPUnauthorizedIdentity(t *testing.T) {
	s := newStack(t)
	mepID, mgr, err := s.tb.StartMEP(core.MEPOptions{
		Name: "mep", Owner: "admin@uchicago.edu", Mapper: uchicagoMapper(t),
		SandboxRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// eve authenticates fine but has no identity mapping on this resource.
	evilTok, err := s.tb.IssueToken("eve@evil.example", "evil")
	if err != nil {
		t.Fatal(err)
	}
	evilClient := sdk.NewClient(s.tb.ServiceAddr(), evilTok.Value)
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: evilClient, EndpointID: mepID, Conn: s.conn,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ex.UserEndpointConfig = map[string]any{"NODES_PER_BLOCK": 1, "ACCOUNT_ID": "a1"}
	if _, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for mgr.Stats().IdentityRejected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("identity rejection never recorded")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if mgr.Stats().ChildrenSpawned != 0 {
		t.Error("unauthorized identity spawned an endpoint")
	}
}

// TestTCPTransportEndToEnd drives the full SDK → service → broker →
// endpoint path with the engine's framed-TCP interchange transport.
func TestTCPTransportEndToEnd(t *testing.T) {
	s := newStack(t)
	epID, err := s.tb.StartEndpoint(core.EndpointOptions{
		Name: "tcp-ep", Owner: "alice@uchicago.edu", Workers: 4, Transport: "tcp",
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := s.executor(t, epID)
	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	for i := 0; i < 10; i++ {
		fut, err := ex.Submit(fn, i)
		if err != nil {
			t.Fatal(err)
		}
		out, err := fut.ResultWithin(20 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 {
			t.Fatal("empty result over TCP transport")
		}
	}
}

// TestUsageAccountingAcrossStack mirrors the §VI statistics: MEPs, spawned
// UEPs, and the UEP fraction of all endpoints.
func TestUsageAccountingAcrossStack(t *testing.T) {
	s := newStack(t)
	if _, err := s.tb.StartEndpoint(core.EndpointOptions{Name: "single", Owner: "alice@uchicago.edu"}); err != nil {
		t.Fatal(err)
	}
	mepID, _, err := s.tb.StartMEP(core.MEPOptions{
		Name: "mep", Owner: "admin@uchicago.edu", Mapper: uchicagoMapper(t),
		SandboxRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := s.executor(t, mepID)
	ex.UserEndpointConfig = map[string]any{"NODES_PER_BLOCK": 1, "ACCOUNT_ID": "a1"}
	fut, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.ResultWithin(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	u, err := s.client.Usage()
	if err != nil {
		t.Fatal(err)
	}
	// single + mep + 1 spawned UEP = 3 endpoints, 1 MEP, 1 UEP.
	if u.Endpoints != 3 || u.MultiUserEPs != 1 || u.UserEndpoints != 1 {
		t.Errorf("usage = %+v", u)
	}
}
