package core_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/chaos"
	"globuscompute/internal/core"
	"globuscompute/internal/engine"
	"globuscompute/internal/metrics"
	"globuscompute/internal/protocol"
	"globuscompute/internal/webservice"
)

// chaosSeed fixes every fault decision in the suite so failures reproduce:
// rerun with the same seed and the injectors draw the same sequence.
const chaosSeed = 42

// TestChaosSuiteDeliveryGuarantees drives the full stack — web service,
// broker, endpoint agent, engine, workers — under injected faults on every
// process boundary (connection drops, publish failures, worker kills) and
// asserts the delivery guarantees hold:
//
//  1. every submitted task reaches a terminal state (nothing lost, nothing
//     stuck), with duplicate deliveries resolved by the task state machine
//     to exactly one terminal state;
//  2. a poison task (kills its worker on every attempt) dead-letters after
//     exactly MaxAttempts tries instead of cycling forever;
//  3. the robustness counters (resubscribes, dead-letters, injected faults)
//     show the faults actually fired and were absorbed.
func TestChaosSuiteDeliveryGuarantees(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 2, DisableHTTP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tok, err := tb.IssueToken("chaos@uchicago.edu", "uchicago")
	if err != nil {
		t.Fatal(err)
	}
	fnID, err := tb.Service.RegisterFunction("chaos", protocol.KindPython, []byte(`{"entrypoint":"identity"}`))
	if err != nil {
		t.Fatal(err)
	}

	inj := chaos.NewInjector(chaosSeed)
	connFaults := chaos.ConnFaults{
		PublishFailRate: 0.10,
		DropRate:        0.08,
		PublishDelay:    time.Millisecond,

		PublishDelayRate: 0.10,
	}
	const maxAttempts = 3
	var poisonRuns atomic.Int64
	runnerFaults := chaos.RunnerFaults{
		KillRate: 0.15,
		KillIf: func(task protocol.Task) bool {
			if strings.Contains(string(task.Payload), "poison") {
				poisonRuns.Add(1)
				return true
			}
			return false
		},
		Delay:     time.Millisecond,
		DelayRate: 0.2,
	}
	brokerMetrics := metrics.NewRegistry()

	epID, err := tb.StartEndpoint(core.EndpointOptions{
		Name: "chaos-suite-ep", Owner: "chaos", Workers: 4, MaxBlocks: 1,
		MaxAttempts: maxAttempts,
		WrapRunner: func(run engine.TaskRunner) engine.TaskRunner {
			return chaos.WrapRunner(run, inj, runnerFaults)
		},
		WrapConn: func(inner broker.Conn) broker.Conn {
			rc, err := broker.NewReconnecting(broker.ReconnectConfig{
				// Every (re)dial hands back a fresh fault wrapper around the
				// in-process broker, so drops keep firing across reconnects.
				Dial: func() (broker.Conn, error) {
					return chaos.WrapConn(inner, inj, connFaults), nil
				},
				BaseDelay: time.Millisecond,
				MaxDelay:  20 * time.Millisecond,
				Seed:      chaosSeed,
				Metrics:   brokerMetrics,
			})
			if err != nil {
				t.Errorf("reconnecting conn: %v", err)
				return inner
			}
			return rc
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	submit := func(payload string) protocol.UUID {
		body, _ := protocol.EncodePayload(protocol.PythonSpec{
			Entrypoint: "identity",
			Args:       []json.RawMessage{json.RawMessage(payload)},
		})
		ids, err := tb.Service.Submit(tok, []webservice.SubmitRequest{
			{EndpointID: epID, FunctionID: fnID, Payload: body},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ids[0]
	}

	// Phase 1: a stream of ordinary tasks through the fault storm.
	const n = 40
	var ids []protocol.UUID
	for i := 0; i < n; i++ {
		ids = append(ids, submit(fmt.Sprintf("%d", i)))
	}

	waitTerminal := func(id protocol.UUID) webservice.TaskStatus {
		deadline := time.Now().Add(90 * time.Second)
		for {
			st, err := tb.Service.GetTask(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.State.Terminal() {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("task %s stuck in %s under chaos", id, st.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	success, failed := 0, 0
	for _, id := range ids {
		switch st := waitTerminal(id); st.State {
		case protocol.StateSuccess:
			success++
		default:
			failed++
		}
	}
	if success+failed != n {
		t.Fatalf("terminal = %d of %d", success+failed, n)
	}
	// KillRate^maxAttempts is ~3e-3 per task: nearly everything succeeds.
	if success < n*3/4 {
		t.Errorf("successes = %d of %d, suspiciously low for the configured fault rates", success, n)
	}

	// Phase 2: quiet the random faults, then submit the poison task. KillIf
	// fires regardless of the injector switch, so this isolates the
	// dead-letter path: delivered once, killed exactly maxAttempts times.
	inj.SetDisabled(true)
	poisonID := submit(`"poison"`)
	st := waitTerminal(poisonID)
	if st.State != protocol.StateFailed {
		t.Errorf("poison state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "attempts") {
		t.Errorf("poison error = %q, want attempt-budget message", st.Error)
	}
	if got := poisonRuns.Load(); got != maxAttempts {
		t.Errorf("poison task ran %d times, want exactly MaxAttempts=%d", got, maxAttempts)
	}
	if v := tb.Service.Metrics.Counter("deadlettered_tasks").Value(); v != 1 {
		t.Errorf("webservice deadlettered_tasks = %d, want 1", v)
	}

	// Terminal states are immutable: re-reading every task yields the same
	// state (duplicate deliveries were absorbed, not double-completed).
	for _, id := range ids {
		st1, _ := tb.Service.GetTask(id)
		st2, _ := tb.Service.GetTask(id)
		if st1.State != st2.State || !st1.State.Terminal() {
			t.Errorf("task %s unstable terminal state: %s vs %s", id, st1.State, st2.State)
		}
	}

	// The storm actually happened and was absorbed.
	if inj.Fired("conn.drop") == 0 {
		t.Error("no connection drops fired; fault injection dormant")
	}
	if inj.Fired("conn.publish_fail") == 0 {
		t.Error("no publish failures fired")
	}
	if inj.Fired("runner.kill") == 0 {
		t.Error("no worker kills fired")
	}
	if v := brokerMetrics.Counter("resubscribes").Value(); v == 0 {
		t.Error("no resubscribes recorded despite connection drops")
	}
	// Requeue spans made it into the trace collector (engine.requeue is the
	// retry breadcrumb; engine.deadletter marks the poison task's exit).
	var requeues, deadletters int
	for _, sp := range tb.Traces.Snapshot() {
		switch sp.Name {
		case "engine.requeue":
			requeues++
		case "engine.deadletter":
			deadletters++
		}
	}
	if requeues == 0 {
		t.Error("no engine.requeue spans recorded")
	}
	if deadletters == 0 {
		t.Error("no engine.deadletter spans recorded")
	}
	t.Logf("chaos suite: %d/%d success, %d failed; faults fired=%d (drops=%d kills=%d pubfails=%d) resubscribes=%d requeue spans=%d",
		success, n, failed, inj.TotalFired(), inj.Fired("conn.drop"), inj.Fired("runner.kill"),
		inj.Fired("conn.publish_fail"), brokerMetrics.Counter("resubscribes").Value(), requeues)
}
