package core

import (
	"fmt"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/idmap"
	"globuscompute/internal/mep"
	"globuscompute/internal/protocol"
	"globuscompute/internal/registry"
	"globuscompute/internal/template"
	"globuscompute/internal/webservice"
)

// MEPOptions configures a multi-user endpoint deployment on the testbed.
type MEPOptions struct {
	Name  string
	Owner string
	// Mapper authorizes identities (required).
	Mapper idmap.Mapper
	// Template is the admin configuration template; empty selects
	// DefaultMEPTemplate.
	Template string
	// Schema validates user values; zero value selects DefaultMEPSchema.
	Schema template.Schema
	// IdleTimeout reaps idle user endpoints.
	IdleTimeout time.Duration
	// AllowedFunctions restricts the functions children may execute.
	AllowedFunctions []protocol.UUID
	// AuthPolicy names a cloud-enforced policy.
	AuthPolicy string
	// Registry seeds the callable registry of spawned user endpoints.
	Registry *registry.Registry
	// SandboxRoot hosts ShellFunction sandboxes in children.
	SandboxRoot string
}

// DefaultMEPTemplate mirrors the paper's Listing 9: fixed engine and
// partition, user-configurable block size, account, and walltime.
const DefaultMEPTemplate = `{
  "display_name": "SlurmHPC",
  "engine": {
    "type": "GlobusComputeEngine",
    "nodes_per_block": {{ NODES_PER_BLOCK }},
    "workers_per_node": {{ WORKERS_PER_NODE|default("2") }}
  },
  "provider": {
    "type": "SlurmProvider",
    "partition": "default",
    "account": "{{ ACCOUNT_ID }}",
    "walltime": "{{ WALLTIME|default("00:30:00") }}"
  }
}`

// DefaultMEPSchema validates the DefaultMEPTemplate's variables.
func DefaultMEPSchema() template.Schema {
	min, max := 1.0, 64.0
	return template.Schema{Properties: map[string]template.Property{
		"NODES_PER_BLOCK":  {Type: template.TypeInteger, Required: true, Minimum: &min, Maximum: &max},
		"WORKERS_PER_NODE": {Type: template.TypeInteger, Minimum: &min, Maximum: &max},
		"ACCOUNT_ID":       {Type: template.TypeString, Required: true, Pattern: `[A-Za-z0-9_-]+`},
		"WALLTIME":         {Type: template.TypeString, Pattern: `\d{2}:\d{2}:\d{2}`},
	}}
}

// StartMEP registers a multi-user endpoint and starts its manager. The
// spawner builds real user endpoint agents against the testbed's scheduler
// according to each rendered configuration.
func (tb *Testbed) StartMEP(opts MEPOptions) (protocol.UUID, *mep.Manager, error) {
	if opts.Mapper == nil {
		return "", nil, fmt.Errorf("core: MEP requires an identity mapper")
	}
	if opts.Template == "" {
		opts.Template = DefaultMEPTemplate
	}
	if opts.Schema.Properties == nil {
		opts.Schema = DefaultMEPSchema()
	}
	if opts.Registry == nil {
		opts.Registry = registry.Builtins()
	}
	mepID, err := tb.Service.RegisterEndpoint(webservice.RegisterEndpointRequest{
		Name: opts.Name, Owner: opts.Owner, MultiUser: true,
		AllowedFunctions: opts.AllowedFunctions, AuthPolicy: opts.AuthPolicy,
	})
	if err != nil {
		return "", nil, err
	}
	mgr, err := mep.New(mep.Config{
		EndpointID:  mepID,
		Conn:        broker.LocalConn(tb.Broker),
		Mapper:      opts.Mapper,
		Template:    opts.Template,
		Schema:      opts.Schema,
		IdleTimeout: opts.IdleTimeout,
		Spawn:       tb.mepSpawner(opts),
		Heartbeat: func(online bool) {
			_ = tb.Service.SetEndpointStatus(mepID, online)
		},
	})
	if err != nil {
		return "", nil, err
	}
	if err := mgr.Start(); err != nil {
		return "", nil, err
	}
	tb.meps = append(tb.meps, mgr)
	return mepID, mgr, nil
}

// mepSpawner builds user endpoint agents from rendered configurations by
// binding the shared spawner to the testbed's resources.
func (tb *Testbed) mepSpawner(opts MEPOptions) mep.SpawnFunc {
	return mep.NewAgentSpawner(mep.SpawnerDeps{
		Scheduler:   tb.Sched,
		Conn:        broker.LocalConn(tb.Broker),
		Objects:     tb.Objects,
		Registry:    opts.Registry,
		SandboxRoot: opts.SandboxRoot,
		Heartbeat: func(child protocol.UUID, online bool) {
			_ = tb.Service.SetEndpointStatus(child, online)
		},
	})
}
