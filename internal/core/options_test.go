package core_test

import (
	"strings"
	"testing"

	"globuscompute/internal/core"
	"globuscompute/internal/template"
)

func TestStartMEPRequiresMapper(t *testing.T) {
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 2, DisableHTTP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if _, _, err := tb.StartMEP(core.MEPOptions{Name: "no-mapper"}); err == nil {
		t.Error("MEP without mapper accepted")
	}
}

func TestDefaultMEPTemplateAndSchemaAgree(t *testing.T) {
	// Every variable the default template requires is validated by the
	// default schema, and a fully-specified config renders cleanly.
	schema := core.DefaultMEPSchema()
	vars := map[string]any{
		"NODES_PER_BLOCK":  8,
		"WORKERS_PER_NODE": 2,
		"ACCOUNT_ID":       "alloc-42",
		"WALLTIME":         "01:00:00",
	}
	if err := schema.Validate(vars); err != nil {
		t.Fatalf("schema rejects canonical vars: %v", err)
	}
	rendered, err := template.Render(core.DefaultMEPTemplate, vars)
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	for _, want := range []string{`"nodes_per_block": 8`, `"account": "alloc-42"`, `"walltime": "01:00:00"`} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered template missing %q:\n%s", want, rendered)
		}
	}
	// Template variables are exactly the schema's property set.
	for _, v := range template.Variables(core.DefaultMEPTemplate) {
		if _, ok := schema.Properties[v]; !ok {
			t.Errorf("template variable %s missing from schema", v)
		}
	}
	// Defaults cover the optional variables.
	minimal := map[string]any{"NODES_PER_BLOCK": 1, "ACCOUNT_ID": "a"}
	if _, err := template.Render(core.DefaultMEPTemplate, minimal); err != nil {
		t.Errorf("render with defaults: %v", err)
	}
}

func TestTestbedBrokerTCPRoundTrip(t *testing.T) {
	// The testbed's TCP broker front end serves real clients.
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if tb.BrokerSrv == nil || tb.ObjectsSrv == nil || tb.HTTP == nil {
		t.Fatal("HTTP mode servers missing")
	}
	if !strings.Contains(tb.String(), "http=") {
		t.Errorf("String() = %s", tb.String())
	}
}
