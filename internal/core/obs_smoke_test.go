package core_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/obs"
	"globuscompute/internal/protocol"
	"globuscompute/internal/webservice"
)

// TestObsSmokeFleetPipeline drives the fleet-observability pipeline end to
// end at millisecond scale (the `make obs-smoke` target):
//
//  1. an endpoint heartbeats metric snapshots into the webservice, and
//     GET /metrics/fleet serves a parseable, lint-clean federation scrape;
//  2. killing the agent under load (no offline heartbeat — a crash) drives
//     the heartbeat-staleness and terminal-failure-rate SLOs to firing on
//     GET /debug/fleet;
//  3. restarting the agent recovers both alerts to inactive.
func TestObsSmokeFleetPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	rules := []obs.Rule{
		{
			Name: "heartbeat_staleness", Kind: obs.RuleStaleness,
			MaxStaleness: 250 * time.Millisecond,
		},
		{
			Name: "terminal_failure_rate", Kind: obs.RuleFailureRatio,
			BadCounter: "ws_results_failed", TotalCounter: "ws_results",
			Objective: 0.05, BurnRate: 2,
			FastWindow: 2 * time.Second, SlowWindow: 4 * time.Second,
		},
	}
	tb, err := core.NewTestbed(core.Options{
		ClusterNodes: 2,
		FleetConfig: obs.FleetConfig{
			RingPoints: 240, StaleAfter: 400 * time.Millisecond,
			HealthWindow: 2 * time.Second,
		},
		SLORules: rules,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tok, err := tb.IssueToken("ops@uchicago.edu", "uchicago")
	if err != nil {
		t.Fatal(err)
	}
	// The watchdog turns agent silence into offline status and lease-expired
	// task failures; the evaluator keeps ring coverage moving while the
	// agent is dead so the burn-rate windows have points to look at.
	stopWatchdog := tb.Service.StartWatchdog(webservice.WatchdogConfig{
		HeartbeatTimeout: 200 * time.Millisecond,
		Interval:         50 * time.Millisecond,
		TaskLease:        100 * time.Millisecond,
	})
	defer stopWatchdog()
	stopSLO := tb.Service.StartSLOEvaluator(50 * time.Millisecond)
	defer stopSLO()

	epOpts := core.EndpointOptions{
		Name: "obs-ep", Owner: "ops", Workers: 2, MaxBlocks: 1,
		HeartbeatInterval:        50 * time.Millisecond,
		MetricsInterval:          25 * time.Millisecond,
		SuppressOfflineHeartbeat: true,
	}
	epID, agent, err := tb.StartRestartableEndpoint(epOpts)
	if err != nil {
		t.Fatal(err)
	}
	fnID, err := tb.Service.RegisterFunction("ops", protocol.KindPython, []byte(`{"entrypoint":"identity"}`))
	if err != nil {
		t.Fatal(err)
	}
	submit := func(i int) protocol.UUID {
		payload, _ := protocol.EncodePayload(protocol.PythonSpec{
			Entrypoint: "identity",
			Args:       []json.RawMessage{json.RawMessage(fmt.Sprintf("%d", i))},
		})
		ids, err := tb.Service.Submit(tok, []webservice.SubmitRequest{
			{EndpointID: epID, FunctionID: fnID, Payload: payload},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ids[0]
	}
	awaitTerminal := func(ids []protocol.UUID, deadline time.Duration) {
		t.Helper()
		limit := time.Now().Add(deadline)
		for _, id := range ids {
			for {
				st, err := tb.Service.GetTask(id)
				if err != nil {
					t.Fatal(err)
				}
				if st.State.Terminal() {
					break
				}
				if time.Now().After(limit) {
					t.Fatalf("task %s stuck in %s", id, st.State)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}

	// --- Phase 1: healthy traffic, then a federation scrape. ---
	var ids []protocol.UUID
	for i := 0; i < 20; i++ {
		ids = append(ids, submit(i))
	}
	awaitTerminal(ids, 30*time.Second)

	base := "http://" + tb.ServiceAddr()
	scrape := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path + "?token=" + tok.Value)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	// The agent snapshots at most every 25ms and heartbeats every 50ms, so
	// tasks_received should federate within a heartbeat or two.
	var exp *obs.Exposition
	waitFor(t, 10*time.Second, "federated tasks_received", func() bool {
		text := scrape("/metrics/fleet")
		var perr error
		exp, perr = obs.ParseExposition(strings.NewReader(text))
		if perr != nil {
			t.Fatalf("federation scrape does not parse: %v\n%s", perr, text)
		}
		if issues := exp.Lint(); len(issues) > 0 {
			t.Fatalf("federation scrape fails lint: %v", issues)
		}
		s, ok := exp.Sample("gc_endpoint_tasks_received_total", map[string]string{"endpoint_id": string(epID)})
		return ok && s.Value >= 20
	})
	if s, ok := exp.Sample("gc_endpoint_up", map[string]string{"endpoint_id": string(epID)}); !ok || s.Value != 1 {
		t.Fatalf("up{endpoint_id=%s} = %+v, want 1", epID, s)
	}

	alertState := func(rule string) obs.AlertState {
		t.Helper()
		var out struct {
			Alerts []obs.Alert `json:"alerts"`
		}
		if err := json.Unmarshal([]byte(scrape("/debug/fleet")), &out); err != nil {
			t.Fatal(err)
		}
		for _, a := range out.Alerts {
			if a.Rule == rule && a.EndpointID == string(epID) {
				return a.State
			}
		}
		return obs.StateInactive
	}
	if st := alertState("heartbeat_staleness"); st != obs.StateInactive {
		t.Fatalf("staleness alert %s before the kill, want inactive", st)
	}

	// --- Phase 2: kill the agent, then strand a batch of tasks on it. ---
	// SuppressOfflineHeartbeat drops the agent's final offline report, so
	// from the service's perspective this is a crash: heartbeats just stop.
	// The agent dies first so the submitted tasks buffer on its queue with
	// no one to run them — the watchdog marks the endpoint offline and the
	// stranded tasks lease-expire into terminal failures, burning the error
	// budget. (Stopping after submitting races the two-worker engine, which
	// can drain all 30 identity tasks before the stop lands.)
	agent.Stop()
	for i := 20; i < 50; i++ {
		ids = append(ids, submit(i))
	}

	// The failure-rate check comes first: the lease-expiry burst only stays
	// inside the fast window for FastWindow after it lands, while staleness
	// keeps firing for as long as the agent is dead.
	waitFor(t, 15*time.Second, "failure-rate alert firing", func() bool {
		return alertState("terminal_failure_rate") == obs.StateFiring
	})
	waitFor(t, 15*time.Second, "staleness alert firing", func() bool {
		return alertState("heartbeat_staleness") == obs.StateFiring
	})
	// The dead endpoint federates as down.
	exp, err = obs.ParseExposition(strings.NewReader(scrape("/metrics/fleet")))
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := exp.Sample("gc_endpoint_up", map[string]string{"endpoint_id": string(epID)}); !ok || s.Value != 0 {
		t.Fatalf("up{endpoint_id=%s} = %+v after kill, want 0", epID, s)
	}

	// --- Phase 3: recovery. ---
	if _, err := tb.RestartEndpointAgent(epID, epOpts); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "staleness alert recovered", func() bool {
		return alertState("heartbeat_staleness") == obs.StateInactive
	})
	// Fresh successful traffic pushes the failure window back under budget.
	var recov []protocol.UUID
	for i := 50; i < 70; i++ {
		recov = append(recov, submit(i))
	}
	awaitTerminal(recov, 30*time.Second)
	waitFor(t, 15*time.Second, "failure-rate alert recovered", func() bool {
		return alertState("terminal_failure_rate") == obs.StateInactive
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, deadline time.Duration, what string, cond func() bool) {
	t.Helper()
	limit := time.Now().Add(deadline)
	for !cond() {
		if time.Now().After(limit) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
