package core_test

import (
	"testing"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/sdk"
)

// TestHeartbeatCarriesLoad verifies the agent's utilization report reaches
// the service's endpoint record.
func TestHeartbeatCarriesLoad(t *testing.T) {
	s := newStack(t)
	epID, err := s.tb.StartEndpoint(core.EndpointOptions{Name: "load-ep", Owner: "alice@uchicago.edu", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ex := s.executor(t, epID)
	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	for i := 0; i < 5; i++ {
		fut, err := ex.Submit(fn, i)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fut.ResultWithin(20 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// The agent heartbeats every second on the testbed; wait for a load
	// report that reflects the completed tasks.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec, err := s.tb.Service.GetEndpoint(epID)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Load != nil && rec.Load.TasksReceived >= 5 {
			if rec.Load.TotalWorkers != 2 {
				t.Errorf("total workers = %d", rec.Load.TotalWorkers)
			}
			if rec.Load.ResultsPublished < 5 {
				t.Errorf("results published = %d", rec.Load.ResultsPublished)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("load never reported: %+v", rec.Load)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
