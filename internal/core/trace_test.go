package core_test

import (
	"context"
	"testing"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/protocol"
	"globuscompute/internal/sdk"
	"globuscompute/internal/trace"
)

// TestEndToEndTrace is the tracing acceptance test: one SDK submission on
// the full testbed must leave a single trace whose spans cover the entire
// lifecycle — SDK submit, service ingestion, broker delivery, endpoint
// dispatch, engine execution, and result return — with intact parent links
// from every span back to the root.
func TestEndToEndTrace(t *testing.T) {
	s := newStack(t)
	epID, err := s.tb.StartEndpoint(core.EndpointOptions{
		Name: "trace-ep", Owner: "alice@uchicago.edu", Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: s.client, EndpointID: epID, Conn: s.conn, Objects: s.objs,
		Tracer: trace.NewTracer("sdk", s.tb.Traces),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fut, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fut.Raw(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != protocol.StateSuccess {
		t.Fatalf("task state = %s (%s)", res.State, res.Error)
	}
	if !res.Trace.Valid() {
		t.Fatal("result carries no trace context")
	}
	id := res.Trace.TraceID

	// The final sdk.resolve span ends just after the future resolves; wait
	// for it to land before reading the collector.
	want := map[string]bool{
		"sdk.submit":        false, // SDK-side submission (root)
		"submit":            false, // web service ingestion
		"broker.deliver":    false, // queue transit (tasks and results)
		"endpoint.dispatch": false, // agent pulls and dispatches
		"engine.execute":    false, // worker execution
		"result.process":    false, // result pipeline
		"sdk.resolve":       false, // future resolution
	}
	var spans []trace.Span
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans = s.tb.Traces.Trace(id)
		have := make(map[string]bool, len(spans))
		for _, sp := range spans {
			have[sp.Name] = true
		}
		all := true
		for name := range want {
			if !have[name] {
				all = false
			}
		}
		if all || time.Now().After(deadline) {
			for name := range want {
				want[name] = have[name]
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for name, ok := range want {
		if !ok {
			t.Errorf("trace %s missing span %q (have %d spans)", id, name, len(spans))
		}
	}
	if t.Failed() {
		for _, sp := range spans {
			t.Logf("span %-20s %-12s parent=%s", sp.Name, sp.Process, sp.Parent)
		}
		t.FailNow()
	}

	// Every span must belong to the one trace, be finished, and (except the
	// root) link to another span in the same trace.
	byID := make(map[trace.SpanID]trace.Span, len(spans))
	roots := 0
	for _, sp := range spans {
		if sp.TraceID != id {
			t.Errorf("span %s has trace %s", sp.Name, sp.TraceID)
		}
		if sp.EndTime.IsZero() {
			t.Errorf("span %s never ended", sp.Name)
		}
		byID[sp.SpanID] = sp
		if sp.Parent == "" {
			roots++
			if sp.Name != "sdk.submit" {
				t.Errorf("root span is %q, want sdk.submit", sp.Name)
			}
		}
	}
	if roots != 1 {
		t.Errorf("%d root spans, want 1", roots)
	}
	for _, sp := range spans {
		if sp.Parent == "" {
			continue
		}
		if _, ok := byID[sp.Parent]; !ok {
			t.Errorf("span %s (%s) has dangling parent %s", sp.Name, sp.Process, sp.Parent)
		}
	}

	// The analyzer must walk a critical path from the root through the
	// lifecycle to a leaf, with bounded unattributed time.
	sum, err := trace.Analyze(spans)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.CriticalPath) < 4 {
		t.Errorf("critical path has %d stages:\n%s", len(sum.CriticalPath), sum.String())
	}
	if sum.CriticalPath[0].Name != "sdk.submit" {
		t.Errorf("critical path starts at %q", sum.CriticalPath[0].Name)
	}
	if sum.Unattributed < 0 || sum.Unattributed > sum.Duration {
		t.Errorf("unattributed %v out of [0, %v]", sum.Unattributed, sum.Duration)
	}
}
