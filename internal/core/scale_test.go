package core_test

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/protocol"
	"globuscompute/internal/webservice"
)

// TestManyEndpointsScale runs a small fleet — 16 endpoints, 400 tasks —
// through one service and broker, verifying no task is lost and the usage
// accounting matches.
func TestManyEndpointsScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 4, DisableHTTP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tok, err := tb.IssueToken("scale@uchicago.edu", "uchicago")
	if err != nil {
		t.Fatal(err)
	}

	const endpoints = 16
	const tasksPer = 25
	epIDs := make([]protocol.UUID, endpoints)
	for i := range epIDs {
		id, err := tb.StartEndpoint(core.EndpointOptions{
			Name: fmt.Sprintf("scale-ep-%02d", i), Owner: "scale", Workers: 2, MaxBlocks: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		epIDs[i] = id
	}

	fnID, err := tb.Service.RegisterFunction("scale", protocol.KindPython, []byte(`{"entrypoint":"identity"}`))
	if err != nil {
		t.Fatal(err)
	}

	// One batched submission per endpoint.
	var allIDs []protocol.UUID
	for _, ep := range epIDs {
		reqs := make([]webservice.SubmitRequest, tasksPer)
		for j := range reqs {
			payload, err := protocol.EncodePayload(protocol.PythonSpec{
				Entrypoint: "identity",
				Args:       []json.RawMessage{json.RawMessage(fmt.Sprintf("%d", j))},
			})
			if err != nil {
				t.Fatal(err)
			}
			reqs[j] = webservice.SubmitRequest{
				EndpointID: ep, FunctionID: fnID, Payload: payload,
			}
		}
		ids, err := tb.Service.Submit(tok, reqs)
		if err != nil {
			t.Fatal(err)
		}
		allIDs = append(allIDs, ids...)
	}

	// Every task reaches success.
	deadline := time.Now().Add(60 * time.Second)
	pending := make(map[protocol.UUID]bool, len(allIDs))
	for _, id := range allIDs {
		pending[id] = true
	}
	for len(pending) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d of %d tasks unfinished", len(pending), len(allIDs))
		}
		for id := range pending {
			st, err := tb.Service.GetTask(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.State.Terminal() {
				if st.State != protocol.StateSuccess {
					t.Fatalf("task %s: %s (%s)", id, st.State, st.Error)
				}
				delete(pending, id)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	u := tb.Service.Usage()
	if u.Endpoints != endpoints || u.Tasks != endpoints*tasksPer {
		t.Errorf("usage = %+v", u)
	}
	if u.TasksByState[protocol.StateSuccess] != endpoints*tasksPer {
		t.Errorf("by-state = %v", u.TasksByState)
	}
}

// TestTestbedMiscSurfaces covers the small testbed helpers.
func TestTestbedMiscSurfaces(t *testing.T) {
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 2, DisableHTTP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if tb.ServiceAddr() != "" {
		t.Error("ServiceAddr non-empty without HTTP")
	}
	if s := tb.String(); s == "" {
		t.Error("empty String()")
	}
	// Batch-provider endpoints work too.
	epID, err := tb.StartEndpoint(core.EndpointOptions{
		Name: "batch-ep", Owner: "o", UseBatch: true, NodesPerBlock: 1, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tok, _ := tb.IssueToken("u@x.edu", "x")
	fnID, _ := tb.Service.RegisterFunction("o", protocol.KindPython, []byte(`{"entrypoint":"identity"}`))
	payload, _ := protocol.EncodePayload(protocol.PythonSpec{
		Entrypoint: "identity",
		Args:       []json.RawMessage{json.RawMessage(`"batch"`)},
	})
	ids, err := tb.Service.Submit(tok, []webservice.SubmitRequest{
		{EndpointID: epID, FunctionID: fnID, Payload: payload},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _ := tb.Service.GetTask(ids[0])
		if st.State.Terminal() {
			if st.State != protocol.StateSuccess {
				t.Fatalf("state = %s", st.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch-provider task never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Double Close is safe.
	tb.Close()
}
