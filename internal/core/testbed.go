// Package core wires the full Globus Compute stack together in one process:
// auth, state store, broker, object store, web service (with REST front
// end), a simulated batch cluster, and endpoint agents. It is the
// deployment harness used by the examples, the integration tests, and the
// benchmark harness that regenerates the paper's figures.
package core

import (
	"fmt"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/container"
	"globuscompute/internal/endpoint"
	"globuscompute/internal/engine"
	"globuscompute/internal/mep"
	"globuscompute/internal/metrics"
	"globuscompute/internal/mpiengine"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/obs"
	"globuscompute/internal/protocol"
	"globuscompute/internal/provider"
	"globuscompute/internal/proxystore"
	"globuscompute/internal/registry"
	"globuscompute/internal/scheduler"
	"globuscompute/internal/shellfn"
	"globuscompute/internal/statestore"
	"globuscompute/internal/trace"
	"globuscompute/internal/webservice"
)

// Options configures a testbed.
type Options struct {
	// TCP serves the broker and object store over TCP and the web service
	// over HTTP even for in-process use (default: on, matching the real
	// deployment; turn off for microbenchmarks).
	DisableHTTP bool
	// ClusterNodes sizes the simulated batch cluster (default 8).
	ClusterNodes int
	// InlineThreshold overrides the service spill threshold.
	InlineThreshold int
	// TraceCapacity sizes the shared span collector ring
	// (default trace.DefaultCapacity).
	TraceCapacity int
	// FleetConfig tunes the fleet metrics store (ring sizes, staleness
	// window); the zero value takes the obs defaults.
	FleetConfig obs.FleetConfig
	// SLORules overrides the service's SLO rule set (nil = obs.DefaultRules).
	// Chaos tests shrink the burn-rate windows to milliseconds here.
	SLORules []obs.Rule
	// Admission enables front-door per-tenant overload protection
	// (nil = admission off, the default).
	Admission *scheduler.Admission
	// QueueLimit bounds each endpoint's broker task queue (0 = unbounded).
	QueueLimit int
	// BacklogShedThreshold sheds batch submits targeting endpoints whose
	// reported egress backlog is at or past this depth (0 = off).
	BacklogShedThreshold int
}

// Testbed is a running deployment.
type Testbed struct {
	Auth    *auth.Service
	Store   *statestore.Store
	Broker  *broker.Broker
	Objects *objectstore.Store
	Service *webservice.Service
	Sched   *scheduler.Scheduler

	// Traces collects every component's spans; one collector serves the
	// whole single-process deployment, as a tracing backend would in
	// production.
	Traces *trace.Collector

	// HTTP front ends (nil when DisableHTTP).
	HTTP       *webservice.Server
	BrokerSrv  *broker.Server
	ObjectsSrv *objectstore.Server

	agents []*endpoint.Agent
	meps   []*mep.Manager
	closed bool
}

// NewTestbed boots a deployment.
func NewTestbed(opts Options) (*Testbed, error) {
	if opts.ClusterNodes <= 0 {
		opts.ClusterNodes = 8
	}
	tb := &Testbed{
		Auth:    auth.NewService(),
		Store:   statestore.New(),
		Broker:  broker.New(),
		Objects: objectstore.New(),
		Sched:   scheduler.SimpleCluster(opts.ClusterNodes),
		Traces:  trace.NewCollector(opts.TraceCapacity),
	}
	tb.Broker.Tracer = trace.NewTracer("broker", tb.Traces)
	svc, err := webservice.New(webservice.Config{
		Store: tb.Store, Broker: tb.Broker, Objects: tb.Objects, Auth: tb.Auth,
		InlineThreshold:      opts.InlineThreshold,
		Tracer:               trace.NewTracer("webservice", tb.Traces),
		Fleet:                obs.NewFleetStore(opts.FleetConfig),
		SLORules:             opts.SLORules,
		Admission:            opts.Admission,
		QueueLimit:           opts.QueueLimit,
		BacklogShedThreshold: opts.BacklogShedThreshold,
	})
	if err != nil {
		return nil, err
	}
	tb.Service = svc
	if !opts.DisableHTTP {
		tb.BrokerSrv, err = broker.Serve(tb.Broker, "127.0.0.1:0")
		if err != nil {
			tb.Close()
			return nil, err
		}
		tb.ObjectsSrv, err = objectstore.ServeHTTP(tb.Objects, "127.0.0.1:0")
		if err != nil {
			tb.Close()
			return nil, err
		}
		tb.HTTP, err = webservice.ServeHTTP(svc, "127.0.0.1:0", tb.BrokerSrv.Addr(), tb.ObjectsSrv.Addr())
		if err != nil {
			tb.Close()
			return nil, err
		}
	}
	return tb, nil
}

// IssueToken mints a bearer token for a user identity with compute+manage
// scopes.
func (tb *Testbed) IssueToken(username, provider string) (auth.Token, error) {
	return tb.Auth.Issue(
		auth.Identity{Username: username, Provider: provider},
		[]string{auth.ScopeCompute, auth.ScopeManage},
		time.Hour, time.Time{},
	)
}

// EndpointOptions configures a testbed endpoint.
type EndpointOptions struct {
	Name  string
	Owner string
	// Workers sizes the local worker pool (default 4).
	Workers int
	// MaxBlocks caps engine elasticity (default 4; 1 pins capacity).
	MaxBlocks int
	// Transport selects the engine's interchange transport: "channel"
	// (default) or "tcp".
	Transport string
	// Containers attaches a container runtime so ShellFunctions may run
	// inside images (nil = containers unsupported).
	Containers *container.Runtime
	// ProxyStore enables worker-side ProxyStore integration: proxied
	// python arguments resolve transparently, and results above
	// ProxyPolicy.MinSize are proxied back.
	ProxyStore  *proxystore.Store
	ProxyPolicy proxystore.Policy
	// UseBatch provisions workers through the batch scheduler simulator
	// instead of local goroutines.
	UseBatch bool
	// NodesPerBlock applies with UseBatch (default 1).
	NodesPerBlock int
	// WithMPI attaches a GlobusMPIEngine sharing the batch cluster.
	WithMPI bool
	// MPIBlockNodes sizes the MPI engine's block (default 2).
	MPIBlockNodes int
	// Registry overrides the worker callable registry (default Builtins).
	Registry *registry.Registry
	// SandboxRoot hosts ShellFunction sandboxes (default system temp).
	SandboxRoot string
	// AllowedFunctions restricts executable functions.
	AllowedFunctions []protocol.UUID
	// AuthPolicy names an auth policy enforced at submit.
	AuthPolicy string
	// WrapRunner, when set, wraps the engine's task runner (fault injection:
	// worker kills, execution delays).
	WrapRunner func(engine.TaskRunner) engine.TaskRunner
	// WrapConn, when set, wraps the agent's broker connection (fault
	// injection: publish failures, connection drops; or a reconnecting
	// wrapper).
	WrapConn func(broker.Conn) broker.Conn
	// MaxAttempts overrides the engine's per-task attempt budget
	// (default: engine's own default).
	MaxAttempts int
	// HeartbeatInterval overrides the agent heartbeat period (default 1s).
	HeartbeatInterval time.Duration
	// MetricsInterval overrides the agent's snapshot decimation period
	// (default 2x the heartbeat interval).
	MetricsInterval time.Duration
	// SuppressOfflineHeartbeat drops the agent's final offline heartbeat,
	// simulating a crash rather than a clean shutdown — the staleness SLO
	// should fire for such an endpoint instead of marking it stopped.
	SuppressOfflineHeartbeat bool
}

// StartEndpoint registers and starts a single-user endpoint agent wired to
// the testbed broker, and marks it online. It returns the endpoint ID.
func (tb *Testbed) StartEndpoint(opts EndpointOptions) (protocol.UUID, error) {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Registry == nil {
		opts.Registry = registry.Builtins()
	}
	epID, err := tb.Service.RegisterEndpoint(webservice.RegisterEndpointRequest{
		Name: opts.Name, Owner: opts.Owner,
		AllowedFunctions: opts.AllowedFunctions, AuthPolicy: opts.AuthPolicy,
	})
	if err != nil {
		return "", err
	}
	agent, err := tb.buildAgent(epID, opts)
	if err != nil {
		return "", err
	}
	if err := agent.Start(); err != nil {
		return "", err
	}
	tb.agents = append(tb.agents, agent)
	return epID, nil
}

// StartRestartableEndpoint is StartEndpoint but also returns the agent so
// tests can stop and restart it (simulating endpoint churn).
func (tb *Testbed) StartRestartableEndpoint(opts EndpointOptions) (protocol.UUID, *endpoint.Agent, error) {
	epID, err := tb.StartEndpoint(opts)
	if err != nil {
		return "", nil, err
	}
	return epID, tb.agents[len(tb.agents)-1], nil
}

// RestartEndpointAgent builds and starts a fresh agent for an existing
// endpoint ID (after the previous agent was stopped).
func (tb *Testbed) RestartEndpointAgent(epID protocol.UUID, opts EndpointOptions) (*endpoint.Agent, error) {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Registry == nil {
		opts.Registry = registry.Builtins()
	}
	agent, err := tb.buildAgent(epID, opts)
	if err != nil {
		return nil, err
	}
	if err := agent.Start(); err != nil {
		return nil, err
	}
	tb.agents = append(tb.agents, agent)
	return agent, nil
}

// buildAgent assembles an agent for an already registered endpoint ID.
func (tb *Testbed) buildAgent(epID protocol.UUID, opts EndpointOptions) (*endpoint.Agent, error) {
	var prov provider.Provider
	if opts.UseBatch {
		npb := opts.NodesPerBlock
		if npb <= 0 {
			npb = 1
		}
		p, err := provider.NewBatch(provider.BatchConfig{Scheduler: tb.Sched, Partition: "default", NodesPerBlock: npb})
		if err != nil {
			return nil, err
		}
		prov = p
	} else {
		prov = provider.NewLocal(opts.Workers)
	}
	maxBlocks := opts.MaxBlocks
	if maxBlocks <= 0 {
		maxBlocks = 4
	}
	rc := endpoint.RunnerConfig{
		Registry: opts.Registry,
		Shell: shellfn.Options{
			SandboxRoot: opts.SandboxRoot,
			Containers:  opts.Containers,
		},
		Objects: tb.Objects,
	}
	if opts.ProxyStore != nil {
		preg := proxystore.NewRegistry()
		preg.Register(opts.ProxyStore)
		rc.Proxies = preg
		rc.ProxyStore = opts.ProxyStore
		rc.ProxyPolicy = opts.ProxyPolicy
	}
	var runner engine.TaskRunner = endpoint.NewRunnerFrom(rc)
	if opts.WrapRunner != nil {
		runner = opts.WrapRunner(runner)
	}
	eng, err := engine.New(engine.Config{
		Provider: prov, Run: runner,
		WorkersPerNode: workersPerNode(opts),
		InitBlocks:     1, MinBlocks: 1, MaxBlocks: maxBlocks,
		MaxAttempts:     opts.MaxAttempts,
		ScalingInterval: 20 * time.Millisecond,
		Transport:       opts.Transport,
		Tracer:          trace.NewTracer("engine", tb.Traces),
	})
	if err != nil {
		return nil, err
	}
	// The heartbeat closure reports status plus the agent's utilization;
	// agentRef is assigned before Start launches the heartbeat loop.
	var agentRef *endpoint.Agent
	conn := broker.Conn(broker.LocalConn(tb.Broker))
	if opts.WrapConn != nil {
		conn = opts.WrapConn(conn)
	}
	hbInterval := opts.HeartbeatInterval
	if hbInterval <= 0 {
		hbInterval = time.Second
	}
	cfg := endpoint.Config{
		EndpointID: epID,
		Conn:       conn,
		Engine:     eng,
		Objects:    tb.Objects,
		Heartbeat: func(online bool) {
			if !online && opts.SuppressOfflineHeartbeat {
				return // simulate a crash: the service hears nothing
			}
			var load *statestore.EndpointLoad
			var snap *metrics.Snapshot
			if agentRef != nil {
				l := agentRef.SnapshotLoad()
				backlog := l.EgressBacklog
				load = &statestore.EndpointLoad{
					PendingTasks: l.PendingTasks, TotalWorkers: l.TotalWorkers,
					FreeWorkers: l.FreeWorkers, TasksReceived: l.TasksReceived,
					ResultsPublished: l.ResultsPublished, EgressBacklog: &backlog,
				}
				if d, ok := agentRef.SnapshotMetrics(time.Now()); ok {
					snap = &d
				}
			}
			_ = tb.Service.RecordHeartbeat(epID, online, load, snap)
		},
		HeartbeatInterval: hbInterval,
		MetricsInterval:   opts.MetricsInterval,
		Tracer:            trace.NewTracer("endpoint", tb.Traces),
	}
	if opts.WithMPI {
		blockNodes := opts.MPIBlockNodes
		if blockNodes <= 0 {
			blockNodes = 2
		}
		mpiProv, err := provider.NewBatch(provider.BatchConfig{
			Scheduler: tb.Sched, Partition: "default", NodesPerBlock: blockNodes,
		})
		if err != nil {
			return nil, err
		}
		mpi, err := mpiengine.New(mpiengine.Config{Provider: mpiProv})
		if err != nil {
			return nil, err
		}
		cfg.MPI = mpi
	}
	agent, err := endpoint.New(cfg)
	if err != nil {
		return nil, err
	}
	agentRef = agent
	return agent, nil
}

func workersPerNode(opts EndpointOptions) int {
	if opts.UseBatch {
		return opts.Workers
	}
	// The local provider exposes opts.Workers synthetic nodes; one worker
	// per node keeps the total at opts.Workers.
	return 1
}

// ServiceAddr returns the REST API address (requires HTTP mode).
func (tb *Testbed) ServiceAddr() string {
	if tb.HTTP == nil {
		return ""
	}
	return tb.HTTP.Addr()
}

// Close shuts everything down in dependency order.
func (tb *Testbed) Close() {
	if tb.closed {
		return
	}
	tb.closed = true
	for _, m := range tb.meps {
		m.Stop()
	}
	for _, a := range tb.agents {
		a.Stop()
	}
	if tb.HTTP != nil {
		tb.HTTP.Close()
	}
	if tb.Service != nil {
		tb.Service.Close()
	}
	if tb.BrokerSrv != nil {
		tb.BrokerSrv.Close()
	}
	if tb.ObjectsSrv != nil {
		tb.ObjectsSrv.Close()
	}
	tb.Broker.Close()
	tb.Sched.Close()
}

// String summarizes the deployment.
func (tb *Testbed) String() string {
	mode := "in-process"
	if tb.HTTP != nil {
		mode = fmt.Sprintf("http=%s broker=%s objects=%s", tb.HTTP.Addr(), tb.BrokerSrv.Addr(), tb.ObjectsSrv.Addr())
	}
	return fmt.Sprintf("testbed(%s, endpoints=%d)", mode, len(tb.agents))
}
