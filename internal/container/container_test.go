package container

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestValidImage(t *testing.T) {
	good := []string{"python:3.11", "registry.example/sim:latest", "app"}
	for _, img := range good {
		if !ValidImage(img) {
			t.Errorf("ValidImage(%q) = false", img)
		}
	}
	bad := []string{"", "has space", "a:b:c", "quote\"inject", "back\\slash"}
	for _, img := range bad {
		if ValidImage(img) {
			t.Errorf("ValidImage(%q) = true", img)
		}
	}
}

func TestColdThenWarm(t *testing.T) {
	r := NewRuntime(50*time.Millisecond, 0)
	ctx := context.Background()
	if r.Warm("python:3.11") {
		t.Fatal("image warm before pull")
	}
	start := time.Now()
	if err := r.EnsureImage(ctx, "python:3.11"); err != nil {
		t.Fatal(err)
	}
	if cold := time.Since(start); cold < 50*time.Millisecond {
		t.Errorf("cold pull took %s, want >= 50ms", cold)
	}
	if !r.Warm("python:3.11") {
		t.Fatal("image not cached")
	}
	start = time.Now()
	if err := r.EnsureImage(ctx, "python:3.11"); err != nil {
		t.Fatal(err)
	}
	if warm := time.Since(start); warm > 20*time.Millisecond {
		t.Errorf("warm hit took %s", warm)
	}
	if r.Metrics.Counter("cold_pulls").Value() != 1 || r.Metrics.Counter("warm_hits").Value() != 1 {
		t.Errorf("cold=%d warm=%d", r.Metrics.Counter("cold_pulls").Value(), r.Metrics.Counter("warm_hits").Value())
	}
}

func TestEnsureImageBadRef(t *testing.T) {
	r := NewRuntime(0, 0)
	if err := r.EnsureImage(context.Background(), "bad image"); !errors.Is(err, ErrBadImage) {
		t.Errorf("err = %v", err)
	}
}

func TestEnsureImageContextCancel(t *testing.T) {
	r := NewRuntime(10*time.Second, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := r.EnsureImage(ctx, "slow:img"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
	if r.Warm("slow:img") {
		t.Error("cancelled pull cached the image")
	}
}

func TestInvokeEnv(t *testing.T) {
	r := NewRuntime(0, 0)
	env, err := r.Invoke(context.Background(), "sim:1")
	if err != nil {
		t.Fatal(err)
	}
	if env["GC_CONTAINER"] != "sim:1" {
		t.Errorf("env = %v", env)
	}
	if r.Metrics.Counter("invocations").Value() != 1 {
		t.Error("invocation not counted")
	}
}

func TestInvokeStartDelay(t *testing.T) {
	r := NewRuntime(0, 30*time.Millisecond)
	r.EnsureImage(context.Background(), "sim:1")
	start := time.Now()
	if _, err := r.Invoke(context.Background(), "sim:1"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("start delay not applied: %s", d)
	}
}

func TestConcurrentEnsure(t *testing.T) {
	r := NewRuntime(10*time.Millisecond, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := r.EnsureImage(context.Background(), "shared:img"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if !r.Warm("shared:img") {
		t.Error("image not cached after concurrent pulls")
	}
}
