// Package container simulates the container execution option the paper
// notes Globus Compute supports ("manages execution of functions on remote
// resources, optionally using containers"): per-endpoint image caches with
// cold-pull latency, warm reuse, and command wrapping that records the
// container context in the task environment.
package container

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"globuscompute/internal/metrics"
)

// Common errors.
var (
	ErrBadImage = errors.New("container: malformed image reference")
)

// Runtime models one node's container runtime: images pull once (cold
// latency) and run warm afterwards.
type Runtime struct {
	// PullDelay simulates registry fetch + unpack per uncached image.
	PullDelay time.Duration
	// StartDelay simulates per-invocation container start.
	StartDelay time.Duration

	mu     sync.Mutex
	pulled map[string]bool

	Metrics *metrics.Registry
}

// NewRuntime returns a runtime with the given cold-pull and start delays.
func NewRuntime(pullDelay, startDelay time.Duration) *Runtime {
	return &Runtime{
		PullDelay:  pullDelay,
		StartDelay: startDelay,
		pulled:     make(map[string]bool),
		Metrics:    metrics.NewRegistry(),
	}
}

// ValidImage checks an image reference looks like repo[/name][:tag].
func ValidImage(image string) bool {
	if image == "" || strings.ContainsAny(image, " \t\n'\"\\") {
		return false
	}
	if strings.Count(image, ":") > 1 {
		return false
	}
	return true
}

// EnsureImage pulls the image if this runtime has not seen it (cold start);
// subsequent calls return immediately (warm).
func (r *Runtime) EnsureImage(ctx context.Context, image string) error {
	if !ValidImage(image) {
		return fmt.Errorf("%w: %q", ErrBadImage, image)
	}
	r.mu.Lock()
	if r.pulled[image] {
		r.mu.Unlock()
		r.Metrics.Counter("warm_hits").Inc()
		return nil
	}
	r.mu.Unlock()
	// Pull outside the lock; concurrent pulls of the same image both wait
	// (the real runtime deduplicates; the double sleep is a conservative
	// bound and keeps the code simple).
	select {
	case <-time.After(r.PullDelay):
	case <-ctx.Done():
		return ctx.Err()
	}
	r.mu.Lock()
	r.pulled[image] = true
	r.mu.Unlock()
	r.Metrics.Counter("cold_pulls").Inc()
	return nil
}

// Warm reports whether the image is cached.
func (r *Runtime) Warm(image string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pulled[image]
}

// Invoke prepares one containerized invocation: it ensures the image,
// applies the start delay, and returns the environment that marks the
// container context for the command.
func (r *Runtime) Invoke(ctx context.Context, image string) (map[string]string, error) {
	if err := r.EnsureImage(ctx, image); err != nil {
		return nil, err
	}
	if r.StartDelay > 0 {
		select {
		case <-time.After(r.StartDelay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	r.Metrics.Counter("invocations").Inc()
	return map[string]string{
		"GC_CONTAINER":      image,
		"GC_CONTAINER_WARM": "1",
		"CONTAINER_RUNTIME": "gc-sim",
	}, nil
}
