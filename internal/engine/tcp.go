package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"globuscompute/internal/obs"
	"globuscompute/internal/protocol"
	"globuscompute/internal/provider"
)

// TCP transport: in "tcp" mode the interchange listens on a socket and each
// provisioned block dials in, registers its capacity, and exchanges
// length-prefixed task/result envelopes — the ZeroMQ-interchange topology of
// the real engine, with communication to workers multiplexed through one
// connection per manager.

// registerBody announces a manager to the interchange.
type registerBody struct {
	BlockID  string   `json:"block_id"`
	Capacity int      `json:"capacity"`
	Nodes    []string `json:"nodes"`
}

// startInterchange opens the listener and serves manager connections.
func (e *Engine) startInterchange() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("engine: interchange listen: %w", err)
	}
	e.ln = ln
	e.loops.Add(1)
	go func() {
		defer e.loops.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			e.loops.Add(1)
			go func() {
				defer e.loops.Done()
				e.serveManagerConn(conn)
			}()
		}
	}()
	return nil
}

// InterchangeAddr returns the TCP interchange address ("" in channel mode
// or before Start).
func (e *Engine) InterchangeAddr() string {
	if e.ln == nil {
		return ""
	}
	return e.ln.Addr().String()
}

// serveManagerConn handles one manager connection on the interchange side:
// registration, task writing, result reading, and cleanup with requeue.
func (e *Engine) serveManagerConn(conn net.Conn) {
	defer conn.Close()
	r := protocol.NewFrameReader(conn)
	w := protocol.NewFrameWriter(conn)

	env, err := r.Read()
	if err != nil || env.Type != protocol.EnvRegister {
		return
	}
	var reg registerBody
	if err := env.Decode(&reg); err != nil {
		return
	}

	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.nextMgr++
	m := &manager{
		id:         fmt.Sprintf("mgr-%d", e.nextMgr),
		blockID:    reg.BlockID,
		nodes:      reg.Nodes,
		capacity:   reg.Capacity,
		tasks:      make(chan protocol.Task, reg.Capacity),
		freeSlots:  reg.Capacity,
		lastActive: time.Now(),
		inflight:   make(map[protocol.UUID]protocol.Task, reg.Capacity),
	}
	e.managers[m.id] = m
	e.blocks[reg.BlockID] = m.id
	e.mu.Unlock()
	e.wakeUp()
	_ = w.Write(protocol.MustEnvelope(protocol.EnvOK, m.id, nil))

	// Writer: forward dispatched tasks onto the wire.
	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		for t := range m.tasks {
			env, err := protocol.NewEnvelope(protocol.EnvTask, string(t.ID), t)
			if err != nil {
				e.requeue(t)
				continue
			}
			e.mu.Lock()
			m.inflight[t.ID] = t
			e.mu.Unlock()
			if err := w.Write(env); err != nil {
				e.mu.Lock()
				delete(m.inflight, t.ID)
				e.mu.Unlock()
				e.requeue(t)
				return
			}
		}
		// Orderly close: tell the manager to finish and exit.
		_ = w.Write(protocol.MustEnvelope(protocol.EnvShutdown, "", nil))
	}()

	// Reader: results and heartbeats until the connection drops.
	for {
		env, err := r.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				obs.Component("engine").Warn("interchange read", "block_id", m.id, "error", err)
			}
			break
		}
		switch env.Type {
		case protocol.EnvResult:
			var res protocol.Result
			if err := env.Decode(&res); err != nil {
				continue
			}
			e.mu.Lock()
			t, inflight := m.inflight[res.TaskID]
			delete(m.inflight, res.TaskID)
			m.freeSlots++
			m.lastActive = time.Now()
			e.mu.Unlock()
			// The remote pool has no tracer; record its execution span here
			// from the result's timestamps, on behalf of the worker.
			if inflight && t.Trace.Valid() && !res.Started.IsZero() {
				res.Trace = e.cfg.Tracer.Record(t.Trace, "engine.execute",
					res.Started, res.Completed, "worker", res.WorkerID, "block", m.blockID)
			} else if res.Trace == nil && inflight {
				res.Trace = t.Trace
			}
			e.results <- res
			e.Metrics.Counter("completed").Inc()
			e.wakeUp()
		case protocol.EnvHeartbeat:
			e.mu.Lock()
			m.lastActive = time.Now()
			e.mu.Unlock()
		}
	}

	// Connection gone: remove the manager and requeue anything undrained
	// or in flight (at-least-once; a task whose result write failed after
	// execution runs again).
	e.mu.Lock()
	alreadyRemoved := m.removed
	var orphaned []protocol.Task
	if !m.removed {
		m.removed = true
		close(m.tasks)
		for _, t := range m.inflight {
			orphaned = append(orphaned, t)
		}
		m.inflight = make(map[protocol.UUID]protocol.Task)
	}
	e.mu.Unlock()
	if !alreadyRemoved {
		for t := range m.tasks {
			e.requeue(t)
		}
		for _, t := range orphaned {
			e.requeue(t)
		}
	}
	<-writeDone
	e.mu.Lock()
	delete(e.managers, m.id)
	delete(e.blocks, m.blockID)
	e.mu.Unlock()
	e.Metrics.Counter("blocks_released").Inc()
	e.wakeUp()
}

// runRemoteManager is the pilot-job body for TCP mode: the provisioned
// block dials the interchange and serves tasks until released.
func (e *Engine) runRemoteManager(ctx context.Context, blk provider.BlockInfo) error {
	capacity := len(blk.Nodes) * e.cfg.WorkersPerNode
	if capacity == 0 {
		capacity = e.cfg.WorkersPerNode
	}
	pool := &remotePool{
		run:      e.cfg.Run,
		capacity: capacity,
		blockID:  blk.ID,
		nodes:    blk.Nodes,
	}
	return pool.serve(ctx.Done(), e.InterchangeAddr())
}

// taskContext derives a context cancelled when done closes (the block was
// released), handed to task runners so in-flight work stops promptly.
func taskContext(done <-chan struct{}) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		select {
		case <-done:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

// remotePool is the block-side half of the TCP transport.
type remotePool struct {
	run      TaskRunner
	capacity int
	blockID  string
	nodes    []string
}

// serve dials addr and processes tasks until the context ends or the
// interchange shuts the stream down.
func (p *remotePool) serve(done <-chan struct{}, addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("engine: manager dial: %w", err)
	}
	defer conn.Close()
	w := protocol.NewFrameWriter(conn)
	r := protocol.NewFrameReader(conn)
	reg := registerBody{BlockID: p.blockID, Capacity: p.capacity, Nodes: p.nodes}
	if err := w.Write(protocol.MustEnvelope(protocol.EnvRegister, "", reg)); err != nil {
		return err
	}
	ack, err := r.Read()
	if err != nil || ack.Type != protocol.EnvOK {
		return fmt.Errorf("engine: manager registration rejected: %v", err)
	}
	mgrID := ack.ID

	// Close the connection when the block is released so both loops end.
	go func() {
		<-done
		conn.Close()
	}()

	taskCtx, cancel := taskContext(done)
	defer cancel()

	var wg sync.WaitGroup
	defer wg.Wait()
	sem := make(chan struct{}, p.capacity)
	workerSeq := 0
	for {
		env, err := r.Read()
		if err != nil {
			return nil // connection closed (shutdown or interchange gone)
		}
		switch env.Type {
		case protocol.EnvShutdown:
			return nil
		case protocol.EnvTask:
			var task protocol.Task
			if err := env.Decode(&task); err != nil {
				continue
			}
			sem <- struct{}{}
			workerSeq++
			node := ""
			if len(p.nodes) > 0 {
				node = p.nodes[workerSeq%len(p.nodes)]
			}
			info := WorkerInfo{
				ID:      fmt.Sprintf("%s-w%d", mgrID, workerSeq),
				Node:    node,
				BlockID: p.blockID,
			}
			wg.Add(1)
			go func(task protocol.Task, info WorkerInfo) {
				defer wg.Done()
				defer func() { <-sem }()
				started := time.Now()
				res := p.run(taskCtx, task, info)
				res.TaskID = task.ID
				res.WorkerID = info.ID
				if !task.Submitted.IsZero() {
					res.QueueDelay = started.Sub(task.Submitted)
				}
				if res.Started.IsZero() {
					res.Started = started
				}
				if res.Completed.IsZero() {
					res.Completed = time.Now()
				}
				res.ExecutionMS = float64(res.Completed.Sub(res.Started)) / float64(time.Millisecond)
				body, err := json.Marshal(res)
				if err != nil {
					return
				}
				_ = w.Write(protocol.Envelope{Type: protocol.EnvResult, ID: string(task.ID), Body: body})
			}(task, info)
		}
	}
}
