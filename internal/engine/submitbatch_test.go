package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/provider"
	"globuscompute/internal/trace"
)

func TestSubmitBatchRunsAll(t *testing.T) {
	eng, _ := New(Config{
		Provider:   provider.NewLocal(2),
		Run:        echoRunner,
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
		WorkersPerNode: 2,
	})
	eng.Start()
	defer eng.Stop()
	const n = 30
	batch := make([]protocol.Task, n)
	want := map[string]bool{}
	for i := range batch {
		p := fmt.Sprintf("batch-%d", i)
		batch[i] = newTask(p)
		want[p] = true
	}
	if errs := eng.SubmitBatch(batch); errs != nil {
		t.Fatalf("errs = %v, want nil", errs)
	}
	if v := eng.Metrics.Counter("submitted").Value(); v != n {
		t.Errorf("submitted counter = %d, want %d", v, n)
	}
	timeout := time.After(5 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case r := <-eng.Results():
			if r.State != protocol.StateSuccess {
				t.Fatalf("result %+v", r)
			}
			delete(want, string(r.Output))
		case <-timeout:
			t.Fatalf("received %d of %d results", i, n)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing results: %v", want)
	}
}

func TestSubmitBatchEmptyIsNoop(t *testing.T) {
	eng, _ := New(Config{Provider: provider.NewLocal(1), Run: echoRunner, InitBlocks: 1, MinBlocks: 1})
	if errs := eng.SubmitBatch(nil); errs != nil {
		t.Errorf("empty batch errs = %v", errs)
	}
}

func TestSubmitBatchBeforeStartAndAfterStop(t *testing.T) {
	eng, _ := New(Config{Provider: provider.NewLocal(1), Run: echoRunner, InitBlocks: 1, MinBlocks: 1})
	errs := eng.SubmitBatch([]protocol.Task{newTask("a"), newTask("b")})
	if len(errs) != 2 || !errors.Is(errs[0], ErrNotStarted) || !errors.Is(errs[1], ErrNotStarted) {
		t.Errorf("before start errs = %v, want ErrNotStarted x2", errs)
	}
	eng.Start()
	eng.Stop()
	errs = eng.SubmitBatch([]protocol.Task{newTask("c")})
	if len(errs) != 1 || !errors.Is(errs[0], ErrStopped) {
		t.Errorf("after stop errs = %v, want ErrStopped", errs)
	}
}

// TestSubmitBatchPartialOverflow checks per-task acceptance: a batch larger
// than the remaining backlog keeps its accepted prefix enqueued and reports
// an error only for the overflowing tail.
func TestSubmitBatchPartialOverflow(t *testing.T) {
	eng, _ := New(Config{
		Provider:   provider.NewLocal(1),
		Run:        slowRunner(time.Second),
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
		QueueCapacity: 4,
	})
	eng.Start()
	defer eng.Stop()
	batch := make([]protocol.Task, 20)
	for i := range batch {
		batch[i] = newTask(fmt.Sprint(i))
	}
	errs := eng.SubmitBatch(batch)
	if errs == nil {
		t.Fatal("batch of 20 against capacity 4 fully accepted")
	}
	accepted, rejected := 0, 0
	for _, err := range errs {
		if err == nil {
			accepted++
		} else {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("no per-task rejections recorded")
	}
	// Capacity 4 backlog plus whatever the dispatcher drained mid-batch;
	// acceptance stays well below the attempted 20.
	if accepted > 8 {
		t.Errorf("accepted %d of 20 with capacity 4", accepted)
	}
	if v := eng.Metrics.Counter("submitted").Value(); v != int64(accepted) {
		t.Errorf("submitted counter = %d, want %d accepted", v, accepted)
	}
}

// TestBareRunnerResultGetsIdentity is the regression test for central result
// stamping: a runner that fills only State/Output (the NewRunnerFrom success
// paths do exactly this) still yields a result carrying the task's ID and
// trace context, because workerLoop stamps identity engine-side.
func TestBareRunnerResultGetsIdentity(t *testing.T) {
	bare := func(ctx context.Context, task protocol.Task, w WorkerInfo) protocol.Result {
		return protocol.Result{State: protocol.StateSuccess, Output: []byte(`"ok"`)}
	}
	collector := trace.NewCollector(64)
	tracer := trace.NewTracer("engine-test", collector)
	eng, _ := New(Config{
		Provider:   provider.NewLocal(1),
		Run:        bare,
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
		Tracer: tracer,
	})
	eng.Start()
	defer eng.Stop()

	task := newTask("identity")
	root := tracer.StartSpan(nil, "test.root")
	task.Trace = root.Context()
	if err := eng.Submit(task); err != nil {
		t.Fatal(err)
	}
	r := <-eng.Results()
	if r.TaskID != task.ID {
		t.Errorf("TaskID = %q, want %q (engine must stamp identity)", r.TaskID, task.ID)
	}
	if r.WorkerID == "" {
		t.Error("WorkerID not stamped")
	}
	if !r.Trace.Valid() {
		t.Fatal("trace context not stamped on bare runner result")
	}
	if r.Trace.TraceID != root.Context().TraceID {
		t.Errorf("result trace %s not in submitting trace %s", r.Trace.TraceID, root.Context().TraceID)
	}
	root.End()
}
