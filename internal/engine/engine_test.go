package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/provider"
	"globuscompute/internal/scheduler"
)

// echoRunner returns the task payload as output.
func echoRunner(ctx context.Context, task protocol.Task, w WorkerInfo) protocol.Result {
	if ctx.Err() != nil {
		return protocol.Result{State: protocol.StateFailed, Error: "block released"}
	}
	return protocol.Result{State: protocol.StateSuccess, Output: task.Payload}
}

// slowRunner sleeps d then succeeds.
func slowRunner(d time.Duration) TaskRunner {
	return func(ctx context.Context, task protocol.Task, w WorkerInfo) protocol.Result {
		select {
		case <-time.After(d):
			return protocol.Result{State: protocol.StateSuccess, Output: task.Payload}
		case <-ctx.Done():
			return protocol.Result{State: protocol.StateFailed, Error: "cancelled"}
		}
	}
}

func newTask(payload string) protocol.Task {
	return protocol.Task{ID: protocol.NewUUID(), Kind: protocol.KindPython, Payload: []byte(payload)}
}

func TestEngineRunsTasks(t *testing.T) {
	eng, err := New(Config{
		Provider:   provider.NewLocal(2),
		Run:        echoRunner,
		InitBlocks: 1, MaxBlocks: 1, MinBlocks: 1,
		WorkersPerNode: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 20
	want := map[string]bool{}
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("task-%d", i)
		want[p] = true
		if err := eng.Submit(newTask(p)); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]bool{}
	timeout := time.After(5 * time.Second)
	for len(got) < n {
		select {
		case r := <-eng.Results():
			if r.State != protocol.StateSuccess {
				t.Fatalf("result %+v", r)
			}
			got[string(r.Output)] = true
		case <-timeout:
			t.Fatalf("received %d of %d results", len(got), n)
		}
	}
	for p := range want {
		if !got[p] {
			t.Errorf("missing result for %s", p)
		}
	}
	eng.Stop()
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Provider: provider.NewLocal(1)}); err == nil {
		t.Error("missing runner accepted")
	}
	if _, err := New(Config{Provider: provider.NewLocal(1), Run: echoRunner, MinBlocks: 5, MaxBlocks: 2}); err == nil {
		t.Error("min > max accepted")
	}
}

func TestSubmitBeforeStart(t *testing.T) {
	eng, _ := New(Config{Provider: provider.NewLocal(1), Run: echoRunner})
	if err := eng.Submit(newTask("x")); !errors.Is(err, ErrNotStarted) {
		t.Errorf("err = %v", err)
	}
}

func TestSubmitAfterStop(t *testing.T) {
	eng, _ := New(Config{Provider: provider.NewLocal(1), Run: echoRunner, InitBlocks: 1, MinBlocks: 1})
	eng.Start()
	eng.Stop()
	if err := eng.Submit(newTask("x")); !errors.Is(err, ErrStopped) {
		t.Errorf("err = %v", err)
	}
}

func TestStopFailsPendingTasks(t *testing.T) {
	// One slow worker; submit more tasks than can start, stop, and expect
	// failed results for the stragglers rather than silence.
	eng, _ := New(Config{
		Provider:   provider.NewLocal(1),
		Run:        slowRunner(30 * time.Millisecond),
		InitBlocks: 1, MaxBlocks: 1, MinBlocks: 1,
	})
	eng.Start()
	const n = 10
	for i := 0; i < n; i++ {
		if err := eng.Submit(newTask(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	go eng.Stop()
	got := 0
	for range eng.Results() {
		got++
	}
	if got != n {
		t.Errorf("results = %d, want %d (no task lost in shutdown)", got, n)
	}
}

func TestScaleOutOnBacklog(t *testing.T) {
	sched := scheduler.SimpleCluster(4)
	defer sched.Close()
	prov, _ := provider.NewBatch(provider.BatchConfig{Scheduler: sched, NodesPerBlock: 1})
	eng, _ := New(Config{
		Provider:   prov,
		Run:        slowRunner(50 * time.Millisecond),
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 4,
		WorkersPerNode:  1,
		ScalingInterval: 10 * time.Millisecond,
	})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	const n = 24
	for i := 0; i < n; i++ {
		eng.Submit(newTask(fmt.Sprint(i)))
	}
	// Watch for scale-out while collecting results.
	maxBlocks := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		got := 0
		for got < n {
			select {
			case r := <-eng.Results():
				if r.State != protocol.StateSuccess {
					t.Errorf("result %+v", r)
				}
				got++
			case <-time.After(10 * time.Second):
				t.Errorf("only %d of %d results", got, n)
				return
			}
		}
	}()
	poll := time.NewTicker(5 * time.Millisecond)
	defer poll.Stop()
	for {
		select {
		case <-done:
			if maxBlocks < 2 {
				t.Errorf("engine never scaled out (max live blocks %d)", maxBlocks)
			}
			return
		case <-poll.C:
			if s := eng.Stats(); s.LiveBlocks > maxBlocks {
				maxBlocks = s.LiveBlocks
			}
		}
	}
}

func TestScaleInOnIdle(t *testing.T) {
	sched := scheduler.SimpleCluster(4)
	defer sched.Close()
	prov, _ := provider.NewBatch(provider.BatchConfig{Scheduler: sched, NodesPerBlock: 1})
	eng, _ := New(Config{
		Provider:   prov,
		Run:        echoRunner,
		InitBlocks: 3, MinBlocks: 1, MaxBlocks: 4,
		ScalingInterval: 10 * time.Millisecond,
		IdleTimeout:     30 * time.Millisecond,
	})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := eng.Stats()
		if s.ConnectedMgrs == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("managers = %d, want scale-in to 1", s.ConnectedMgrs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBlockWalltimeRequeuesTasks(t *testing.T) {
	// Blocks with short walltime die mid-stream; tasks must still all
	// produce results via requeue onto replacement blocks.
	sched := scheduler.SimpleCluster(2)
	defer sched.Close()
	prov, _ := provider.NewBatch(provider.BatchConfig{
		Scheduler: sched, NodesPerBlock: 1, Walltime: 150 * time.Millisecond,
	})
	eng, _ := New(Config{
		Provider:   prov,
		Run:        slowRunner(20 * time.Millisecond),
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 2,
		ScalingInterval: 10 * time.Millisecond,
	})
	eng.Start()
	defer eng.Stop()
	const n = 30
	for i := 0; i < n; i++ {
		eng.Submit(newTask(fmt.Sprint(i)))
	}
	got := 0
	timeout := time.After(15 * time.Second)
	for got < n {
		select {
		case <-eng.Results():
			got++
		case <-timeout:
			t.Fatalf("results = %d of %d after block churn", got, n)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, _ := New(Config{
		Provider:   provider.NewLocal(4),
		Run:        echoRunner,
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
		WorkersPerNode: 1,
	})
	eng.Start()
	defer eng.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := eng.Stats()
		if s.TotalWorkers == 4 && s.FreeWorkers == 4 && s.ConnectedMgrs == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v", eng.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 8; i++ {
		eng.Submit(newTask(fmt.Sprint(i)))
	}
	for i := 0; i < 8; i++ {
		<-eng.Results()
	}
	s := eng.Stats()
	if s.TasksSubmitted != 8 || s.TasksCompleted != 8 {
		t.Errorf("submitted/completed = %d/%d", s.TasksSubmitted, s.TasksCompleted)
	}
	if s.BlocksLaunched != 1 {
		t.Errorf("blocks launched = %d", s.BlocksLaunched)
	}
}

func TestResultMetadataStamped(t *testing.T) {
	eng, _ := New(Config{
		Provider:   provider.NewLocal(1),
		Run:        slowRunner(10 * time.Millisecond),
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
	})
	eng.Start()
	defer eng.Stop()
	task := newTask("meta")
	eng.Submit(task)
	r := <-eng.Results()
	if r.TaskID != task.ID {
		t.Errorf("task ID = %s", r.TaskID)
	}
	if r.WorkerID == "" {
		t.Error("worker ID missing")
	}
	if r.ExecutionMS < 5 {
		t.Errorf("execution ms = %f, want >= ~10", r.ExecutionMS)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	eng, _ := New(Config{Provider: provider.NewLocal(1), Run: echoRunner, InitBlocks: 1, MinBlocks: 1})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	if err := eng.Start(); err == nil {
		t.Error("second Start succeeded")
	}
}

func TestBacklogCapacityRejects(t *testing.T) {
	eng, _ := New(Config{
		Provider:   provider.NewLocal(1),
		Run:        slowRunner(time.Second),
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
		QueueCapacity: 4,
	})
	eng.Start()
	defer eng.Stop()
	// One task occupies the worker; fill the backlog, then overflow.
	accepted := 0
	var lastErr error
	for i := 0; i < 20; i++ {
		if err := eng.Submit(newTask(fmt.Sprint(i))); err != nil {
			lastErr = err
			break
		}
		accepted++
	}
	if lastErr == nil {
		t.Fatal("backlog never filled")
	}
	// Capacity 4 backlog + dispatched tasks; acceptance is bounded well
	// below the 20 attempts.
	if accepted > 8 {
		t.Errorf("accepted %d submissions with capacity 4", accepted)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	eng, _ := New(Config{
		Provider:   provider.NewLocal(4),
		Run:        echoRunner,
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
		WorkersPerNode: 2,
	})
	eng.Start()
	defer eng.Stop()
	const submitters, each = 8, 25
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := eng.Submit(newTask(fmt.Sprintf("%d-%d", s, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	total := submitters * each
	got := 0
	timeout := time.After(10 * time.Second)
	for got < total {
		select {
		case <-eng.Results():
			got++
		case <-timeout:
			t.Fatalf("results = %d of %d", got, total)
		}
	}
}

func TestPoisonTaskDeadLetters(t *testing.T) {
	// A task that crashes its worker on every attempt must consume exactly
	// MaxAttempts tries and then surface as a dead-lettered failure.
	var invocations atomic.Int64
	crashRunner := func(ctx context.Context, task protocol.Task, w WorkerInfo) protocol.Result {
		invocations.Add(1)
		return protocol.Result{} // zero Result = worker died mid-task
	}
	eng, _ := New(Config{
		Provider:   provider.NewLocal(1),
		Run:        crashRunner,
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
		MaxAttempts: 3,
	})
	eng.Start()
	defer eng.Stop()
	task := newTask("poison")
	if err := eng.Submit(task); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-eng.Results():
		if r.State != protocol.StateFailed {
			t.Errorf("state = %s, want failed", r.State)
		}
		if !r.DeadLettered {
			t.Errorf("result not marked dead-lettered: %+v", r)
		}
		if r.TaskID != task.ID {
			t.Errorf("task ID = %s", r.TaskID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no result for poison task")
	}
	if n := invocations.Load(); n != 3 {
		t.Errorf("runner invoked %d times, want exactly MaxAttempts=3", n)
	}
	if v := eng.Metrics.Counter("deadlettered_tasks").Value(); v != 1 {
		t.Errorf("deadlettered_tasks = %d, want 1", v)
	}
	if v := eng.Metrics.Counter("worker_crashes").Value(); v != 3 {
		t.Errorf("worker_crashes = %d, want 3", v)
	}
}

func TestWorkerCrashRetriesThenSucceeds(t *testing.T) {
	// Crash the worker on the first two attempts; the third succeeds inside
	// the default attempt budget.
	var invocations atomic.Int64
	flaky := func(ctx context.Context, task protocol.Task, w WorkerInfo) protocol.Result {
		if invocations.Add(1) <= 2 {
			return protocol.Result{}
		}
		return protocol.Result{State: protocol.StateSuccess, Output: task.Payload}
	}
	eng, _ := New(Config{
		Provider:   provider.NewLocal(2),
		Run:        flaky,
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
		WorkersPerNode: 2,
	})
	eng.Start()
	defer eng.Stop()
	if err := eng.Submit(newTask("flaky")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-eng.Results():
		if r.State != protocol.StateSuccess {
			t.Errorf("result %+v, want success after retries", r)
		}
		if r.DeadLettered {
			t.Error("successful retry marked dead-lettered")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no result for flaky task")
	}
	if n := invocations.Load(); n != 3 {
		t.Errorf("runner invoked %d times, want 3", n)
	}
	if v := eng.Metrics.Counter("requeued").Value(); v != 2 {
		t.Errorf("requeued = %d, want 2", v)
	}
}
