package engine

import (
	"fmt"
	"testing"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/provider"
	"globuscompute/internal/scheduler"
)

func newTCPEngine(t *testing.T, prov provider.Provider, run TaskRunner, blocks int) *Engine {
	t.Helper()
	eng, err := New(Config{
		Provider: prov, Run: run,
		InitBlocks: blocks, MinBlocks: blocks, MaxBlocks: blocks,
		WorkersPerNode: 2,
		Transport:      "tcp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestTCPTransportRunsTasks(t *testing.T) {
	eng := newTCPEngine(t, provider.NewLocal(2), echoRunner, 1)
	defer eng.Stop()
	if eng.InterchangeAddr() == "" {
		t.Fatal("no interchange address in tcp mode")
	}
	const n = 30
	want := map[string]bool{}
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("tcp-task-%d", i)
		want[p] = true
		if err := eng.Submit(newTask(p)); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]bool{}
	timeout := time.After(10 * time.Second)
	for len(got) < n {
		select {
		case r := <-eng.Results():
			if r.State != protocol.StateSuccess {
				t.Fatalf("result %+v", r)
			}
			got[string(r.Output)] = true
			if r.WorkerID == "" {
				t.Error("worker ID missing on TCP path")
			}
		case <-timeout:
			t.Fatalf("received %d of %d", len(got), n)
		}
	}
	for p := range want {
		if !got[p] {
			t.Errorf("missing %s", p)
		}
	}
}

func TestTCPTransportMultipleManagers(t *testing.T) {
	sched := scheduler.SimpleCluster(4)
	defer sched.Close()
	prov, _ := provider.NewBatch(provider.BatchConfig{Scheduler: sched, NodesPerBlock: 2})
	eng := newTCPEngine(t, prov, slowRunner(10*time.Millisecond), 2)
	defer eng.Stop()
	// Two blocks x 2 nodes x 2 workers/node = 8 workers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := eng.Stats()
		if s.ConnectedMgrs == 2 && s.TotalWorkers == 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v", eng.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	const n = 40
	for i := 0; i < n; i++ {
		eng.Submit(newTask(fmt.Sprint(i)))
	}
	timeout := time.After(20 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-eng.Results():
		case <-timeout:
			t.Fatalf("results stalled at %d of %d", i, n)
		}
	}
}

func TestTCPManagerDeathRequeues(t *testing.T) {
	// Blocks die at walltime; the interchange requeues undrained tasks
	// onto the replacement manager and nothing is lost.
	sched := scheduler.SimpleCluster(2)
	defer sched.Close()
	prov, _ := provider.NewBatch(provider.BatchConfig{
		Scheduler: sched, NodesPerBlock: 1, Walltime: 150 * time.Millisecond,
	})
	eng, err := New(Config{
		Provider: prov, Run: slowRunner(15 * time.Millisecond),
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 2,
		WorkersPerNode:  1,
		ScalingInterval: 10 * time.Millisecond,
		Transport:       "tcp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	const n = 25
	for i := 0; i < n; i++ {
		eng.Submit(newTask(fmt.Sprint(i)))
	}
	got := 0
	timeout := time.After(30 * time.Second)
	for got < n {
		select {
		case <-eng.Results():
			got++
		case <-timeout:
			t.Fatalf("results = %d of %d after manager churn", got, n)
		}
	}
}

func TestTCPStopCleansUp(t *testing.T) {
	eng := newTCPEngine(t, provider.NewLocal(1), echoRunner, 1)
	eng.Submit(newTask("x"))
	<-eng.Results()
	eng.Stop()
	// Listener is closed: dialing fails.
	if _, err := New(Config{Provider: provider.NewLocal(1), Run: echoRunner, Transport: "warp"}); err == nil {
		t.Error("unknown transport accepted")
	}
}
