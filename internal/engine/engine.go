// Package engine implements the GlobusComputeEngine pilot-job runtime: an
// interchange that queues tasks and dispatches them to managers, one manager
// per provisioned block (pilot job), each hosting a pool of workers sized by
// the workers-per-node configuration. The engine scales blocks elastically
// through a Provider (min/max blocks, scale-out on backlog, scale-in on
// idle), mirroring Parsl's HighThroughputExecutor as wrapped by Globus
// Compute.
package engine

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"globuscompute/internal/metrics"
	"globuscompute/internal/protocol"
	"globuscompute/internal/provider"
	"globuscompute/internal/trace"
)

// Common errors.
var (
	ErrStopped    = errors.New("engine: stopped")
	ErrNotStarted = errors.New("engine: not started")
)

// WorkerInfo identifies the worker executing a task.
type WorkerInfo struct {
	ID      string
	Node    string
	BlockID string
}

// TaskRunner executes one task on a worker and produces its result. The
// context is cancelled when the hosting block is released (walltime or
// scale-in); runners should produce a result promptly in that case.
// Returning a zero Result (empty State) signals that the worker died
// mid-task without producing an outcome: the engine retries the task under
// its attempt budget (see Config.MaxAttempts) — the seam fault-injection
// harnesses use to simulate worker kills.
//
// Result identity is stamped centrally by the engine: TaskID, WorkerID,
// timing fields, and the trace context are set on every produced result in
// workerLoop, so runners only need to fill State, Output, and Error.
type TaskRunner func(ctx context.Context, task protocol.Task, w WorkerInfo) protocol.Result

// Config configures an engine.
type Config struct {
	Provider provider.Provider
	Run      TaskRunner
	// WorkersPerNode sizes each manager's worker pool (default 1).
	WorkersPerNode int
	// InitBlocks blocks are provisioned at Start (default MinBlocks).
	InitBlocks int
	// MinBlocks is the scale-in floor (default 0).
	MinBlocks int
	// MaxBlocks is the scale-out ceiling (default 1).
	MaxBlocks int
	// ScalingInterval is the strategy poll period (default 50ms).
	ScalingInterval time.Duration
	// IdleTimeout releases blocks idle this long when above MinBlocks
	// (default: never).
	IdleTimeout time.Duration
	// QueueCapacity bounds the interchange backlog (default 65536).
	QueueCapacity int
	// MaxAttempts bounds how many times one task may be (re)delivered to a
	// worker before the engine gives up and emits a dead-lettered failed
	// result (default 5; the poison-task escape hatch). Requeues caused by
	// worker crashes, dying managers, and dropped interchange connections
	// all consume attempts.
	MaxAttempts int
	// Transport selects how managers attach to the interchange:
	// "channel" (default, in-process) or "tcp" (framed TCP, the real
	// engine's multiplexed-connection topology).
	Transport string
	// Tracer, when set, records engine.queue and engine.execute spans for
	// traced tasks. Nil disables tracing.
	Tracer *trace.Tracer
}

func (c *Config) fill() error {
	if c.Provider == nil {
		return errors.New("engine: provider required")
	}
	if c.Run == nil {
		return errors.New("engine: task runner required")
	}
	if c.WorkersPerNode <= 0 {
		c.WorkersPerNode = 1
	}
	if c.MaxBlocks <= 0 {
		c.MaxBlocks = 1
	}
	if c.MinBlocks < 0 {
		c.MinBlocks = 0
	}
	if c.MinBlocks > c.MaxBlocks {
		return fmt.Errorf("engine: min blocks %d > max blocks %d", c.MinBlocks, c.MaxBlocks)
	}
	if c.InitBlocks == 0 {
		c.InitBlocks = c.MinBlocks
	}
	if c.InitBlocks > c.MaxBlocks {
		c.InitBlocks = c.MaxBlocks
	}
	if c.ScalingInterval <= 0 {
		c.ScalingInterval = 50 * time.Millisecond
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 65536
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	switch c.Transport {
	case "", "channel":
		c.Transport = "channel"
	case "tcp":
	default:
		return fmt.Errorf("engine: unknown transport %q", c.Transport)
	}
	return nil
}

// manager is the per-block worker pool head.
type manager struct {
	id       string
	blockID  string
	nodes    []string
	capacity int
	tasks    chan protocol.Task
	// guarded by engine.mu
	freeSlots  int
	removed    bool
	lastActive time.Time
	// inflight tracks tasks written to a TCP manager but not yet
	// answered, so a dying connection can requeue them (nil in channel
	// mode, where workers always deliver results in-process).
	inflight map[protocol.UUID]protocol.Task
	// workers done
	wg sync.WaitGroup
}

// Engine is the interchange.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	pending  []protocol.Task
	managers map[string]*manager
	blocks   map[string]string // block ID -> manager ID ("" until registered)
	started  bool
	stopped  bool
	nextMgr  int

	// qspans holds the open engine.queue span per traced pending task
	// (guarded by mu); ended at dispatch, or with status "dropped" at Stop.
	qspans map[protocol.UUID]*trace.ActiveSpan

	results chan protocol.Result
	wake    chan struct{}
	done    chan struct{}
	loops   sync.WaitGroup
	// ln is the TCP interchange listener (tcp transport only).
	ln net.Listener

	Metrics *metrics.Registry
}

// New validates cfg and returns an engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:      cfg,
		managers: make(map[string]*manager),
		blocks:   make(map[string]string),
		qspans:   make(map[protocol.UUID]*trace.ActiveSpan),
		results:  make(chan protocol.Result, cfg.QueueCapacity),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		Metrics:  metrics.NewRegistry(),
	}, nil
}

// Start provisions initial blocks and begins dispatching.
func (e *Engine) Start() error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return errors.New("engine: already started")
	}
	e.started = true
	e.mu.Unlock()
	if e.cfg.Transport == "tcp" {
		if err := e.startInterchange(); err != nil {
			return err
		}
	}
	for i := 0; i < e.cfg.InitBlocks; i++ {
		if err := e.addBlock(); err != nil {
			return err
		}
	}
	e.loops.Add(2)
	go e.dispatchLoop()
	go e.scalingLoop()
	return nil
}

// Submit enqueues a task for execution.
func (e *Engine) Submit(task protocol.Task) error {
	if errs := e.SubmitBatch([]protocol.Task{task}); errs != nil {
		return errs[0]
	}
	return nil
}

// SubmitBatch enqueues tasks under a single lock acquisition and one
// dispatcher wakeup — the engine half of the endpoint's batched intake. It
// returns nil when every task was accepted; otherwise a slice parallel to
// tasks where errs[i] reports task i's rejection (not started, stopped, or
// backlog full). Acceptance is per-task: tasks before a rejected one stay
// enqueued.
func (e *Engine) SubmitBatch(tasks []protocol.Task) []error {
	if len(tasks) == 0 {
		return nil
	}
	e.mu.Lock()
	if !e.started || e.stopped {
		err := ErrNotStarted
		if e.stopped {
			err = ErrStopped
		}
		e.mu.Unlock()
		errs := make([]error, len(tasks))
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	var errs []error
	accepted := 0
	for i := range tasks {
		if len(e.pending) >= e.cfg.QueueCapacity {
			if errs == nil {
				errs = make([]error, len(tasks))
			}
			errs[i] = fmt.Errorf("engine: backlog full (%d tasks)", len(e.pending))
			continue
		}
		e.startQueueSpanLocked(&tasks[i])
		e.pending = append(e.pending, tasks[i])
		accepted++
	}
	e.mu.Unlock()
	if accepted > 0 {
		e.Metrics.Counter("submitted").Add(int64(accepted))
		e.wakeUp()
	}
	return errs
}

// startQueueSpanLocked opens an engine.queue span for a traced task (caller
// holds e.mu). The task's context is NOT re-pointed: the queue span is a leaf
// measuring backlog wait, and execute chains off the dispatch-time context.
func (e *Engine) startQueueSpanLocked(task *protocol.Task) {
	if e.cfg.Tracer == nil || !task.Trace.Valid() {
		return
	}
	if sp := e.cfg.Tracer.StartSpan(task.Trace, "engine.queue"); sp != nil {
		e.qspans[task.ID] = sp
	}
}

// endQueueSpanLocked closes the task's engine.queue span (caller holds e.mu).
func (e *Engine) endQueueSpanLocked(id protocol.UUID, status string) {
	if sp, ok := e.qspans[id]; ok {
		delete(e.qspans, id)
		sp.EndStatus(status)
	}
}

// Results returns the completed-task stream. It is closed by Stop after all
// inflight work drains.
func (e *Engine) Results() <-chan protocol.Result { return e.results }

// Stats is a point-in-time engine snapshot.
type Stats struct {
	PendingTasks   int
	ConnectedMgrs  int
	TotalWorkers   int
	FreeWorkers    int
	LiveBlocks     int
	TasksSubmitted int64
	TasksCompleted int64
	BlocksLaunched int64
	BlocksReleased int64
}

// Stats reports current engine state.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Stats{
		PendingTasks:   len(e.pending),
		LiveBlocks:     len(e.blocks),
		TasksSubmitted: e.Metrics.Counter("submitted").Value(),
		TasksCompleted: e.Metrics.Counter("completed").Value(),
		BlocksLaunched: e.Metrics.Counter("blocks_launched").Value(),
		BlocksReleased: e.Metrics.Counter("blocks_released").Value(),
	}
	for _, m := range e.managers {
		if m.removed {
			continue
		}
		s.ConnectedMgrs++
		s.TotalWorkers += m.capacity
		s.FreeWorkers += m.freeSlots
	}
	return s
}

// Stop drains nothing further: it cancels blocks, waits for inflight tasks
// to produce results, and closes the results channel. Pending tasks that
// never started are dropped with failed results so callers are not left
// waiting.
func (e *Engine) Stop() {
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	pending := e.pending
	e.pending = nil
	for _, t := range pending {
		e.endQueueSpanLocked(t.ID, "dropped")
	}
	blockIDs := make([]string, 0, len(e.blocks))
	for id := range e.blocks {
		blockIDs = append(blockIDs, id)
	}
	e.mu.Unlock()

	close(e.done)
	for _, t := range pending {
		e.results <- protocol.Result{
			TaskID: t.ID, State: protocol.StateFailed,
			Error: "engine stopped before execution",
		}
	}
	for _, id := range blockIDs {
		_ = e.cfg.Provider.CancelBlock(id)
	}
	if e.ln != nil {
		e.ln.Close()
	}
	// Wait for managers to drain (their launch functions return on cancel).
	for {
		e.mu.Lock()
		live := len(e.managers)
		e.mu.Unlock()
		if live == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	e.loops.Wait()
	close(e.results)
}

func (e *Engine) wakeUp() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// addBlock provisions one block whose launch function runs a manager
// (in-process or dialing the TCP interchange, per the transport).
func (e *Engine) addBlock() error {
	launch := e.runManager
	if e.cfg.Transport == "tcp" {
		launch = e.runRemoteManager
	}
	blockID, err := e.cfg.Provider.SubmitBlock(launch)
	if err != nil {
		return err
	}
	e.mu.Lock()
	if _, exists := e.blocks[blockID]; !exists {
		e.blocks[blockID] = ""
	}
	e.mu.Unlock()
	e.Metrics.Counter("blocks_launched").Inc()
	return nil
}

// runManager is the pilot-job body: it registers a manager for the block,
// spawns workers, and serves until the block context ends.
func (e *Engine) runManager(ctx context.Context, blk provider.BlockInfo) error {
	capacity := len(blk.Nodes) * e.cfg.WorkersPerNode
	if capacity == 0 {
		capacity = e.cfg.WorkersPerNode
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return nil
	}
	e.nextMgr++
	m := &manager{
		id:         fmt.Sprintf("mgr-%d", e.nextMgr),
		blockID:    blk.ID,
		nodes:      blk.Nodes,
		capacity:   capacity,
		tasks:      make(chan protocol.Task, capacity),
		freeSlots:  capacity,
		lastActive: time.Now(),
	}
	e.managers[m.id] = m
	e.blocks[blk.ID] = m.id
	e.mu.Unlock()
	e.wakeUp()

	for i := 0; i < capacity; i++ {
		node := ""
		if len(blk.Nodes) > 0 {
			node = blk.Nodes[i%len(blk.Nodes)]
		}
		w := WorkerInfo{ID: fmt.Sprintf("%s-w%d", m.id, i), Node: node, BlockID: blk.ID}
		m.wg.Add(1)
		go e.workerLoop(ctx, m, w)
	}

	<-ctx.Done()
	// Stop dispatch to this manager, requeue undrained tasks, wait workers.
	// removed=true and close happen under the same lock acquisition that
	// the dispatcher sends under, so no send can follow the close.
	e.mu.Lock()
	m.removed = true
	close(m.tasks)
	e.mu.Unlock()
	requeued := 0
	for t := range m.tasks {
		e.requeue(t)
		requeued++
	}
	m.wg.Wait()
	e.mu.Lock()
	delete(e.managers, m.id)
	delete(e.blocks, blk.ID)
	e.mu.Unlock()
	e.Metrics.Counter("blocks_released").Inc()
	e.wakeUp()
	return nil
}

// requeue returns an undispatched or crashed task to the interchange,
// consuming one delivery attempt. A task that exhausts cfg.MaxAttempts is
// dead-lettered — a failed Result marked DeadLettered is emitted instead of
// requeueing — so a poison task cannot cycle forever. When the engine is
// stopping the task fails immediately.
func (e *Engine) requeue(t protocol.Task) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		e.results <- protocol.Result{
			TaskID: t.ID, State: protocol.StateFailed,
			Error: "engine stopped before execution",
		}
		return
	}
	t.Attempts++
	if t.Attempts >= e.cfg.MaxAttempts {
		e.mu.Unlock()
		e.deadLetter(t)
		return
	}
	now := time.Now()
	e.cfg.Tracer.Record(t.Trace, "engine.requeue", now, now, "attempt", strconv.Itoa(t.Attempts))
	e.startQueueSpanLocked(&t)
	e.pending = append([]protocol.Task{t}, e.pending...)
	e.mu.Unlock()
	e.Metrics.Counter("requeued").Inc()
	e.wakeUp()
}

// deadLetter emits the terminal failure for a task that exceeded its
// delivery-attempt budget.
func (e *Engine) deadLetter(t protocol.Task) {
	now := time.Now()
	e.cfg.Tracer.Record(t.Trace, "engine.deadletter", now, now, "attempts", strconv.Itoa(t.Attempts))
	e.results <- protocol.Result{
		TaskID: t.ID, State: protocol.StateFailed, DeadLettered: true,
		Error: fmt.Sprintf("engine: task exceeded %d delivery attempts", e.cfg.MaxAttempts),
		Trace: t.Trace,
	}
	e.Metrics.Counter("deadlettered_tasks").Inc()
	e.Metrics.Counter("completed").Inc()
}

// workerLoop is one worker: take a task, run it, report the result.
func (e *Engine) workerLoop(ctx context.Context, m *manager, w WorkerInfo) {
	defer m.wg.Done()
	for t := range m.tasks {
		started := time.Now()
		sp := e.cfg.Tracer.StartSpanAt(t.Trace, "engine.execute", started)
		sp.SetAttr("worker", w.ID)
		sp.SetAttr("block", w.BlockID)
		res := e.cfg.Run(ctx, t, w)
		if res.State == "" {
			// No result produced: the worker died mid-task (a chaos kill or
			// a crashed runner). Free the slot and retry the task under its
			// attempt budget rather than losing it.
			sp.EndStatus("killed")
			e.Metrics.Counter("worker_crashes").Inc()
			e.mu.Lock()
			m.freeSlots++
			m.lastActive = time.Now()
			e.mu.Unlock()
			e.requeue(t)
			e.wakeUp()
			continue
		}
		res.TaskID = t.ID
		res.WorkerID = w.ID
		if !t.Submitted.IsZero() {
			res.QueueDelay = started.Sub(t.Submitted)
		}
		if res.Started.IsZero() {
			res.Started = started
		}
		if res.Completed.IsZero() {
			res.Completed = time.Now()
		}
		res.ExecutionMS = float64(res.Completed.Sub(res.Started)) / float64(time.Millisecond)
		if res.State == protocol.StateFailed {
			sp.EndStatus("error")
		} else {
			sp.End()
		}
		if next := sp.Context(); next != nil {
			res.Trace = next
		} else if res.Trace == nil {
			res.Trace = t.Trace
		}
		e.results <- res
		e.Metrics.Counter("completed").Inc()
		e.mu.Lock()
		m.freeSlots++
		m.lastActive = time.Now()
		e.mu.Unlock()
		e.wakeUp()
	}
}

// dispatchLoop hands pending tasks to managers with free slots, round-robin
// by map iteration with a fairness nudge from lastActive updates.
func (e *Engine) dispatchLoop() {
	defer e.loops.Done()
	for {
		select {
		case <-e.done:
			return
		case <-e.wake:
		}
		for {
			e.mu.Lock()
			if e.stopped || len(e.pending) == 0 {
				e.mu.Unlock()
				break
			}
			var target *manager
			for _, m := range e.managers {
				if m.removed || m.freeSlots <= 0 {
					continue
				}
				if target == nil || m.freeSlots > target.freeSlots {
					target = m
				}
			}
			if target == nil {
				e.mu.Unlock()
				break
			}
			t := e.pending[0]
			e.pending = e.pending[1:]
			e.endQueueSpanLocked(t.ID, "")
			target.freeSlots--
			target.lastActive = time.Now()
			// The channel is buffered to capacity and freeSlots accounting
			// keeps this send nonblocking, so it is safe under the lock —
			// and holding the lock orders it before the manager's
			// removed=true + close sequence.
			target.tasks <- t
			e.mu.Unlock()
			e.Metrics.Counter("dispatched").Inc()
		}
	}
}

// scalingLoop implements the elasticity strategy.
func (e *Engine) scalingLoop() {
	defer e.loops.Done()
	ticker := time.NewTicker(e.cfg.ScalingInterval)
	defer ticker.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-ticker.C:
		}
		e.mu.Lock()
		// Forget blocks that terminated without ever registering a manager
		// (cancelled while queued in the batch system).
		var stale []string
		for blockID, mgrID := range e.blocks {
			if mgrID != "" {
				continue
			}
			if st, err := e.cfg.Provider.BlockStatus(blockID); err == nil && st.Terminal() {
				stale = append(stale, blockID)
			}
		}
		for _, id := range stale {
			delete(e.blocks, id)
		}
		backlog := len(e.pending)
		live := len(e.blocks)
		perBlock := e.cfg.Provider.NodesPerBlock() * e.cfg.WorkersPerNode
		if perBlock <= 0 {
			perBlock = 1
		}
		// Scale out: enough additional blocks to absorb the backlog,
		// bounded by the ceiling.
		toAdd := 0
		if backlog > 0 && live < e.cfg.MaxBlocks {
			toAdd = min((backlog+perBlock-1)/perBlock, e.cfg.MaxBlocks-live)
		}
		// Scale in: cancel idle managers above the floor.
		var toCancel []string
		if e.cfg.IdleTimeout > 0 && live > e.cfg.MinBlocks {
			cutoff := time.Now().Add(-e.cfg.IdleTimeout)
			excess := live - e.cfg.MinBlocks
			for _, m := range e.managers {
				if excess == 0 {
					break
				}
				if !m.removed && m.freeSlots == m.capacity && m.lastActive.Before(cutoff) {
					toCancel = append(toCancel, m.blockID)
					excess--
				}
			}
		}
		e.mu.Unlock()
		for i := 0; i < toAdd; i++ {
			if err := e.addBlock(); err != nil {
				break
			}
		}
		for _, blockID := range toCancel {
			_ = e.cfg.Provider.CancelBlock(blockID)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
