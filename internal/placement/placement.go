// Package placement picks which endpoint a task should run on. It is the
// perf half of the ROADMAP's "backpressure-aware routing" item: PRs 4-5 made
// agents report load in heartbeats (queued intake, free/total workers,
// egress backlog) and PR 7 sheds on that load, but until now nothing routed
// on it — clients named an endpoint and the MEP picked user endpoints by a
// static config hash.
//
// The package offers pluggable policies behind one Selector:
//
//   - random: uniform over the candidates; the baseline the paper's fleets
//     implicitly run today (clients pick an endpoint by hand).
//   - round-robin: rotate through the candidates in order.
//   - least-backlog: full scan for the lowest load score. Optimal with
//     perfectly fresh information, but O(n) per pick and prone to herding:
//     every concurrent pick agrees on the same "least loaded" endpoint.
//   - p2c (power of two choices): sample two candidates, take the lower
//     score. O(1) per pick, and the classic balls-into-bins result is that
//     two random choices already collapse the maximum queue length from
//     O(log n / log log n) to O(log log n) — near least-backlog quality
//     without the scan or the herd.
//
// Load scores are built from heartbeat reports, which are stale by
// construction (an endpoint heartbeats every interval, and a 10k fleet
// decimates even that). Two mechanisms keep stale data from misrouting:
//
//   - Staleness decay: a report's influence fades linearly with age and a
//     report older than StaleAfter (default 3 heartbeat intervals) is
//     treated as unknown — the candidate is scored at the fleet-typical
//     prior plus a penalty instead of its last (possibly dead-idle) report.
//   - Hysteresis: every pick charges the winner a locally-decaying counter
//     (half-life of one heartbeat interval), so a briefly-quiet endpoint
//     absorbs load in proportion to its capacity instead of being stampeded
//     by every pick between two heartbeats.
package placement

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"globuscompute/internal/metrics"
	"globuscompute/internal/protocol"
)

// Policy names a placement policy.
type Policy string

// Supported policies.
const (
	PolicyRandom       Policy = "random"
	PolicyRoundRobin   Policy = "round-robin"
	PolicyLeastBacklog Policy = "least-backlog"
	PolicyP2C          Policy = "p2c"
)

// ErrNoCandidates is returned by Pick when the candidate set is empty.
var ErrNoCandidates = errors.New("placement: no candidates")

// Candidate is one endpoint eligible for a pick, assembled by the caller
// from its statestore record and last heartbeat load report.
type Candidate struct {
	ID protocol.UUID
	// Online is the service's liveness view. Offline candidates are only
	// considered when no candidate is online (tasks to offline endpoints
	// buffer in the broker, so an all-offline group still queues work).
	Online bool
	// QueuedIntake is the agent-reported count of tasks received but not
	// yet finished (EndpointLoad.PendingTasks).
	QueuedIntake int
	// EgressBacklog is the agent-reported count of finished results not yet
	// published; -1 when the agent does not report it.
	EgressBacklog int
	// FreeWorkers / TotalWorkers size the endpoint's capacity.
	FreeWorkers  int
	TotalWorkers int
	// ReportedAt stamps the load report; the zero time means the endpoint
	// has never reported load.
	ReportedAt time.Time
}

// Config configures a Selector.
type Config struct {
	// Policy defaults to PolicyP2C.
	Policy Policy
	// Seed fixes the random source; 0 derives a seed from the policy name
	// so selectors are deterministic by default (tests and benchmarks pin
	// their own).
	Seed int64
	// HeartbeatInterval is the fleet's report cadence; it sizes both the
	// hysteresis half-life and the default staleness horizon. Defaults to
	// 1s.
	HeartbeatInterval time.Duration
	// StaleAfter is the age beyond which a load report is treated as
	// unknown. Defaults to 3*HeartbeatInterval, matching the liveness
	// heuristic used by the backlog-shed path.
	StaleAfter time.Duration
	// Metrics, when set, receives the route_* series (picks by policy,
	// per-pick candidate staleness, stale and offline picks).
	Metrics *metrics.Registry
}

// pickDecay is a per-endpoint exponentially-decaying pick counter — the
// hysteresis term charged against recent winners.
type pickDecay struct {
	v  float64
	at time.Time
}

// Selector applies one policy over candidate sets. Safe for concurrent use;
// a Selector is cheap enough to hold one per routing group so round-robin
// cursors and hysteresis state never mix across groups.
type Selector struct {
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	rr    uint64
	picks map[protocol.UUID]*pickDecay
	// prior is an EWMA of fresh candidates' base scores: the score assigned
	// to candidates whose reports have aged out, so "unknown" ranks at
	// fleet-typical load rather than at zero (which would stampede every
	// dead endpoint) or infinity (which would strand rebooting ones).
	prior float64

	picksTotal   *metrics.Counter
	picksPolicy  *metrics.Counter
	reroutes     *metrics.Counter
	stalePicks   *metrics.Counter
	offlinePicks *metrics.Counter
	pickAge      *metrics.Histogram
}

// New builds a Selector, validating the policy.
func New(cfg Config) (*Selector, error) {
	if cfg.Policy == "" {
		cfg.Policy = PolicyP2C
	}
	switch cfg.Policy {
	case PolicyRandom, PolicyRoundRobin, PolicyLeastBacklog, PolicyP2C:
	default:
		return nil, fmt.Errorf("placement: unknown policy %q", cfg.Policy)
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.HeartbeatInterval
	}
	seed := cfg.Seed
	if seed == 0 {
		for _, c := range cfg.Policy {
			seed = seed*31 + int64(c)
		}
	}
	s := &Selector{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		picks: make(map[protocol.UUID]*pickDecay),
	}
	if cfg.Metrics != nil {
		s.picksTotal = cfg.Metrics.Counter("route_picks")
		s.picksPolicy = cfg.Metrics.Counter("route_picks_" + string(cfg.Policy))
		s.reroutes = cfg.Metrics.Counter("route_reroutes")
		s.stalePicks = cfg.Metrics.Counter("route_stale_picks")
		s.offlinePicks = cfg.Metrics.Counter("route_offline_picks")
		s.pickAge = cfg.Metrics.Histogram("route_pick_staleness")
	}
	return s, nil
}

// Policy returns the selector's policy.
func (s *Selector) Policy() Policy { return s.cfg.Policy }

// StaleAfter returns the staleness horizon in effect.
func (s *Selector) StaleAfter() time.Duration { return s.cfg.StaleAfter }

// NoteReroute counts a pick that had to be retried because the chosen
// endpoint rejected the task (backlog shed, queue full).
func (s *Selector) NoteReroute() {
	if s.reroutes != nil {
		s.reroutes.Inc()
	}
}

// Pick selects one candidate. Offline candidates are ignored unless every
// candidate is offline (the task then buffers at whichever member the policy
// names, preserving the buffer-while-offline semantics of direct submits).
//
// Pick never copies the candidate slice: random and p2c rejection-sample
// online members in place (O(1) on a healthy fleet, with an O(n) reservoir
// fallback when sampling keeps landing on offline members), round-robin
// advances its cursor past offline members, and least-backlog scans without
// building a pool. A 10k-member group costs the same per pick as a 10-member
// one — copying 10k candidates per task was the submit path's scaling wall.
func (s *Selector) Pick(cands []Candidate, now time.Time) (Candidate, error) {
	if len(cands) == 0 {
		return Candidate{}, ErrNoCandidates
	}
	s.mu.Lock()
	var chosen Candidate
	offline := false
	switch s.cfg.Policy {
	case PolicyRandom:
		i, ok := s.sampleOnlineLocked(cands)
		chosen, offline = cands[i], !ok
	case PolicyRoundRobin:
		found := false
		for range cands {
			c := cands[s.rr%uint64(len(cands))]
			s.rr++
			if c.Online {
				chosen, found = c, true
				break
			}
		}
		if !found { // all offline: plain rotation
			offline = true
			chosen = cands[s.rr%uint64(len(cands))]
			s.rr++
		}
	case PolicyLeastBacklog:
		best, bestScore := -1, math.Inf(1)
		for i := range cands {
			if !cands[i].Online {
				continue
			}
			if sc := s.scoreLocked(cands[i], now); sc < bestScore {
				best, bestScore = i, sc
			}
		}
		if best < 0 {
			offline = true
			for i := range cands {
				if sc := s.scoreLocked(cands[i], now); sc < bestScore {
					best, bestScore = i, sc
				}
			}
		}
		chosen = cands[best]
	case PolicyP2C:
		i, ok := s.sampleOnlineLocked(cands)
		offline = !ok
		chosen = cands[i]
		if ok && len(cands) > 1 {
			for a := 0; a < sampleAttempts; a++ {
				if j := s.rng.Intn(len(cands)); j != i && cands[j].Online {
					if s.scoreLocked(cands[j], now) < s.scoreLocked(cands[i], now) {
						chosen = cands[j]
					}
					break
				}
			}
		}
	}
	s.chargeLocked(chosen.ID, now)
	s.mu.Unlock()

	s.observe(chosen, now, offline)
	return chosen, nil
}

// sampleAttempts bounds rejection sampling before falling back to a full
// scan; 16 misses in a row means well under ~1/16 of the fleet is online.
const sampleAttempts = 16

// sampleOnlineLocked returns a uniformly random online candidate's index, or
// (a uniformly random index, false) when no candidate is online. The happy
// path is a single rng draw; the fallback reservoir-samples so the choice
// stays uniform over whatever online members exist.
func (s *Selector) sampleOnlineLocked(cands []Candidate) (int, bool) {
	for a := 0; a < sampleAttempts; a++ {
		if i := s.rng.Intn(len(cands)); cands[i].Online {
			return i, true
		}
	}
	seen, pick := 0, -1
	for i := range cands {
		if cands[i].Online {
			seen++
			if s.rng.Intn(seen) == 0 {
				pick = i
			}
		}
	}
	if pick >= 0 {
		return pick, true
	}
	return s.rng.Intn(len(cands)), false
}

// score exposes the load score for tests and diagnostics.
func (s *Selector) score(c Candidate, now time.Time) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scoreLocked(c, now)
}

// scoreLocked computes the candidate's load score; lower is better. The
// base term is (queued intake + egress backlog - free workers) scaled by
// total workers, so a 100-worker cluster absorbs 100 queued tasks as easily
// as a laptop absorbs one. On top of that:
//
//   - the hysteresis term adds the candidate's decayed recent-pick count
//     (also scaled by capacity), standing in for load the endpoint has been
//     handed since its report;
//   - a staleness penalty ramps from 0 (just reported) to 1 (one full
//     queued-task-per-worker equivalent) as the report approaches
//     StaleAfter;
//   - at or past StaleAfter the report is discarded entirely: the score is
//     the fleet-typical prior plus the full penalty.
func (s *Selector) scoreLocked(c Candidate, now time.Time) float64 {
	total := c.TotalWorkers
	if total < 1 {
		total = 1
	}
	hyst := s.decayedLocked(c.ID, now) / float64(total)

	age := now.Sub(c.ReportedAt)
	if c.ReportedAt.IsZero() || age >= s.cfg.StaleAfter {
		return s.prior + hyst + 1
	}
	backlog := c.EgressBacklog
	if backlog < 0 {
		backlog = 0
	}
	base := float64(c.QueuedIntake+backlog-c.FreeWorkers) / float64(total)
	// Fold fresh observations into the unknown-candidate prior.
	const alpha = 0.05
	s.prior = (1-alpha)*s.prior + alpha*base
	staleness := float64(age) / float64(s.cfg.StaleAfter)
	if staleness < 0 {
		staleness = 0
	}
	return base + hyst + staleness
}

// hysteresisHalfLife is the decay half-life of the per-endpoint pick
// counter, expressed in heartbeat intervals: by the time a fresh report
// arrives, the charge for picks it already reflects has halved.
const hysteresisHalfLife = 1.0

func (s *Selector) decayedLocked(id protocol.UUID, now time.Time) float64 {
	p, ok := s.picks[id]
	if !ok {
		return 0
	}
	half := hysteresisHalfLife * float64(s.cfg.HeartbeatInterval)
	dt := float64(now.Sub(p.at))
	if dt > 0 {
		p.v *= math.Exp2(-dt / half)
		p.at = now
	}
	if p.v < 1e-3 {
		delete(s.picks, id)
		return 0
	}
	return p.v
}

func (s *Selector) chargeLocked(id protocol.UUID, now time.Time) {
	p, ok := s.picks[id]
	if !ok {
		p = &pickDecay{at: now}
		s.picks[id] = p
	} else {
		s.decayedLocked(id, now)
	}
	p.v++
	p.at = now
}

func (s *Selector) observe(chosen Candidate, now time.Time, offline bool) {
	if s.picksTotal == nil {
		return
	}
	s.picksTotal.Inc()
	s.picksPolicy.Inc()
	if offline {
		s.offlinePicks.Inc()
	}
	if chosen.ReportedAt.IsZero() || now.Sub(chosen.ReportedAt) >= s.cfg.StaleAfter {
		s.stalePicks.Inc()
	} else {
		s.pickAge.Observe(now.Sub(chosen.ReportedAt))
	}
}
