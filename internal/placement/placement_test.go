package placement

import (
	"testing"
	"time"

	"globuscompute/internal/metrics"
	"globuscompute/internal/protocol"
)

func mkCand(id string, queued, backlog, free, total int, reportedAgo time.Duration, now time.Time) Candidate {
	c := Candidate{
		ID: protocol.UUID(id), Online: true,
		QueuedIntake: queued, EgressBacklog: backlog,
		FreeWorkers: free, TotalWorkers: total,
	}
	if reportedAgo >= 0 {
		c.ReportedAt = now.Add(-reportedAgo)
	}
	return c
}

func TestPickEmptyAndPolicies(t *testing.T) {
	now := time.Now()
	for _, pol := range []Policy{PolicyRandom, PolicyRoundRobin, PolicyLeastBacklog, PolicyP2C} {
		s, err := New(Config{Policy: pol, Seed: 1})
		if err != nil {
			t.Fatalf("New(%s): %v", pol, err)
		}
		if _, err := s.Pick(nil, now); err != ErrNoCandidates {
			t.Fatalf("%s: empty pick err = %v, want ErrNoCandidates", pol, err)
		}
		c, err := s.Pick([]Candidate{mkCand("a", 0, 0, 1, 1, 0, now)}, now)
		if err != nil || c.ID != "a" {
			t.Fatalf("%s: single pick = %v, %v", pol, c, err)
		}
	}
	if _, err := New(Config{Policy: "bogus"}); err == nil {
		t.Fatal("New accepted unknown policy")
	}
}

func TestRoundRobinRotates(t *testing.T) {
	s, _ := New(Config{Policy: PolicyRoundRobin, Seed: 1})
	now := time.Now()
	cands := []Candidate{
		mkCand("a", 0, 0, 1, 1, 0, now),
		mkCand("b", 0, 0, 1, 1, 0, now),
		mkCand("c", 0, 0, 1, 1, 0, now),
	}
	var got []protocol.UUID
	for i := 0; i < 6; i++ {
		c, _ := s.Pick(cands, now)
		got = append(got, c.ID)
	}
	want := []protocol.UUID{"a", "b", "c", "a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation %v, want %v", got, want)
		}
	}
}

func TestLeastBacklogPrefersIdle(t *testing.T) {
	s, _ := New(Config{Policy: PolicyLeastBacklog, Seed: 1})
	now := time.Now()
	cands := []Candidate{
		mkCand("busy", 50, 10, 0, 4, 0, now),
		mkCand("idle", 0, 0, 4, 4, 0, now),
		mkCand("mid", 5, 0, 1, 4, 0, now),
	}
	c, err := s.Pick(cands, now)
	if err != nil || c.ID != "idle" {
		t.Fatalf("pick = %v, %v; want idle", c.ID, err)
	}
}

// TestP2CAvoidsLoaded drives many picks at a fleet with one overloaded
// endpoint and checks p2c sends it almost nothing while random keeps feeding
// it its uniform share.
func TestP2CAvoidsLoaded(t *testing.T) {
	now := time.Now()
	cands := []Candidate{
		mkCand("hot", 100, 50, 0, 1, 0, now),
		mkCand("b", 0, 0, 1, 1, 0, now),
		mkCand("c", 0, 0, 1, 1, 0, now),
		mkCand("d", 0, 0, 1, 1, 0, now),
	}
	// 200 picks: few enough that the cold endpoints' hysteresis charges stay
	// far below the hot endpoint's 150-task queue (with more picks the
	// charges legitimately equalize load back onto it).
	count := func(pol Policy) int {
		s, _ := New(Config{Policy: pol, Seed: 42})
		hot := 0
		for i := 0; i < 200; i++ {
			c, _ := s.Pick(cands, now)
			if c.ID == "hot" {
				hot++
			}
		}
		return hot
	}
	randomHot := count(PolicyRandom)
	p2cHot := count(PolicyP2C)
	if randomHot < 30 { // ~50 expected
		t.Fatalf("random sent only %d/200 to hot endpoint; baseline broken", randomHot)
	}
	if p2cHot > randomHot/4 {
		t.Fatalf("p2c sent %d/200 to hot endpoint (random: %d); expected strong avoidance", p2cHot, randomHot)
	}
}

// TestStaleReportTreatedAsUnknown: an idle-looking report older than
// StaleAfter must not be trusted — the candidate scores at the
// fleet-typical prior plus a penalty, so an equally-idle endpoint with a
// fresh report always wins.
func TestStaleReportTreatedAsUnknown(t *testing.T) {
	hb := time.Second
	s, _ := New(Config{Policy: PolicyLeastBacklog, Seed: 7, HeartbeatInterval: hb})
	now := time.Now()
	fresh := mkCand("live", 0, 0, 8, 8, 100*time.Millisecond, now)
	stale := mkCand("stale-idle", 0, 0, 8, 8, 4*hb, now) // same idle report, but ancient
	never := mkCand("never", 0, 0, 8, 8, -1, now)        // never reported

	if ss, fs := s.score(stale, now), s.score(fresh, now); ss <= fs {
		t.Fatalf("stale idle score %.3f <= fresh idle score %.3f; staleness ignored", ss, fs)
	}
	if ns, ss := s.score(never, now), s.score(stale, now); ns != ss {
		t.Fatalf("never-reported score %.3f != stale score %.3f; both should rank as unknown", ns, ss)
	}
	// 12 picks: few enough that hysteresis charges on the fresh candidate
	// stay below the stale candidates' unknown penalty.
	for i := 0; i < 12; i++ {
		c, _ := s.Pick([]Candidate{fresh, stale, never}, now)
		if c.ID != "live" {
			t.Fatalf("pick %d chose %s over the only fresh report", i, c.ID)
		}
	}
}

// TestHysteresisSpreadsBurst: between heartbeats, reports don't change, so
// without hysteresis every p2c comparison against a just-idle endpoint would
// choose it. The decayed pick counter must spread a burst across equally-idle
// candidates instead of stampeding the first.
func TestHysteresisSpreadsBurst(t *testing.T) {
	s, _ := New(Config{Policy: PolicyLeastBacklog, Seed: 3, HeartbeatInterval: time.Second})
	now := time.Now()
	cands := []Candidate{
		mkCand("a", 0, 0, 4, 4, 0, now),
		mkCand("b", 0, 0, 4, 4, 0, now),
		mkCand("c", 0, 0, 4, 4, 0, now),
	}
	got := map[protocol.UUID]int{}
	for i := 0; i < 90; i++ { // burst within one heartbeat: reports never refresh
		c, _ := s.Pick(cands, now)
		got[c.ID]++
	}
	for id, n := range got {
		if n < 20 || n > 40 {
			t.Fatalf("burst distribution %v: endpoint %s got %d/90, want ~30 each", got, id, n)
		}
	}
}

func TestHysteresisDecays(t *testing.T) {
	hb := time.Second
	s, _ := New(Config{Policy: PolicyP2C, Seed: 3, HeartbeatInterval: hb})
	now := time.Now()
	for i := 0; i < 16; i++ {
		s.chargeLocked("a", now)
	}
	before := s.decayedLocked("a", now)
	after := s.decayedLocked("a", now.Add(4*hb))
	if after > before/8 {
		t.Fatalf("pick charge decayed %0.2f -> %0.2f over 4 half-lives; want >= 8x drop", before, after)
	}
}

func TestOfflineFallback(t *testing.T) {
	reg := metrics.NewRegistry()
	s, _ := New(Config{Policy: PolicyP2C, Seed: 1, Metrics: reg})
	now := time.Now()
	off := mkCand("off", 0, 0, 1, 1, 0, now)
	off.Online = false
	on := mkCand("on", 99, 99, 0, 1, 0, now)

	// Online candidate wins regardless of load when the alternative is offline.
	for i := 0; i < 20; i++ {
		c, _ := s.Pick([]Candidate{off, on}, now)
		if c.ID != "on" {
			t.Fatalf("picked offline candidate %s while an online one existed", c.ID)
		}
	}
	// All-offline group still picks someone (task buffers in the broker).
	c, err := s.Pick([]Candidate{off}, now)
	if err != nil || c.ID != "off" {
		t.Fatalf("all-offline pick = %v, %v; want off", c, err)
	}
	if v := reg.Counter("route_offline_picks").Value(); v != 1 {
		t.Fatalf("route_offline_picks = %d, want 1", v)
	}
	if v := reg.Counter("route_picks").Value(); v != 21 {
		t.Fatalf("route_picks = %d, want 21", v)
	}
}

func TestMetricsStalePick(t *testing.T) {
	reg := metrics.NewRegistry()
	s, _ := New(Config{Policy: PolicyRandom, Seed: 1, HeartbeatInterval: time.Second, Metrics: reg})
	now := time.Now()
	stale := mkCand("s", 0, 0, 1, 1, time.Minute, now)
	if _, err := s.Pick([]Candidate{stale}, now); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("route_stale_picks").Value(); v != 1 {
		t.Fatalf("route_stale_picks = %d, want 1", v)
	}
	s.NoteReroute()
	if v := reg.Counter("route_reroutes").Value(); v != 1 {
		t.Fatalf("route_reroutes = %d, want 1", v)
	}
}
