package broker

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/trace"
)

// Client is a TCP connection to a broker Server. It multiplexes
// request/reply exchanges and consumer delivery streams over one socket,
// the way the Globus Compute agent holds a single AMQPS connection.
type Client struct {
	conn net.Conn
	w    *protocol.FrameWriter
	ids  requestID

	mu       sync.Mutex
	pending  map[string]chan error
	streams  map[string]*RemoteConsumer
	closed   bool
	closeErr error
}

// newClient wraps an established connection (plain or TLS).
func newClient(conn net.Conn) *Client {
	return &Client{
		conn:    conn,
		w:       protocol.NewFrameWriter(conn),
		pending: make(map[string]chan error),
		streams: make(map[string]*RemoteConsumer),
	}
}

// Dial connects to a broker server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("broker: dial %s: %w", addr, err)
	}
	c := newClient(conn)
	go c.readLoop()
	return c, nil
}

// Close disconnects. Server-side, unacked deliveries are requeued.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

func (c *Client) readLoop() {
	r := protocol.NewFrameReader(c.conn)
	var err error
	for {
		var env protocol.Envelope
		env, err = r.Read()
		if err != nil {
			break
		}
		switch env.Type {
		case protocol.EnvOK:
			c.complete(env.ID, nil)
		case protocol.EnvError:
			var body errorBody
			msg := "unknown broker error"
			if derr := env.Decode(&body); derr == nil {
				msg = body.Message
			}
			c.complete(env.ID, errors.New(msg))
		case protocol.EnvDelivery:
			var body deliveryBody
			if derr := env.Decode(&body); derr != nil {
				continue
			}
			// The send happens under the lock so Cancel's close of the
			// channel cannot race it; the buffer (prefetch+1) exceeds the
			// server's delivery window, so the send never blocks.
			c.mu.Lock()
			if rc := c.streams[body.Queue]; rc != nil {
				rc.ch <- Message{Tag: body.Tag, Body: body.Body, Redelivered: body.Redelivered, Trace: env.Trace}
			}
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	c.closed = true
	c.closeErr = err
	for id, ch := range c.pending {
		ch <- fmt.Errorf("broker: connection lost: %w", err)
		delete(c.pending, id)
	}
	for q, rc := range c.streams {
		close(rc.ch)
		delete(c.streams, q)
	}
	c.mu.Unlock()
}

func (c *Client) complete(id string, err error) {
	c.mu.Lock()
	ch, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if ok {
		ch <- err
	}
}

// call sends a request and waits for its ok/error reply.
func (c *Client) call(typ string, body any) error {
	return c.callTraced(typ, body, nil)
}

// callTraced is call with a trace context attached to the request envelope.
func (c *Client) callTraced(typ string, body any, tc *trace.Context) error {
	id := c.ids.next()
	ch := make(chan error, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.pending[id] = ch
	c.mu.Unlock()

	env, err := protocol.NewEnvelope(typ, id, body)
	if err != nil {
		c.complete(id, nil)
		return err
	}
	env.Trace = tc
	if err := c.w.Write(env); err != nil {
		c.complete(id, nil)
		return fmt.Errorf("broker: send %s: %w", typ, err)
	}
	select {
	case err := <-ch:
		return err
	case <-time.After(30 * time.Second):
		return fmt.Errorf("broker: %s timed out", typ)
	}
}

// Declare creates a queue on the remote broker.
func (c *Client) Declare(queue string) error {
	return c.call(protocol.EnvDeclare, declareBody{Queue: queue})
}

// Publish appends body to the remote queue.
func (c *Client) Publish(queue string, body []byte) error {
	return c.call(protocol.EnvPublish, publishBody{Queue: queue, Body: body})
}

// PublishTraced appends body to the remote queue with a trace context on
// the publish envelope; the server propagates it to the delivery.
func (c *Client) PublishTraced(queue string, body []byte, tc *trace.Context) error {
	return c.callTraced(protocol.EnvPublish, publishBody{Queue: queue, Body: body}, tc)
}

// Ping round-trips a heartbeat.
func (c *Client) Ping() error {
	return c.call(protocol.EnvHeartbeat, nil)
}

// DeleteQueue removes a queue on the remote broker, dropping its messages
// and closing its consumers.
func (c *Client) DeleteQueue(queue string) error {
	return c.call(protocol.EnvShutdown, declareBody{Queue: queue})
}

// RemoteConsumer mirrors Consumer for a TCP client: a delivery channel plus
// Ack/Nack that round-trip to the server.
type RemoteConsumer struct {
	c     *Client
	queue string
	ch    chan Message
}

// Consume begins consuming the remote queue. Only one consumer per queue per
// client connection is permitted (the server enforces this).
func (c *Client) Consume(queue string, prefetch int) (*RemoteConsumer, error) {
	if prefetch <= 0 {
		prefetch = 1
	}
	rc := &RemoteConsumer{c: c, queue: queue, ch: make(chan Message, prefetch+1)}
	c.mu.Lock()
	if _, dup := c.streams[queue]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("broker: already consuming %q", queue)
	}
	c.streams[queue] = rc
	c.mu.Unlock()
	if err := c.call(protocol.EnvConsume, consumeBody{Queue: queue, Prefetch: prefetch}); err != nil {
		c.mu.Lock()
		delete(c.streams, queue)
		c.mu.Unlock()
		return nil, err
	}
	return rc, nil
}

// Messages returns the delivery channel; it closes when the connection
// drops.
func (rc *RemoteConsumer) Messages() <-chan Message { return rc.ch }

// Ack acknowledges a delivery by tag.
func (rc *RemoteConsumer) Ack(tag uint64) error {
	return rc.c.call(protocol.EnvAck, ackBody{Queue: rc.queue, Tag: tag})
}

// Nack rejects a delivery; the server requeues it.
func (rc *RemoteConsumer) Nack(tag uint64) error {
	return rc.c.call(protocol.EnvNack, ackBody{Queue: rc.queue, Tag: tag})
}

// Reject dead-letters a delivery to "<queue>.dlq" on the server.
func (rc *RemoteConsumer) Reject(tag uint64) error {
	return rc.c.call(protocol.EnvNack, ackBody{Queue: rc.queue, Tag: tag, DeadLetter: true})
}

// Cancel stops consuming: the server detaches the consumer (requeueing
// anything unacknowledged) and the local delivery channel closes.
func (rc *RemoteConsumer) Cancel() error {
	err := rc.c.call(protocol.EnvDrain, declareBody{Queue: rc.queue})
	rc.c.mu.Lock()
	if _, ok := rc.c.streams[rc.queue]; ok {
		delete(rc.c.streams, rc.queue)
		close(rc.ch)
	}
	rc.c.mu.Unlock()
	return err
}
