package broker

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/trace"
)

// BatchConfig tunes client-side wire batching (see docs/PERFORMANCE.md).
// Batching is transparent to callers: Publish/Ack keep their signatures and
// semantics; concurrent calls are coalesced into publish_batch / ack_batch
// frames by a group-commit flusher.
type BatchConfig struct {
	// MaxBatch bounds messages per batch frame (default 64).
	MaxBatch int
	// FlushWindow, when > 0, delays each flush by this much so a burst can
	// accumulate. Zero (the default) is pure group commit: the first message
	// flushes immediately and whatever arrives while its reply is in flight
	// forms the next batch — no added latency at low load, large batches at
	// saturation.
	FlushWindow time.Duration
}

func (bc BatchConfig) withDefaults() BatchConfig {
	if bc.MaxBatch <= 0 {
		bc.MaxBatch = 64
	}
	return bc
}

// pendingPub is one Publish waiting inside the flusher queue.
type pendingPub struct {
	queue string
	body  []byte
	tc    *trace.Context
	done  chan error
}

// pendingAck is one Ack waiting inside the flusher queue.
type pendingAck struct {
	queue string
	tag   uint64
	done  chan error
}

// Client is a TCP connection to a broker Server. It multiplexes
// request/reply exchanges and consumer delivery streams over one socket,
// the way the Globus Compute agent holds a single AMQPS connection.
type Client struct {
	conn net.Conn
	w    *protocol.FrameWriter
	ids  requestID

	mu       sync.Mutex
	pending  map[string]chan error
	streams  map[string]*RemoteConsumer
	closed   bool
	closeErr error

	// wantBin (EnableBinary) advertises the binary codec on every declare/
	// consume; binOK flips when the server confirms, after which the writer
	// emits binary frames. Readers are always bilingual.
	wantBin bool
	binOK   bool

	// Wire batching (EnableBatching). pubQ/ackQ are guarded by mu; flushCh
	// wakes the flusher; done stops it.
	batch   *BatchConfig
	pubQ    []pendingPub
	ackQ    []pendingAck
	flushCh chan struct{}
	done    chan struct{}
}

// newClient wraps an established connection (plain or TLS).
func newClient(conn net.Conn) *Client {
	return &Client{
		conn:    conn,
		w:       protocol.NewFrameWriter(conn),
		pending: make(map[string]chan error),
		streams: make(map[string]*RemoteConsumer),
	}
}

// Dial connects to a broker server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("broker: dial %s: %w", addr, err)
	}
	c := newClient(conn)
	go c.readLoop()
	return c, nil
}

// DialBatched is Dial with wire batching enabled.
func DialBatched(addr string, cfg BatchConfig) (*Client, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	c.EnableBatching(cfg)
	return c, nil
}

// EnableBatching turns on wire batching for publishes, acks, and deliveries
// on this client. Call before issuing traffic; enabling twice is a no-op.
// The server must understand batch envelopes (same-version server); against
// an old server, leave batching off — every frame the unbatched client sends
// is unchanged.
func (c *Client) EnableBatching(cfg BatchConfig) {
	cfg = cfg.withDefaults()
	c.mu.Lock()
	if c.batch != nil || c.closed {
		c.mu.Unlock()
		return
	}
	c.batch = &cfg
	flushCh := make(chan struct{}, 1)
	done := make(chan struct{})
	c.flushCh, c.done = flushCh, done
	c.mu.Unlock()
	go c.flusher(cfg, flushCh, done)
}

// EnableBinary opts this client into the binary hot-path codec. Call before
// issuing traffic: each Declare/Consume advertises the capability, and the
// writer switches to binary frames once the server confirms (old servers
// ignore the advertisement and the connection stays JSON). Safe to combine
// with EnableBatching; the negotiated codec applies to batch frames too.
func (c *Client) EnableBinary() {
	c.mu.Lock()
	c.wantBin = true
	c.mu.Unlock()
}

// BinaryNegotiated reports whether the server confirmed the binary codec
// for this connection.
func (c *Client) BinaryNegotiated() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.binOK
}

// Close disconnects. Server-side, unacked deliveries are requeued.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.stopFlusher()
	return c.conn.Close()
}

// stopFlusher shuts the batching flusher down exactly once (idempotent; a
// no-op when batching was never enabled).
func (c *Client) stopFlusher() {
	c.mu.Lock()
	done := c.done
	c.done = nil
	c.mu.Unlock()
	if done != nil {
		close(done)
	}
}

func (c *Client) readLoop() {
	r := protocol.NewFrameReader(c.conn)
	var err error
	for {
		var env protocol.Envelope
		env, err = r.Read()
		if err != nil {
			break
		}
		switch env.Type {
		case protocol.EnvOK:
			// A non-empty OK body is the server's codec confirmation: flip
			// the writer to binary before completing the request so the next
			// frame out already uses the negotiated codec.
			if env.Bin != nil || len(env.Body) > 0 {
				var ok okBody
				if derr := env.Decode(&ok); derr == nil && ok.Bin {
					c.w.EnableBinary()
					c.mu.Lock()
					c.binOK = true
					c.mu.Unlock()
				}
			}
			c.complete(env.ID, nil)
		case protocol.EnvError:
			var body errorBody
			msg := "unknown broker error"
			if derr := env.Decode(&body); derr == nil {
				msg = body.Message
			}
			c.complete(env.ID, errors.New(msg))
		case protocol.EnvDelivery:
			var body deliveryBody
			if derr := env.Decode(&body); derr != nil {
				continue
			}
			// The send happens under the lock so Cancel's close of the
			// channel cannot race it; the buffer (prefetch+1) exceeds the
			// server's delivery window, so the send never blocks.
			c.mu.Lock()
			if rc := c.streams[body.Queue]; rc != nil {
				rc.ch <- Message{Tag: body.Tag, Body: body.Body, Redelivered: body.Redelivered, Trace: env.Trace}
			}
			c.mu.Unlock()
		case protocol.EnvDeliveryBatch:
			var body deliveryBatchBody
			if derr := env.Decode(&body); derr != nil {
				continue
			}
			// Batched deliveries stay within the consumer's prefetch window,
			// so like the single-delivery case these sends never block.
			c.mu.Lock()
			if rc := c.streams[body.Queue]; rc != nil {
				for _, it := range body.Items {
					rc.ch <- Message{Tag: it.Tag, Body: it.Body, Redelivered: it.Redelivered, Trace: it.Trace}
				}
			}
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	c.closed = true
	c.closeErr = err
	for id, ch := range c.pending {
		ch <- fmt.Errorf("broker: connection lost: %w", err)
		delete(c.pending, id)
	}
	for q, rc := range c.streams {
		close(rc.ch)
		delete(c.streams, q)
	}
	c.mu.Unlock()
	c.stopFlusher()
}

func (c *Client) complete(id string, err error) {
	c.mu.Lock()
	ch, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if ok {
		ch <- err
	}
}

// call sends a request and waits for its ok/error reply.
func (c *Client) call(typ string, body any) error {
	return c.callTraced(typ, body, nil)
}

// callTraced is call with a trace context attached to the request envelope.
func (c *Client) callTraced(typ string, body any, tc *trace.Context) error {
	id := c.ids.next()
	ch := make(chan error, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.pending[id] = ch
	c.mu.Unlock()

	// The body rides as Envelope.Bin: a binary-negotiated writer encodes it
	// structurally; a JSON writer marshals it through a pooled scratch
	// buffer — the wire bytes there are identical to the old
	// NewEnvelope(json.Marshal) path.
	env := protocol.Envelope{Type: typ, ID: id, Trace: tc, Bin: body}
	if err := c.w.Write(env); err != nil {
		c.complete(id, nil)
		return fmt.Errorf("broker: send %s: %w", typ, err)
	}
	select {
	case err := <-ch:
		return err
	case <-time.After(30 * time.Second):
		return fmt.Errorf("broker: %s timed out", typ)
	}
}

// advertiseBin reports whether declare/consume requests should advertise
// the binary codec.
func (c *Client) advertiseBin() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wantBin
}

// Declare creates a queue on the remote broker.
func (c *Client) Declare(queue string) error {
	return c.call(protocol.EnvDeclare, &declareBody{Queue: queue, Bin: c.advertiseBin()})
}

// Publish appends body to the remote queue.
func (c *Client) Publish(queue string, body []byte) error {
	return c.PublishTraced(queue, body, nil)
}

// PublishTraced appends body to the remote queue with a trace context on
// the publish envelope; the server propagates it to the delivery. With
// batching enabled the publish may be coalesced with concurrent ones into a
// publish_batch frame; the call still blocks until the broker confirms.
func (c *Client) PublishTraced(queue string, body []byte, tc *trace.Context) error {
	c.mu.Lock()
	batching := c.batch != nil && !c.closed
	c.mu.Unlock()
	if batching {
		return c.enqueuePub(queue, body, tc)
	}
	return c.callTraced(protocol.EnvPublish, &publishBody{Queue: queue, Body: body}, tc)
}

// PublishBatch sends every body to one queue in a single publish_batch
// frame and waits for the broker's single confirmation. traces may be nil
// or parallel to bodies.
func (c *Client) PublishBatch(queue string, bodies [][]byte, traces []*trace.Context) error {
	if len(bodies) == 0 {
		return nil
	}
	return c.call(protocol.EnvPublishBatch, &publishBatchBody{Queue: queue, Bodies: bodies, Traces: traces})
}

// enqueuePub hands a publish to the flusher and waits for its completion.
func (c *Client) enqueuePub(queue string, body []byte, tc *trace.Context) error {
	p := pendingPub{queue: queue, body: body, tc: tc, done: make(chan error, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.pubQ = append(c.pubQ, p)
	flushCh := c.flushCh
	c.mu.Unlock()
	signalFlush(flushCh)
	select {
	case err := <-p.done:
		return err
	case <-time.After(30 * time.Second):
		return fmt.Errorf("broker: batched publish timed out")
	}
}

// enqueueAck hands an ack to the flusher and waits for its completion.
func (c *Client) enqueueAck(queue string, tag uint64) error {
	a := pendingAck{queue: queue, tag: tag, done: make(chan error, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.ackQ = append(c.ackQ, a)
	flushCh := c.flushCh
	c.mu.Unlock()
	signalFlush(flushCh)
	select {
	case err := <-a.done:
		return err
	case <-time.After(30 * time.Second):
		return fmt.Errorf("broker: batched ack timed out")
	}
}

func signalFlush(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default: // a flush is already pending
	}
}

// flusher is the group-commit loop: each wakeup drains everything queued,
// groups it by queue, and sends publish_batch / ack_batch frames (a lone
// message degrades to a plain publish/ack — identical to the unbatched
// wire). While a batch's reply is in flight new calls accumulate, so batch
// size adapts to offered load.
func (c *Client) flusher(cfg BatchConfig, flushCh chan struct{}, done chan struct{}) {
	for {
		select {
		case <-done:
			c.failQueued(ErrClosed)
			return
		case <-flushCh:
		}
		if cfg.FlushWindow > 0 {
			select {
			case <-done:
				c.failQueued(ErrClosed)
				return
			case <-time.After(cfg.FlushWindow):
			}
		}
		for {
			c.mu.Lock()
			pubs, acks := c.pubQ, c.ackQ
			c.pubQ, c.ackQ = nil, nil
			c.mu.Unlock()
			if len(pubs) == 0 && len(acks) == 0 {
				break
			}
			c.flushPubs(pubs, cfg.MaxBatch)
			c.flushAcks(acks, cfg.MaxBatch)
		}
	}
}

// failQueued completes every queued-but-unsent operation with err.
func (c *Client) failQueued(err error) {
	c.mu.Lock()
	pubs, acks := c.pubQ, c.ackQ
	c.pubQ, c.ackQ = nil, nil
	c.mu.Unlock()
	for _, p := range pubs {
		p.done <- err
	}
	for _, a := range acks {
		a.done <- err
	}
}

// flushPubs sends queued publishes grouped by queue, chunked at maxBatch,
// preserving per-queue FIFO order.
func (c *Client) flushPubs(pubs []pendingPub, maxBatch int) {
	byQueue := make(map[string][]pendingPub)
	var order []string
	for _, p := range pubs {
		if _, ok := byQueue[p.queue]; !ok {
			order = append(order, p.queue)
		}
		byQueue[p.queue] = append(byQueue[p.queue], p)
	}
	for _, q := range order {
		group := byQueue[q]
		for len(group) > 0 {
			n := len(group)
			if n > maxBatch {
				n = maxBatch
			}
			chunk := group[:n]
			group = group[n:]
			if n == 1 {
				chunk[0].done <- c.callTraced(protocol.EnvPublish, &publishBody{Queue: q, Body: chunk[0].body}, chunk[0].tc)
				continue
			}
			bodies := make([][]byte, n)
			var traces []*trace.Context
			for i, p := range chunk {
				bodies[i] = p.body
				if p.tc != nil && traces == nil {
					traces = make([]*trace.Context, n)
				}
			}
			if traces != nil {
				for i, p := range chunk {
					traces[i] = p.tc
				}
			}
			err := c.call(protocol.EnvPublishBatch, &publishBatchBody{Queue: q, Bodies: bodies, Traces: traces})
			for _, p := range chunk {
				p.done <- err
			}
		}
	}
}

// flushAcks sends queued acks grouped by queue, chunked at maxBatch.
func (c *Client) flushAcks(acks []pendingAck, maxBatch int) {
	byQueue := make(map[string][]pendingAck)
	var order []string
	for _, a := range acks {
		if _, ok := byQueue[a.queue]; !ok {
			order = append(order, a.queue)
		}
		byQueue[a.queue] = append(byQueue[a.queue], a)
	}
	for _, q := range order {
		group := byQueue[q]
		for len(group) > 0 {
			n := len(group)
			if n > maxBatch {
				n = maxBatch
			}
			chunk := group[:n]
			group = group[n:]
			if n == 1 {
				chunk[0].done <- c.call(protocol.EnvAck, &ackBody{Queue: q, Tag: chunk[0].tag})
				continue
			}
			tags := make([]uint64, n)
			for i, a := range chunk {
				tags[i] = a.tag
			}
			err := c.call(protocol.EnvAckBatch, &ackBatchBody{Queue: q, Tags: tags})
			for _, a := range chunk {
				a.done <- err
			}
		}
	}
}

// Ping round-trips a heartbeat.
func (c *Client) Ping() error {
	return c.call(protocol.EnvHeartbeat, nil)
}

// DeleteQueue removes a queue on the remote broker, dropping its messages
// and closing its consumers.
func (c *Client) DeleteQueue(queue string) error {
	return c.call(protocol.EnvShutdown, &declareBody{Queue: queue})
}

// RemoteConsumer mirrors Consumer for a TCP client: a delivery channel plus
// Ack/Nack that round-trip to the server.
type RemoteConsumer struct {
	c     *Client
	queue string
	ch    chan Message
}

// Consume begins consuming the remote queue. Only one consumer per queue per
// client connection is permitted (the server enforces this). When batching
// is enabled the consumer opts into delivery_batch frames from the server.
func (c *Client) Consume(queue string, prefetch int) (*RemoteConsumer, error) {
	if prefetch <= 0 {
		prefetch = 1
	}
	rc := &RemoteConsumer{c: c, queue: queue, ch: make(chan Message, prefetch+1)}
	c.mu.Lock()
	if _, dup := c.streams[queue]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("broker: already consuming %q", queue)
	}
	c.streams[queue] = rc
	batch := c.batch
	c.mu.Unlock()
	req := &consumeBody{Queue: queue, Prefetch: prefetch, Bin: c.advertiseBin()}
	if batch != nil {
		req.Batch = true
		req.MaxBatch = batch.MaxBatch
		req.FlushWindowUS = batch.FlushWindow.Microseconds()
	}
	if err := c.call(protocol.EnvConsume, req); err != nil {
		c.mu.Lock()
		delete(c.streams, queue)
		c.mu.Unlock()
		return nil, err
	}
	return rc, nil
}

// Messages returns the delivery channel; it closes when the connection
// drops.
func (rc *RemoteConsumer) Messages() <-chan Message { return rc.ch }

// Ack acknowledges a delivery by tag. With batching enabled, concurrent
// acks coalesce into ack_batch frames.
func (rc *RemoteConsumer) Ack(tag uint64) error {
	rc.c.mu.Lock()
	batching := rc.c.batch != nil && !rc.c.closed
	rc.c.mu.Unlock()
	if batching {
		return rc.c.enqueueAck(rc.queue, tag)
	}
	return rc.c.call(protocol.EnvAck, &ackBody{Queue: rc.queue, Tag: tag})
}

// AckBatch acknowledges many tags in one ack_batch frame and one broker
// lock round trip.
func (rc *RemoteConsumer) AckBatch(tags []uint64) error {
	if len(tags) == 0 {
		return nil
	}
	return rc.c.call(protocol.EnvAckBatch, &ackBatchBody{Queue: rc.queue, Tags: tags})
}

// Nack rejects a delivery; the server requeues it.
func (rc *RemoteConsumer) Nack(tag uint64) error {
	return rc.c.call(protocol.EnvNack, &ackBody{Queue: rc.queue, Tag: tag})
}

// Reject dead-letters a delivery to "<queue>.dlq" on the server.
func (rc *RemoteConsumer) Reject(tag uint64) error {
	return rc.c.call(protocol.EnvNack, &ackBody{Queue: rc.queue, Tag: tag, DeadLetter: true})
}

// Cancel stops consuming: the server detaches the consumer (requeueing
// anything unacknowledged) and the local delivery channel closes.
func (rc *RemoteConsumer) Cancel() error {
	err := rc.c.call(protocol.EnvDrain, &declareBody{Queue: rc.queue})
	rc.c.mu.Lock()
	if _, ok := rc.c.streams[rc.queue]; ok {
		delete(rc.c.streams, rc.queue)
		close(rc.ch)
	}
	rc.c.mu.Unlock()
	return err
}
