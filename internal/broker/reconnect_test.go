package broker

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// dialConn adapts Dial to a ReconnectConfig.Dial function.
func dialConn(addr string) func() (Conn, error) {
	return func() (Conn, error) {
		c, err := Dial(addr)
		if err != nil {
			return nil, err
		}
		return c.AsConn(), nil
	}
}

func TestReconnectingConnSurvivesServerRestart(t *testing.T) {
	b := New()
	defer b.Close()
	s, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()

	rc, err := NewReconnecting(ReconnectConfig{Dial: dialConn(addr)})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if err := rc.Declare("q"); err != nil {
		t.Fatal(err)
	}
	sub, err := rc.Subscribe("q", 4)
	if err != nil {
		t.Fatal(err)
	}

	// Normal delivery before the fault.
	if err := rc.Publish("q", []byte("before")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-sub.Messages():
		if string(m.Body) != "before" {
			t.Fatalf("message = %q", m.Body)
		}
		_ = sub.Ack(m.Tag)
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery before restart")
	}

	// Kill the TCP front end and bring it back on the same address. The
	// in-process broker (and its queues) survives; only connections die.
	s.Close()
	var s2 *Server
	deadline := time.Now().Add(5 * time.Second)
	for {
		s2, err = Serve(b, addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restart listener: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer s2.Close()

	// Publishing retries through the redial; the consumer resubscribes and
	// delivery continues on the same Messages channel.
	if err := rc.Publish("q", []byte("after")); err != nil {
		t.Fatalf("publish after restart: %v", err)
	}
	select {
	case m, ok := <-sub.Messages():
		if !ok {
			t.Fatal("subscription channel closed across restart")
		}
		if string(m.Body) != "after" {
			t.Fatalf("message = %q", m.Body)
		}
		_ = sub.Ack(m.Tag)
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery after restart")
	}

	if v := rc.Metrics.Counter("reconnects").Value(); v < 1 {
		t.Errorf("reconnects = %d, want >= 1", v)
	}
	if v := rc.Metrics.Counter("resubscribes").Value(); v < 1 {
		t.Errorf("resubscribes = %d, want >= 1", v)
	}
}

func TestReconnectingConnPublishGivesUp(t *testing.T) {
	// Dead dial target: bounded publish attempts must fail, not hang.
	rc, err := NewReconnecting(ReconnectConfig{
		Dial:            func() (Conn, error) { return nil, errors.New("connection refused") },
		BaseDelay:       time.Millisecond,
		MaxDelay:        2 * time.Millisecond,
		PublishAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	done := make(chan error, 1)
	go func() { done <- rc.Publish("q", []byte("x")) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("publish succeeded with no reachable broker")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("publish never returned")
	}
	if v := rc.Metrics.Counter("publish_retries").Value(); v != 2 {
		t.Errorf("publish_retries = %d, want 2", v)
	}
}

func TestReconnectingConnNonTransientErrorNotRetried(t *testing.T) {
	b := New()
	defer b.Close()
	rc, err := NewReconnecting(ReconnectConfig{
		Dial: func() (Conn, error) { return LocalConn(b), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	// Publishing to an undeclared queue is a broker-level rejection, not a
	// connection fault: it must fail immediately without burning retries.
	if err := rc.Publish("no-such-queue", []byte("x")); err == nil {
		t.Fatal("publish to missing queue succeeded")
	}
	if v := rc.Metrics.Counter("publish_retries").Value(); v != 0 {
		t.Errorf("publish_retries = %d, want 0 for non-transient error", v)
	}
}

func TestReconnectingConnCloseUnblocks(t *testing.T) {
	rc, err := NewReconnecting(ReconnectConfig{
		Dial:      func() (Conn, error) { return nil, fmt.Errorf("connection refused") },
		BaseDelay: 50 * time.Millisecond,
		MaxDelay:  time.Second,
		// High attempt count: without Close the publish would spin for a
		// long while.
		PublishAttempts: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- rc.Publish("q", []byte("x")) }()
	time.Sleep(20 * time.Millisecond)
	rc.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("publish not unblocked by Close")
	}
}

func TestTransientBrokerErrClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrClosed, true},
		{ErrConsumerClosed, true},
		{errors.New("broker: connection lost"), true},
		{errors.New("dial tcp: connection refused"), true},
		{errors.New("read: connection reset by peer"), true},
		{errors.New("broker: unknown queue \"q\""), false},
		{errors.New("broker: queue exists"), false},
	}
	for _, c := range cases {
		if got := transientBrokerErr(c.err); got != c.want {
			t.Errorf("transientBrokerErr(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
