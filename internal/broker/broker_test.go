package broker

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDeclarePublishConsume(t *testing.T) {
	b := New()
	if err := b.Declare("q"); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("q", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	c, err := b.Consume("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	m := <-c.Messages()
	if string(m.Body) != "hello" {
		t.Errorf("body = %q, want hello", m.Body)
	}
	if m.Redelivered {
		t.Error("fresh message flagged redelivered")
	}
	if err := c.Ack(m.Tag); err != nil {
		t.Fatal(err)
	}
	if n, _ := b.Unacked("q"); n != 0 {
		t.Errorf("unacked = %d after ack", n)
	}
}

func TestDeclareIdempotent(t *testing.T) {
	b := New()
	if err := b.Declare("q"); err != nil {
		t.Fatal(err)
	}
	if err := b.Declare("q"); err != nil {
		t.Errorf("second declare = %v, want nil", err)
	}
}

func TestPublishUnknownQueue(t *testing.T) {
	b := New()
	if err := b.Publish("missing", nil); !errors.Is(err, ErrQueueNotFound) {
		t.Errorf("err = %v, want ErrQueueNotFound", err)
	}
}

func TestFIFOOrder(t *testing.T) {
	b := New()
	b.Declare("q")
	for i := 0; i < 50; i++ {
		b.Publish("q", []byte{byte(i)})
	}
	c, _ := b.Consume("q", 50)
	for i := 0; i < 50; i++ {
		m := <-c.Messages()
		if m.Body[0] != byte(i) {
			t.Fatalf("message %d out of order: got %d", i, m.Body[0])
		}
		c.Ack(m.Tag)
	}
}

func TestPrefetchWindow(t *testing.T) {
	b := New()
	b.Declare("q")
	for i := 0; i < 10; i++ {
		b.Publish("q", []byte("m"))
	}
	c, _ := b.Consume("q", 3)
	// Exactly 3 deliveries should be outstanding before any ack.
	time.Sleep(10 * time.Millisecond)
	if n, _ := b.Unacked("q"); n != 3 {
		t.Errorf("unacked = %d, want 3 (prefetch)", n)
	}
	if n, _ := b.Depth("q"); n != 7 {
		t.Errorf("depth = %d, want 7", n)
	}
	m := <-c.Messages()
	c.Ack(m.Tag)
	time.Sleep(10 * time.Millisecond)
	if n, _ := b.Unacked("q"); n != 3 {
		t.Errorf("unacked after ack = %d, want 3 (window refilled)", n)
	}
}

func TestNackRedelivers(t *testing.T) {
	b := New()
	b.Declare("q")
	b.Publish("q", []byte("x"))
	c, _ := b.Consume("q", 1)
	m := <-c.Messages()
	if err := c.Nack(m.Tag); err != nil {
		t.Fatal(err)
	}
	m2 := <-c.Messages()
	if !m2.Redelivered {
		t.Error("redelivered message not flagged")
	}
	if string(m2.Body) != "x" {
		t.Errorf("body = %q", m2.Body)
	}
	c.Ack(m2.Tag)
}

func TestConsumerCloseRequeues(t *testing.T) {
	b := New()
	b.Declare("q")
	b.Publish("q", []byte("x"))
	c1, _ := b.Consume("q", 1)
	<-c1.Messages() // deliver but never ack
	c1.Close()
	c2, _ := b.Consume("q", 1)
	select {
	case m := <-c2.Messages():
		if !m.Redelivered {
			t.Error("requeued message not flagged redelivered")
		}
		c2.Ack(m.Tag)
	case <-time.After(time.Second):
		t.Fatal("message lost after consumer close")
	}
}

func TestAckUnknownTag(t *testing.T) {
	b := New()
	b.Declare("q")
	c, _ := b.Consume("q", 1)
	if err := c.Ack(99); !errors.Is(err, ErrUnknownTag) {
		t.Errorf("err = %v, want ErrUnknownTag", err)
	}
}

func TestRoundRobinAcrossConsumers(t *testing.T) {
	b := New()
	b.Declare("q")
	c1, _ := b.Consume("q", 100)
	c2, _ := b.Consume("q", 100)
	for i := 0; i < 100; i++ {
		b.Publish("q", []byte("m"))
	}
	time.Sleep(20 * time.Millisecond)
	n1, n2 := len(c1.ch), len(c2.ch)
	if n1+n2 != 100 {
		t.Fatalf("delivered %d+%d, want 100", n1, n2)
	}
	if n1 == 0 || n2 == 0 {
		t.Errorf("distribution skewed: %d vs %d", n1, n2)
	}
}

func TestDeleteQueueClosesConsumers(t *testing.T) {
	b := New()
	b.Declare("q")
	c, _ := b.Consume("q", 1)
	if err := b.Delete("q"); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-c.Messages():
		if ok {
			t.Error("received message from deleted queue")
		}
	case <-time.After(time.Second):
		t.Error("consumer channel not closed on queue delete")
	}
	if err := b.Publish("q", nil); !errors.Is(err, ErrQueueNotFound) {
		t.Errorf("publish after delete = %v", err)
	}
}

func TestBrokerCloseRejectsOps(t *testing.T) {
	b := New()
	b.Declare("q")
	b.Close()
	if err := b.Declare("r"); !errors.Is(err, ErrClosed) {
		t.Errorf("declare after close = %v", err)
	}
	if err := b.Publish("q", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("publish after close = %v", err)
	}
}

func TestAtLeastOnceUnderChurn(t *testing.T) {
	// Publish N messages; consumers randomly nack/close; every message
	// must eventually be acked exactly as many distinct bodies as sent.
	b := New()
	b.Declare("q")
	const n = 200
	for i := 0; i < n; i++ {
		b.Publish("q", []byte(fmt.Sprintf("%d", i)))
	}
	var mu sync.Mutex
	seen := make(map[string]int)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				mu.Lock()
				done := len(seen) >= n
				mu.Unlock()
				if done {
					return
				}
				c, err := b.Consume("q", 5)
				if err != nil {
					return
				}
				for i := 0; i < 20; i++ {
					select {
					case m, ok := <-c.Messages():
						if !ok {
							return
						}
						if (int(m.Tag)+w)%7 == 0 {
							c.Nack(m.Tag)
							continue
						}
						mu.Lock()
						seen[string(m.Body)]++
						mu.Unlock()
						c.Ack(m.Tag)
					case <-time.After(50 * time.Millisecond):
					}
				}
				c.Close() // churn: requeue whatever is outstanding
			}
		}(w)
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("processed %d distinct messages, want %d", len(seen), n)
	}
	if d, _ := b.Depth("q"); d != 0 {
		t.Errorf("queue depth %d after processing all", d)
	}
}

func TestPublishBodyIsCopied(t *testing.T) {
	b := New()
	b.Declare("q")
	buf := []byte("orig")
	b.Publish("q", buf)
	copy(buf, "XXXX")
	c, _ := b.Consume("q", 1)
	m := <-c.Messages()
	if string(m.Body) != "orig" {
		t.Errorf("body = %q, publisher mutation leaked", m.Body)
	}
}

func TestPropertyConservation(t *testing.T) {
	// For any mix of publishes and acks, published == acked + depth +
	// unacked at quiescence.
	f := func(counts []uint8) bool {
		b := New()
		b.Declare("q")
		total := 0
		for _, cnt := range counts {
			k := int(cnt % 8)
			for i := 0; i < k; i++ {
				b.Publish("q", []byte("m"))
				total++
			}
		}
		c, _ := b.Consume("q", 4)
		acked := 0
		for acked < total/2 {
			m, ok := <-c.Messages()
			if !ok {
				return false
			}
			c.Ack(m.Tag)
			acked++
		}
		depth, _ := b.Depth("q")
		unacked, _ := b.Unacked("q")
		return acked+depth+unacked == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
