package broker

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"globuscompute/internal/protocol"
)

// --- batched publish/consume over TCP ---

func TestBatchPublishConsumeTCP(t *testing.T) {
	s, _ := newTestServer(t)
	pub, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := DialBatched(s.Addr(), BatchConfig{MaxBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	if err := pub.Declare("q"); err != nil {
		t.Fatal(err)
	}
	const n = 100
	bodies := make([][]byte, n)
	for i := range bodies {
		bodies[i] = []byte(fmt.Sprintf("task-%d", i))
	}
	if err := pub.PublishBatch("q", bodies, nil); err != nil {
		t.Fatal(err)
	}

	rc, err := sub.Consume("q", 64)
	if err != nil {
		t.Fatal(err)
	}
	var tags []uint64
	for i := 0; i < n; i++ {
		select {
		case m := <-rc.Messages():
			if string(m.Body) != fmt.Sprintf("task-%d", i) {
				t.Fatalf("message %d = %q (batched delivery must preserve FIFO order)", i, m.Body)
			}
			tags = append(tags, m.Tag)
			if len(tags) == 32 || i == n-1 {
				if err := rc.AckBatch(tags); err != nil {
					t.Fatal(err)
				}
				tags = tags[:0]
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for message %d", i)
		}
	}
}

// --- interop: old client against new server ---

// TestOldClientPlainPublishInterop speaks the pre-batching wire protocol by
// hand (plain publish / consume / ack envelopes, no batch fields) against
// the batching-aware server: everything must decode and deliver exactly as
// before, with plain delivery frames only.
func TestOldClientPlainPublishInterop(t *testing.T) {
	s, _ := newTestServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	r := protocol.NewFrameReader(conn)
	w := protocol.NewFrameWriter(conn)

	call := func(id, typ string, body any) {
		t.Helper()
		if err := w.Write(protocol.MustEnvelope(typ, id, body)); err != nil {
			t.Fatal(err)
		}
		env, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if env.Type != protocol.EnvOK || env.ID != id {
			t.Fatalf("reply to %s = %s (id %s)", typ, env.Type, env.ID)
		}
	}
	call("1", protocol.EnvDeclare, declareBody{Queue: "q"})
	for i := 0; i < 3; i++ {
		call(fmt.Sprintf("p%d", i), protocol.EnvPublish, publishBody{Queue: "q", Body: []byte(fmt.Sprintf("m%d", i))})
	}
	call("c", protocol.EnvConsume, consumeBody{Queue: "q", Prefetch: 4})

	var tags []uint64
	for i := 0; i < 3; i++ {
		env, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if env.Type != protocol.EnvDelivery {
			t.Fatalf("frame %d type = %q, want plain %q for a non-batch consumer", i, env.Type, protocol.EnvDelivery)
		}
		var d deliveryBody
		if err := env.Decode(&d); err != nil {
			t.Fatal(err)
		}
		if string(d.Body) != fmt.Sprintf("m%d", i) {
			t.Fatalf("delivery %d body = %q", i, d.Body)
		}
		tags = append(tags, d.Tag)
	}
	for i, tag := range tags {
		call(fmt.Sprintf("a%d", i), protocol.EnvAck, ackBody{Queue: "q", Tag: tag})
	}
}

// --- interop: batching client against an old server ---

// recordingServer is a minimal frame-level broker stand-in that records
// every envelope type it receives and replies OK, optionally after a delay
// (to keep a reply in flight while more messages queue client-side).
type recordingServer struct {
	ln    net.Listener
	delay time.Duration

	mu    sync.Mutex
	types []string
}

func startRecordingServer(t *testing.T, delay time.Duration) *recordingServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := &recordingServer{ln: ln, delay: delay}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go rs.handle(conn)
		}
	}()
	return rs
}

func (rs *recordingServer) handle(conn net.Conn) {
	defer conn.Close()
	r := protocol.NewFrameReader(conn)
	w := protocol.NewFrameWriter(conn)
	for {
		env, err := r.Read()
		if err != nil {
			return
		}
		rs.mu.Lock()
		rs.types = append(rs.types, env.Type)
		rs.mu.Unlock()
		if rs.delay > 0 {
			time.Sleep(rs.delay)
		}
		_ = w.Write(protocol.MustEnvelope(protocol.EnvOK, env.ID, nil))
	}
}

func (rs *recordingServer) recorded() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]string(nil), rs.types...)
}

// TestBatchedClientIdleSendsPlainPublish verifies the degrade-to-classic
// guarantee: a batching-enabled client whose flush contains a single
// message emits a plain publish envelope, wire-identical to an unbatched
// client — so it interoperates with servers that predate publish_batch.
func TestBatchedClientIdleSendsPlainPublish(t *testing.T) {
	rs := startRecordingServer(t, 0)
	c, err := DialBatched(rs.ln.Addr().String(), BatchConfig{MaxBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Publish("q", []byte("solo")); err != nil {
		t.Fatal(err)
	}
	for _, typ := range rs.recorded() {
		if typ == protocol.EnvPublishBatch {
			t.Fatalf("idle batched client sent %s; a single-message flush must degrade to %s", typ, protocol.EnvPublish)
		}
	}
	got := rs.recorded()
	if len(got) != 1 || got[0] != protocol.EnvPublish {
		t.Fatalf("recorded frames = %v, want exactly one %s", got, protocol.EnvPublish)
	}
}

// TestBatchedClientCoalescesConcurrentPublishes verifies group commit: while
// one flush's reply is in flight, concurrent publishes accumulate and go
// out as publish_batch frames, so N messages cost far fewer than N round
// trips.
func TestBatchedClientCoalescesConcurrentPublishes(t *testing.T) {
	rs := startRecordingServer(t, 5*time.Millisecond)
	c, err := DialBatched(rs.ln.Addr().String(), BatchConfig{MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.Publish("q", []byte(fmt.Sprintf("m%d", i))); err != nil {
				t.Errorf("publish %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	frames := rs.recorded()
	if len(frames) >= n {
		t.Fatalf("%d publishes used %d frames; group commit should coalesce", n, len(frames))
	}
	sawBatch := false
	for _, typ := range frames {
		if typ == protocol.EnvPublishBatch {
			sawBatch = true
		}
	}
	if !sawBatch {
		t.Fatalf("no %s frame among %v", protocol.EnvPublishBatch, frames)
	}
}

// --- chaos: partially-acked batch redelivery ---

// TestChaosBatchedWirePartialAck delivers a batch over the wire, acks only
// half of it, then drops the connection: the broker must redeliver exactly
// the unacked half (flagged Redelivered) to the next consumer — the
// at-least-once contract with batching enabled.
func TestChaosBatchedWirePartialAck(t *testing.T) {
	s, _ := newTestServer(t)
	pub, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Declare("q"); err != nil {
		t.Fatal(err)
	}
	const n = 8
	bodies := make([][]byte, n)
	for i := range bodies {
		bodies[i] = []byte(fmt.Sprintf("m%d", i))
	}
	if err := pub.PublishBatch("q", bodies, nil); err != nil {
		t.Fatal(err)
	}

	first, err := DialBatched(s.Addr(), BatchConfig{MaxBatch: n})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := first.Consume("q", n)
	if err != nil {
		t.Fatal(err)
	}
	tags := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		select {
		case m := <-rc.Messages():
			if m.Redelivered {
				t.Fatalf("message %d already redelivered on first delivery", i)
			}
			tags = append(tags, m.Tag)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for message %d", i)
		}
	}
	// Ack the first half of the batch only, then drop the connection.
	if err := rc.AckBatch(tags[:n/2]); err != nil {
		t.Fatal(err)
	}
	first.Close()

	second, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	rc2, err := second.Consume("q", n)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for i := 0; i < n/2; i++ {
		select {
		case m := <-rc2.Messages():
			if !m.Redelivered {
				t.Fatalf("redelivery %d (%q) not flagged Redelivered", i, m.Body)
			}
			got[string(m.Body)] = true
			_ = rc2.Ack(m.Tag)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for redelivery %d (got %v)", i, got)
		}
	}
	for i := n / 2; i < n; i++ {
		if !got[fmt.Sprintf("m%d", i)] {
			t.Fatalf("unacked message m%d not redelivered (got %v)", i, got)
		}
	}
	select {
	case m := <-rc2.Messages():
		t.Fatalf("acked message %q redelivered", m.Body)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestReconnectingBatchedConnSurvivesRestart runs the server-restart chaos
// drill with wire batching enabled end to end: a ReconnectingConn dialing
// batched clients keeps publishing (via PublishBatch) and consuming across
// a broker front-end restart.
func TestReconnectingBatchedConnSurvivesRestart(t *testing.T) {
	b := New()
	defer b.Close()
	s, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()

	rc, err := NewReconnecting(ReconnectConfig{Dial: func() (Conn, error) {
		c, err := DialBatched(addr, BatchConfig{MaxBatch: 16})
		if err != nil {
			return nil, err
		}
		return c.AsConn(), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if err := rc.Declare("q"); err != nil {
		t.Fatal(err)
	}
	sub, err := rc.Subscribe("q", 16)
	if err != nil {
		t.Fatal(err)
	}

	recv := func(want string, timeout time.Duration) {
		t.Helper()
		deadline := time.After(timeout)
		for {
			select {
			case m, ok := <-sub.Messages():
				if !ok {
					t.Fatal("subscription closed")
				}
				_ = sub.Ack(m.Tag)
				if string(m.Body) == want {
					return
				}
				// Redeliveries of earlier messages may interleave; skip them.
			case <-deadline:
				t.Fatalf("no delivery of %q", want)
			}
		}
	}

	if err := rc.PublishBatch("q", [][]byte{[]byte("b0"), []byte("b1")}, nil); err != nil {
		t.Fatal(err)
	}
	recv("b0", 2*time.Second)
	recv("b1", 2*time.Second)

	s.Close()
	var s2 *Server
	deadline := time.Now().Add(5 * time.Second)
	for {
		s2, err = Serve(b, addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restart listener: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer s2.Close()

	if err := rc.PublishBatch("q", [][]byte{[]byte("after0"), []byte("after1")}, nil); err != nil {
		t.Fatalf("batch publish after restart: %v", err)
	}
	recv("after0", 5*time.Second)
	recv("after1", 5*time.Second)
}
