package broker

import (
	"testing"
	"time"
)

// connRoundTrip exercises a Conn implementation uniformly.
func connRoundTrip(t *testing.T, conn Conn) {
	t.Helper()
	if err := conn.Declare("q"); err != nil {
		t.Fatal(err)
	}
	sub, err := conn.Subscribe("q", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Publish("q", []byte("one")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-sub.Messages():
		if string(m.Body) != "one" {
			t.Errorf("body = %q", m.Body)
		}
		if err := sub.Ack(m.Tag); err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery")
	}
	// Nack redelivers.
	conn.Publish("q", []byte("two"))
	m := <-sub.Messages()
	sub.Nack(m.Tag)
	m2 := <-sub.Messages()
	if !m2.Redelivered || string(m2.Body) != "two" {
		t.Errorf("redelivery = %+v", m2)
	}
	sub.Ack(m2.Tag)
	// Cancel closes the channel.
	if err := sub.Cancel(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-sub.Messages():
		if ok {
			t.Error("message after cancel")
		}
	case <-time.After(2 * time.Second):
		t.Error("channel not closed after cancel")
	}
}

func TestRejectDeadLetters(t *testing.T) {
	for name, mk := range map[string]func(t *testing.T) (Conn, *Broker){
		"local": func(t *testing.T) (Conn, *Broker) {
			b := New()
			t.Cleanup(b.Close)
			return LocalConn(b), b
		},
		"remote": func(t *testing.T) (Conn, *Broker) {
			s, b := newTestServer(t)
			c, err := Dial(s.Addr())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			return c.AsConn(), b
		},
	} {
		t.Run(name, func(t *testing.T) {
			conn, b := mk(t)
			conn.Declare("q")
			conn.Publish("q", []byte("poison"))
			sub, err := conn.Subscribe("q", 1)
			if err != nil {
				t.Fatal(err)
			}
			m := <-sub.Messages()
			if err := sub.Reject(m.Tag); err != nil {
				t.Fatal(err)
			}
			// Not redelivered on the original queue...
			select {
			case m2 := <-sub.Messages():
				t.Fatalf("rejected message redelivered: %q", m2.Body)
			case <-time.After(100 * time.Millisecond):
			}
			// ...but available on the dead-letter queue.
			deadline := time.Now().Add(2 * time.Second)
			for {
				if d, err := b.Depth("q" + DeadLetterSuffix); err == nil && d == 1 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("message never dead-lettered")
				}
				time.Sleep(5 * time.Millisecond)
			}
			dlq, err := conn.Subscribe("q"+DeadLetterSuffix, 1)
			if err != nil {
				t.Fatal(err)
			}
			dead := <-dlq.Messages()
			if string(dead.Body) != "poison" {
				t.Errorf("dlq body = %q", dead.Body)
			}
			dlq.Ack(dead.Tag)
			// Rejecting an unknown tag errors.
			if err := sub.Reject(999); err == nil {
				t.Error("unknown tag rejected successfully")
			}
		})
	}
}

func TestLocalConn(t *testing.T) {
	b := New()
	defer b.Close()
	connRoundTrip(t, LocalConn(b))
}

func TestClientConn(t *testing.T) {
	s, _ := newTestServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	connRoundTrip(t, c.AsConn())
}

func TestRemoteCancelRequeues(t *testing.T) {
	s, b := newTestServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := c.AsConn()
	conn.Declare("q")
	conn.Publish("q", []byte("keep"))
	sub, err := conn.Subscribe("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	<-sub.Messages() // deliver, never ack
	if err := sub.Cancel(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if d, _ := b.Depth("q"); d == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("message not requeued after remote cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Resubscribe on the same connection now works (slot freed).
	sub2, err := conn.Subscribe("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	m := <-sub2.Messages()
	if !m.Redelivered {
		t.Error("not flagged redelivered")
	}
	sub2.Ack(m.Tag)
}

func TestRemoteCancelUnknownQueue(t *testing.T) {
	s, _ := newTestServer(t)
	c, _ := Dial(s.Addr())
	defer c.Close()
	c.Declare("q")
	rc, _ := c.Consume("q", 1)
	if err := rc.Cancel(); err != nil {
		t.Fatal(err)
	}
	// Second cancel: the server no longer knows the consumer.
	if err := rc.Cancel(); err == nil {
		t.Error("double cancel succeeded")
	}
}
