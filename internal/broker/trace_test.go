package broker

import (
	"testing"
	"time"

	"globuscompute/internal/trace"
)

func tracedBroker(t *testing.T) (*Broker, *trace.Collector) {
	t.Helper()
	b := New()
	col := trace.NewCollector(128)
	b.Tracer = trace.NewTracer("broker", col)
	t.Cleanup(b.Close)
	return b, col
}

func recvWithin(t *testing.T, ch <-chan Message, d time.Duration) Message {
	t.Helper()
	select {
	case m, ok := <-ch:
		if !ok {
			t.Fatal("consumer channel closed")
		}
		return m
	case <-time.After(d):
		t.Fatal("timed out waiting for delivery")
		return Message{}
	}
}

// spansNamed filters the collector for spans with the given name.
func spansNamed(col *trace.Collector, name string) []trace.Span {
	var out []trace.Span
	for _, s := range col.Snapshot() {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

func TestDeliveryCarriesTraceContext(t *testing.T) {
	b, col := tracedBroker(t)
	if err := b.Declare("tasks.ep"); err != nil {
		t.Fatal(err)
	}
	c, err := b.Consume("tasks.ep", 1)
	if err != nil {
		t.Fatal(err)
	}
	pub := &trace.Context{TraceID: trace.NewTraceID(), SpanID: trace.NewSpanID()}
	if err := b.PublishTraced("tasks.ep", []byte("x"), pub); err != nil {
		t.Fatal(err)
	}
	m := recvWithin(t, c.Messages(), 2*time.Second)
	if !m.Trace.Valid() || m.Trace.TraceID != pub.TraceID {
		t.Fatalf("delivery trace = %+v, want trace %s", m.Trace, pub.TraceID)
	}
	// The delivered context is the transit span, not the publisher's span:
	// downstream stages chain off broker.deliver.
	if m.Trace.SpanID == pub.SpanID {
		t.Error("delivery context still points at publisher span")
	}
	deliver := spansNamed(col, "broker.deliver")
	if len(deliver) != 1 {
		t.Fatalf("%d broker.deliver spans, want 1", len(deliver))
	}
	if deliver[0].Parent != pub.SpanID || deliver[0].Attrs["queue"] != "tasks.ep" {
		t.Errorf("deliver span %+v not parented on publish context", deliver[0])
	}
	if err := c.Ack(m.Tag); err != nil {
		t.Fatal(err)
	}
}

func TestNackPreservesTraceAndRecordsRequeue(t *testing.T) {
	b, col := tracedBroker(t)
	if err := b.Declare("q"); err != nil {
		t.Fatal(err)
	}
	c, err := b.Consume("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	pub := &trace.Context{TraceID: trace.NewTraceID(), SpanID: trace.NewSpanID()}
	if err := b.PublishTraced("q", []byte("poisonish"), pub); err != nil {
		t.Fatal(err)
	}
	first := recvWithin(t, c.Messages(), 2*time.Second)
	if err := c.Nack(first.Tag); err != nil {
		t.Fatal(err)
	}
	second := recvWithin(t, c.Messages(), 2*time.Second)
	if !second.Redelivered {
		t.Error("redelivery not flagged")
	}
	if !second.Trace.Valid() || second.Trace.TraceID != pub.TraceID {
		t.Fatalf("redelivered trace = %+v, want original trace %s", second.Trace, pub.TraceID)
	}
	req := spansNamed(col, "requeue")
	if len(req) != 1 {
		t.Fatalf("%d requeue spans, want 1", len(req))
	}
	if req[0].TraceID != pub.TraceID || req[0].Attrs["reason"] != "nack" || req[0].Attrs["queue"] != "q" {
		t.Errorf("requeue span %+v", req[0])
	}
	// Both deliveries recorded transit spans under the same trace.
	if d := spansNamed(col, "broker.deliver"); len(d) != 2 ||
		d[0].TraceID != pub.TraceID || d[1].TraceID != pub.TraceID {
		t.Errorf("deliver spans = %+v", d)
	}
	if err := c.Ack(second.Tag); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnectRequeuePreservesTrace(t *testing.T) {
	b := New()
	col := trace.NewCollector(128)
	b.Tracer = trace.NewTracer("broker", col)
	s, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		b.Close()
	})
	if err := b.Declare("tasks.ep"); err != nil {
		t.Fatal(err)
	}

	// First consumer connects over TCP, receives the message, and drops
	// without acking — the broker must requeue with the original trace.
	c1, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	rc1, err := c1.Consume("tasks.ep", 1)
	if err != nil {
		t.Fatal(err)
	}
	pub := &trace.Context{TraceID: trace.NewTraceID(), SpanID: trace.NewSpanID()}
	if err := b.PublishTraced("tasks.ep", []byte("task"), pub); err != nil {
		t.Fatal(err)
	}
	m1 := recvWithin(t, rc1.Messages(), 2*time.Second)
	if !m1.Trace.Valid() || m1.Trace.TraceID != pub.TraceID {
		t.Fatalf("TCP delivery trace = %+v, want %s", m1.Trace, pub.TraceID)
	}
	c1.Close() // abandon unacked message

	// Reconnect: the requeued message arrives, redelivered, same trace.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, _ := b.Unacked("tasks.ep"); n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("message never requeued after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c2, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rc2, err := c2.Consume("tasks.ep", 1)
	if err != nil {
		t.Fatal(err)
	}
	m2 := recvWithin(t, rc2.Messages(), 2*time.Second)
	if !m2.Redelivered {
		t.Error("redelivery not flagged after reconnect")
	}
	if !m2.Trace.Valid() || m2.Trace.TraceID != pub.TraceID {
		t.Fatalf("post-reconnect trace = %+v, want original %s", m2.Trace, pub.TraceID)
	}
	if err := rc2.Ack(m2.Tag); err != nil {
		t.Fatal(err)
	}

	req := spansNamed(col, "requeue")
	if len(req) != 1 || req[0].TraceID != pub.TraceID || req[0].Attrs["reason"] != "disconnect" {
		t.Fatalf("requeue spans = %+v", req)
	}
}

func TestRejectPreservesTraceInDLQ(t *testing.T) {
	b, col := tracedBroker(t)
	if err := b.Declare("q"); err != nil {
		t.Fatal(err)
	}
	c, err := b.Consume("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	pub := &trace.Context{TraceID: trace.NewTraceID(), SpanID: trace.NewSpanID()}
	if err := b.PublishTraced("q", []byte("poison"), pub); err != nil {
		t.Fatal(err)
	}
	m := recvWithin(t, c.Messages(), 2*time.Second)
	if err := c.Reject(m.Tag); err != nil {
		t.Fatal(err)
	}
	dc, err := b.Consume("q"+DeadLetterSuffix, 1)
	if err != nil {
		t.Fatal(err)
	}
	dm := recvWithin(t, dc.Messages(), 2*time.Second)
	if !dm.Trace.Valid() || dm.Trace.TraceID != pub.TraceID {
		t.Fatalf("dead-lettered trace = %+v, want %s", dm.Trace, pub.TraceID)
	}
	if d := spansNamed(col, "broker.deliver"); len(d) != 2 {
		t.Errorf("%d deliver spans, want 2 (queue + dlq)", len(d))
	}
	if err := dc.Ack(dm.Tag); err != nil {
		t.Fatal(err)
	}
}
