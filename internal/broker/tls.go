package broker

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"time"
)

// TLS support: the hosted service speaks AMQPS (AMQP over TLS) between
// endpoints and the cloud; this file provides the encrypted transport
// variant of the broker with an in-memory self-signed identity, the moral
// equivalent of ZMQ Curve keys distributed at registration time.

// brokerServerName is the SNI/verification name baked into generated
// certificates; clients pin it rather than relying on hostnames.
const brokerServerName = "globus-compute-broker"

// GenerateIdentity mints a self-signed TLS identity for a broker and the
// CA pool clients use to verify it.
func GenerateIdentity() (tls.Certificate, *x509.CertPool, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, nil, fmt.Errorf("broker: tls key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: brokerServerName},
		DNSNames:              []string{brokerServerName},
		IPAddresses:           []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, nil, fmt.Errorf("broker: tls cert: %w", err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	cert := tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}
	return cert, pool, nil
}

// CertPEM renders the identity's certificate as PEM, for distribution to
// endpoints (the registration-time key handout).
func CertPEM(cert tls.Certificate) ([]byte, error) {
	if len(cert.Certificate) == 0 {
		return nil, fmt.Errorf("broker: identity has no certificate")
	}
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: cert.Certificate[0]}), nil
}

// PoolFromPEM builds a verification pool from PEM certificate data.
func PoolFromPEM(data []byte) (*x509.CertPool, error) {
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(data) {
		return nil, fmt.Errorf("broker: no certificates in PEM data")
	}
	return pool, nil
}

// ServeTLS starts a broker server speaking TLS with the given identity.
func ServeTLS(b *Broker, addr string, cert tls.Certificate) (*Server, error) {
	ln, err := tls.Listen("tcp", addr, &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS13,
	})
	if err != nil {
		return nil, fmt.Errorf("broker: tls listen: %w", err)
	}
	s := &Server{B: b, ln: ln, conns: make(map[net.Conn]struct{})}
	go s.acceptLoop()
	return s, nil
}

// DialTLS connects to a TLS broker, verifying against the given CA pool and
// the pinned broker server name.
func DialTLS(addr string, roots *x509.CertPool) (*Client, error) {
	dialer := &net.Dialer{Timeout: 5 * time.Second}
	conn, err := tls.DialWithDialer(dialer, "tcp", addr, &tls.Config{
		RootCAs:    roots,
		ServerName: brokerServerName,
		MinVersion: tls.VersionTLS13,
	})
	if err != nil {
		return nil, fmt.Errorf("broker: tls dial %s: %w", addr, err)
	}
	c := newClient(conn)
	go c.readLoop()
	return c, nil
}
