// Package broker implements the message-queue substrate that stands in for
// the cloud-hosted RabbitMQ deployment: named FIFO queues with
// publish/consume, per-consumer prefetch, explicit ack/nack, and requeue of
// unacknowledged messages when a consumer disconnects (at-least-once
// delivery).
//
// The web service declares a task queue and a result queue per endpoint;
// endpoint agents consume tasks and publish results; the result processor
// and streaming SDK executors consume results. All of those paths go through
// this package, either in-process (Broker methods) or over framed TCP
// (Server/Dial in server.go and client.go).
package broker

import (
	"container/list"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"globuscompute/internal/metrics"
	"globuscompute/internal/trace"
)

// Common errors.
var (
	ErrQueueNotFound  = errors.New("broker: queue not found")
	ErrQueueExists    = errors.New("broker: queue already declared")
	ErrClosed         = errors.New("broker: closed")
	ErrUnknownTag     = errors.New("broker: unknown delivery tag")
	ErrConsumerClosed = errors.New("broker: consumer closed")
	// ErrQueueFull reports a publish shed by a queue's depth limit (see
	// SetQueueLimit). The caller decides whether to surface it as overload
	// (the webservice returns 503 + Retry-After) or retry later.
	ErrQueueFull = errors.New("broker: queue full")
)

// shedWatermark is the soft fill fraction at which batch-priority
// publishes shed; interactive publishes may fill to the hard limit. The
// gap reserves headroom so interactive traffic keeps flowing while batch
// backs off first.
const shedWatermark = 0.8

// Message is a delivered queue entry. Tag identifies it for Ack/Nack on the
// consumer that received it.
type Message struct {
	Tag         uint64
	Body        []byte
	Redelivered bool
	// Trace is the delivery's trace context: the broker-transit span when
	// the broker traces, otherwise the publisher's context, otherwise nil.
	// Consumers continue the task's trace by parenting on it.
	Trace *trace.Context
}

// queueShards splits the broker's queue map so that lookups and declares on
// different queues do not serialize on one lock. 16 shards keeps the
// per-shard maps small while comfortably exceeding typical core counts.
const queueShards = 16

// queueShard is one slice of the queue map; reads (the per-publish lookup)
// take only the read lock.
type queueShard struct {
	mu sync.RWMutex
	m  map[string]*queue
}

// Broker is an in-process message broker. The zero value is not usable; use
// New.
type Broker struct {
	shards  [queueShards]queueShard
	closed  atomic.Bool
	Metrics *metrics.Registry
	// Tracer, when set before use, records a "broker.deliver" span per
	// traced message (publish -> delivery, the queue-transit time) and a
	// "requeue" span per nack/disconnect requeue.
	Tracer *trace.Tracer

	// jrnl, when set, journals queue lifecycle and message flow so a broker
	// restart redelivers queued-but-undelivered and delivered-but-unacked
	// messages (see SetJournal).
	jrnl Journal
	// nextMsgID hands out broker-unique message IDs when journaling, so the
	// journal can dedupe replayed publishes against a snapshot.
	nextMsgID atomic.Uint64
}

// Journal receives broker mutations for write-ahead persistence. LogPublish
// must make the records durable before returning (a published task may
// already be marked Delivered in the statestore — losing it would strand the
// task) and returns an applied callback, invoked once the messages are
// enqueued, so the journal's snapshot horizon never covers a logged-but-
// unenqueued publish. LogAck and the lifecycle hooks are fire-and-forget:
// losing an ack record only widens redelivery, which at-least-once delivery
// absorbs.
type Journal interface {
	LogDeclare(queue string)
	LogDelete(queue string)
	LogPublish(queue string, ids []uint64, bodies [][]byte) (applied func(), err error)
	LogAck(queue string, ids []uint64)
}

// SetJournal attaches the write-ahead journal. Call before the broker serves
// traffic (typically right after restoring a snapshot).
func (b *Broker) SetJournal(j Journal) { b.jrnl = j }

// New returns an empty broker.
func New() *Broker {
	b := &Broker{Metrics: metrics.NewRegistry()}
	for i := range b.shards {
		b.shards[i].m = make(map[string]*queue)
	}
	return b
}

func (b *Broker) shard(name string) *queueShard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return &b.shards[h.Sum32()%queueShards]
}

// Declare creates the named queue. Declaring an existing queue is an
// idempotent no-op, matching AMQP passive declaration of identical queues.
func (b *Broker) Declare(name string) error {
	if b.closed.Load() {
		return ErrClosed
	}
	sh := b.shard(name)
	sh.mu.RLock()
	_, ok := sh.m[name]
	sh.mu.RUnlock()
	if ok {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if b.closed.Load() {
		return ErrClosed
	}
	if _, ok := sh.m[name]; !ok {
		sh.m[name] = newQueue(b, name)
		if b.jrnl != nil {
			b.jrnl.LogDeclare(name)
		}
	}
	return nil
}

// Delete removes a queue, closing its consumers. Pending messages are
// dropped (used when an endpoint is deregistered).
func (b *Broker) Delete(name string) error {
	sh := b.shard(name)
	sh.mu.Lock()
	q, ok := sh.m[name]
	if ok {
		delete(sh.m, name)
	}
	sh.mu.Unlock()
	if !ok {
		return ErrQueueNotFound
	}
	if b.jrnl != nil {
		b.jrnl.LogDelete(name)
	}
	q.close()
	return nil
}

// Publish appends body to the named queue.
func (b *Broker) Publish(name string, body []byte) error {
	return b.PublishTraced(name, body, nil)
}

// PublishTraced is Publish with a trace context: the context rides with the
// message to its consumer, and queue transit is recorded as a child
// "broker.deliver" span when the broker has a Tracer.
func (b *Broker) PublishTraced(name string, body []byte, tc *trace.Context) error {
	return b.publishPriority(name, [][]byte{body}, []*trace.Context{tc}, false)
}

// PublishBatch appends several messages to one queue under a single lock
// acquisition and a single dispatch pass — the in-process half of wire
// batching. traces may be nil (no message traced) or parallel to bodies.
// Messages publish at batch (normal) priority.
func (b *Broker) PublishBatch(name string, bodies [][]byte, traces []*trace.Context) error {
	return b.publishPriority(name, bodies, traces, false)
}

// PublishBatchInteractive publishes at interactive priority: the messages
// dispatch ahead of batch-priority traffic and, on a depth-limited queue,
// may fill past the batch shed watermark up to the hard limit.
func (b *Broker) PublishBatchInteractive(name string, bodies [][]byte, traces []*trace.Context) error {
	return b.publishPriority(name, bodies, traces, true)
}

// publishPriority is the shared publish path. The depth-limit check runs
// before journaling so a shed publish is never written to the WAL (a
// replayed record must correspond to a message the caller was told was
// accepted). The check and the enqueue are separate lock acquisitions, so
// concurrent publishers can overshoot the limit by at most the in-flight
// batch sizes — watermark shedding is a pressure valve, not an exact cap.
func (b *Broker) publishPriority(name string, bodies [][]byte, traces []*trace.Context, interactive bool) error {
	if len(bodies) == 0 {
		return nil
	}
	q, err := b.lookup(name)
	if err != nil {
		return err
	}
	if err := q.admit(len(bodies), interactive); err != nil {
		return err
	}
	var ids []uint64
	var done func()
	if b.jrnl != nil {
		ids = make([]uint64, len(bodies))
		for i := range ids {
			ids[i] = b.nextMsgID.Add(1)
		}
		if done, err = b.jrnl.LogPublish(name, ids, bodies); err != nil {
			return err
		}
	}
	err = q.publishBatch(ids, bodies, traces, interactive)
	if done != nil {
		done()
	}
	return err
}

// SetQueueLimit bounds the named queue's ready depth: batch-priority
// publishes shed (ErrQueueFull) once depth reaches shedWatermark*limit,
// interactive publishes at limit. limit <= 0 restores unbounded growth.
// Requeues and redeliveries are never shed — bounding applies to new
// offered load only, so at-least-once delivery is unaffected.
func (b *Broker) SetQueueLimit(name string, limit int) error {
	q, err := b.lookup(name)
	if err != nil {
		return err
	}
	q.mu.Lock()
	q.limit = limit
	q.mu.Unlock()
	return nil
}

// Depth returns the number of messages waiting (not yet delivered) in the
// queue.
func (b *Broker) Depth(name string) (int, error) {
	q, err := b.lookup(name)
	if err != nil {
		return 0, err
	}
	return q.depth(), nil
}

// Unacked returns the number of delivered-but-unacknowledged messages.
func (b *Broker) Unacked(name string) (int, error) {
	q, err := b.lookup(name)
	if err != nil {
		return 0, err
	}
	return q.unackedCount(), nil
}

// Queues lists declared queue names.
func (b *Broker) Queues() []string {
	var names []string
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		for n := range sh.m {
			names = append(names, n)
		}
		sh.mu.RUnlock()
	}
	return names
}

// Consume attaches a consumer to the named queue with the given prefetch
// window (<=0 selects 1). Deliveries arrive on the returned Consumer's
// channel until the consumer or broker closes.
func (b *Broker) Consume(name string, prefetch int) (*Consumer, error) {
	q, err := b.lookup(name)
	if err != nil {
		return nil, err
	}
	c := q.addConsumer(prefetch)
	c.b = b
	return c, nil
}

// Close shuts down the broker and all queues and consumers.
func (b *Broker) Close() {
	if b.closed.Swap(true) {
		return
	}
	var qs []*queue
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		for _, q := range sh.m {
			qs = append(qs, q)
		}
		sh.mu.Unlock()
	}
	for _, q := range qs {
		q.close()
	}
}

func (b *Broker) lookup(name string) (*queue, error) {
	if b.closed.Load() {
		return nil, ErrClosed
	}
	sh := b.shard(name)
	sh.mu.RLock()
	q, ok := sh.m[name]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrQueueNotFound, name)
	}
	return q, nil
}

// queue holds messages and dispatches them to consumers round-robin,
// honoring each consumer's prefetch credit.
type queue struct {
	mu   sync.Mutex
	b    *Broker
	name string
	// Two-level priority: readyHigh (interactive) drains completely before
	// ready (batch). Requeues return to the front of their original level,
	// preserving redelivery-first ordering within each class.
	ready     *list.List // of *entry, batch priority
	readyHigh *list.List // of *entry, interactive priority
	consumers []*Consumer
	nextRR    int // round-robin cursor
	nextTag   uint64
	closed    bool
	// limit, when > 0, bounds ready depth; see SetQueueLimit.
	limit        int
	published    *metrics.Counter
	delivered    *metrics.Counter
	acked        *metrics.Counter
	requeued     *metrics.Counter
	deadlettered *metrics.Counter
	shed         *metrics.Counter
	depthGauge   *metrics.Gauge
}

type entry struct {
	body        []byte
	redelivered bool
	// interactive marks the entry's priority level for requeue placement.
	interactive bool
	// id is the journal's broker-unique message ID (0 when not journaling).
	id uint64
	// tc is the publisher's trace context; it survives requeues so a
	// redelivered message keeps its original trace ID.
	tc *trace.Context
	// enqueued stamps when the entry (re)entered the ready list, bounding
	// the broker-transit span.
	enqueued time.Time
}

func newQueue(b *Broker, name string) *queue {
	reg := b.Metrics
	return &queue{
		b:            b,
		name:         name,
		ready:        list.New(),
		readyHigh:    list.New(),
		published:    reg.Counter("published." + name),
		delivered:    reg.Counter("delivered." + name),
		acked:        reg.Counter("acked." + name),
		requeued:     reg.Counter("requeued." + name),
		deadlettered: reg.Counter("deadlettered." + name),
		shed:         reg.Counter("shed." + name),
		depthGauge:   reg.Gauge("depth." + name),
	}
}

// admit applies the depth limit to a publish of n new messages. Interactive
// traffic may fill to the hard limit; batch sheds at the watermark.
func (q *queue) admit(n int, interactive bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.limit <= 0 {
		return nil
	}
	lim := q.limit
	if !interactive {
		if lim = int(shedWatermark * float64(q.limit)); lim < 1 {
			lim = 1
		}
	}
	if depth := q.depthLocked(); depth+n > lim {
		q.shed.Add(int64(n))
		return fmt.Errorf("%w: %s depth %d (+%d) over limit %d", ErrQueueFull, q.name, depth, n, lim)
	}
	return nil
}

// publishBatch appends all bodies and dispatches once: N messages cost one
// mutex round trip and one dispatch pass instead of N.
func (q *queue) publishBatch(ids []uint64, bodies [][]byte, traces []*trace.Context, interactive bool) error {
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	dst := q.ready
	if interactive {
		dst = q.readyHigh
	}
	for i, body := range bodies {
		var tc *trace.Context
		if i < len(traces) {
			tc = traces[i]
		}
		e := &entry{body: append([]byte(nil), body...), tc: tc, enqueued: now, interactive: interactive}
		if i < len(ids) {
			e.id = ids[i]
		}
		dst.PushBack(e)
	}
	q.published.Add(int64(len(bodies)))
	q.dispatchLocked()
	q.depthGauge.Set(int64(q.depthLocked()))
	return nil
}

func (q *queue) depthLocked() int { return q.ready.Len() + q.readyHigh.Len() }

func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depthLocked()
}

func (q *queue) unackedCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, c := range q.consumers {
		n += len(c.unacked)
	}
	return n
}

func (q *queue) addConsumer(prefetch int) *Consumer {
	if prefetch <= 0 {
		prefetch = 1
	}
	c := &Consumer{
		q:        q,
		ch:       make(chan Message, prefetch),
		prefetch: prefetch,
		unacked:  make(map[uint64]*entry),
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		close(c.ch)
		c.closed = true
		return c
	}
	q.consumers = append(q.consumers, c)
	q.dispatchLocked()
	return c
}

// dispatchLocked hands ready messages to consumers with available credit,
// round-robin across consumers, draining the interactive level before the
// batch level. Caller holds q.mu.
func (q *queue) dispatchLocked() {
	if len(q.consumers) == 0 {
		return
	}
	for q.depthLocked() > 0 {
		c := q.pickConsumerLocked()
		if c == nil {
			return // everyone is at their prefetch window
		}
		src := q.readyHigh
		if src.Len() == 0 {
			src = q.ready
		}
		front := src.Front()
		e := front.Value.(*entry)
		src.Remove(front)
		q.nextTag++
		tag := q.nextTag
		c.unacked[tag] = e
		q.delivered.Inc()
		// Queue-transit span: publish (or requeue) to delivery. The
		// delivered context becomes the consumer's parent so downstream
		// stages chain off the transit span.
		tc := e.tc
		if tc.Valid() {
			tc = q.b.Tracer.Record(tc, "broker.deliver", e.enqueued, time.Now(), "queue", q.name)
		}
		// The channel has capacity == prefetch and credit was checked,
		// so this send cannot block.
		c.ch <- Message{Tag: tag, Body: e.body, Redelivered: e.redelivered, Trace: tc}
	}
	q.depthGauge.Set(int64(q.depthLocked()))
}

func (q *queue) pickConsumerLocked() *Consumer {
	n := len(q.consumers)
	for i := 0; i < n; i++ {
		c := q.consumers[(q.nextRR+i)%n]
		if !c.closed && len(c.unacked) < c.prefetch {
			q.nextRR = (q.nextRR + i + 1) % n
			return c
		}
	}
	return nil
}

func (q *queue) ack(c *Consumer, tag uint64) error {
	q.mu.Lock()
	e, ok := c.unacked[tag]
	if !ok {
		q.mu.Unlock()
		return ErrUnknownTag
	}
	delete(c.unacked, tag)
	q.acked.Inc()
	q.dispatchLocked()
	q.mu.Unlock()
	q.journalAck(e.id)
	return nil
}

// journalAck records acked message IDs (fire-and-forget). Called outside
// q.mu so a slow journal never blocks dispatch.
func (q *queue) journalAck(ids ...uint64) {
	j := q.b.jrnl
	if j == nil {
		return
	}
	live := ids[:0]
	for _, id := range ids {
		if id != 0 {
			live = append(live, id)
		}
	}
	if len(live) > 0 {
		j.LogAck(q.name, live)
	}
}

// ackBatch acknowledges every tag under one lock acquisition, dispatching
// once at the end. Unknown tags (stale after a reconnect) are skipped; the
// error reports how many, after the valid tags have all been acked.
func (q *queue) ackBatch(c *Consumer, tags []uint64) error {
	q.mu.Lock()
	unknown := 0
	ackedIDs := make([]uint64, 0, len(tags))
	for _, tag := range tags {
		e, ok := c.unacked[tag]
		if !ok {
			unknown++
			continue
		}
		delete(c.unacked, tag)
		ackedIDs = append(ackedIDs, e.id)
	}
	q.acked.Add(int64(len(ackedIDs)))
	q.dispatchLocked()
	q.mu.Unlock()
	q.journalAck(ackedIDs...)
	if unknown > 0 {
		return fmt.Errorf("%w: %d of %d tags in batch", ErrUnknownTag, unknown, len(tags))
	}
	return nil
}

// DeadLetterSuffix names the queue that receives rejected messages.
const DeadLetterSuffix = ".dlq"

// reject dead-letters a message: it moves to "<queue>.dlq" instead of
// being redelivered, the standard poison-message escape hatch.
func (q *queue) reject(b *Broker, c *Consumer, tag uint64) error {
	q.mu.Lock()
	e, ok := c.unacked[tag]
	if !ok {
		q.mu.Unlock()
		return ErrUnknownTag
	}
	delete(c.unacked, tag)
	q.deadlettered.Inc()
	q.dispatchLocked()
	q.mu.Unlock()
	// The dead-letter move is journaled as ack-here + publish-there (the DLQ
	// publish below journals itself).
	q.journalAck(e.id)
	dlq := q.name + DeadLetterSuffix
	if err := b.Declare(dlq); err != nil {
		return err
	}
	return b.PublishTraced(dlq, e.body, e.tc)
}

// nack returns a message to the front of the queue for redelivery. The
// entry keeps its original trace context, and the requeue itself is
// recorded as a "requeue" span so redeliveries are visible in the trace.
func (q *queue) nack(c *Consumer, tag uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := c.unacked[tag]
	if !ok {
		return ErrUnknownTag
	}
	delete(c.unacked, tag)
	e.redelivered = true
	q.requeueLocked(e, "nack")
	q.dispatchLocked()
	return nil
}

// requeueLocked returns e to the front of its priority level's ready list,
// re-stamping its transit clock and recording a "requeue" span under the
// message's original trace. Requeues bypass the depth limit: the message
// was already accepted once and must not be lost. Caller holds q.mu.
func (q *queue) requeueLocked(e *entry, reason string) {
	if e.tc.Valid() {
		now := time.Now()
		q.b.Tracer.Record(e.tc, "requeue", now, now, "queue", q.name, "reason", reason)
	}
	e.enqueued = time.Now()
	if e.interactive {
		q.readyHigh.PushFront(e)
	} else {
		q.ready.PushFront(e)
	}
	q.requeued.Inc()
	q.depthGauge.Set(int64(q.depthLocked()))
}

// removeConsumer detaches c, requeueing everything it had not acked.
func (q *queue) removeConsumer(c *Consumer) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for i, cc := range q.consumers {
		if cc == c {
			q.consumers = append(q.consumers[:i], q.consumers[i+1:]...)
			break
		}
	}
	for tag, e := range c.unacked {
		delete(c.unacked, tag)
		e.redelivered = true
		q.requeueLocked(e, "disconnect")
	}
	close(c.ch)
	q.dispatchLocked()
}

func (q *queue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	for _, c := range q.consumers {
		c.closed = true
		close(c.ch)
	}
	q.consumers = nil
	q.mu.Unlock()
}

// Consumer receives deliveries from one queue. Messages must be Acked,
// Nacked, or Rejected; Close requeues anything outstanding.
type Consumer struct {
	q        *queue
	b        *Broker
	ch       chan Message
	prefetch int
	// guarded by q.mu
	unacked map[uint64]*entry
	closed  bool
}

// Messages returns the delivery channel. It is closed when the consumer or
// queue closes.
func (c *Consumer) Messages() <-chan Message { return c.ch }

// Ack acknowledges a delivered message by tag.
func (c *Consumer) Ack(tag uint64) error { return c.q.ack(c, tag) }

// AckBatch acknowledges many tags in one queue-lock round trip. Stale tags
// are skipped (reported in the error) after valid ones are acked.
func (c *Consumer) AckBatch(tags []uint64) error { return c.q.ackBatch(c, tags) }

// Nack rejects a delivered message; it is requeued at the front and will be
// flagged Redelivered.
func (c *Consumer) Nack(tag uint64) error { return c.q.nack(c, tag) }

// Reject dead-letters a delivered message to "<queue>.dlq" instead of
// redelivering it (for poison messages the consumer cannot process).
func (c *Consumer) Reject(tag uint64) error {
	if c.b == nil {
		return ErrClosed
	}
	return c.q.reject(c.b, c, tag)
}

// Close detaches the consumer and requeues unacknowledged messages.
func (c *Consumer) Close() { c.q.removeConsumer(c) }
