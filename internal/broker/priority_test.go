package broker

import (
	"errors"
	"testing"
)

func TestPriorityDispatchOrder(t *testing.T) {
	b := New()
	defer b.Close()
	if err := b.Declare("q"); err != nil {
		t.Fatal(err)
	}
	// Publish batch-priority first, interactive second; with no consumer
	// attached both buffer, then the interactive messages must dispatch
	// first.
	if err := b.PublishBatch("q", [][]byte{[]byte("b1"), []byte("b2")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.PublishBatchInteractive("q", [][]byte{[]byte("i1"), []byte("i2")}, nil); err != nil {
		t.Fatal(err)
	}
	c, err := b.Consume("q", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := []string{"i1", "i2", "b1", "b2"}
	for _, w := range want {
		m := <-c.Messages()
		if string(m.Body) != w {
			t.Fatalf("got %q, want %q", m.Body, w)
		}
		c.Ack(m.Tag)
	}
}

func TestQueueLimitWatermarkShedding(t *testing.T) {
	b := New()
	defer b.Close()
	b.Declare("q")
	if err := b.SetQueueLimit("q", 10); err != nil {
		t.Fatal(err)
	}
	// Batch traffic fills to the 80% watermark (8 of 10), then sheds.
	for i := 0; i < 8; i++ {
		if err := b.Publish("q", []byte("x")); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if err := b.Publish("q", []byte("x")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("batch over watermark: err = %v, want ErrQueueFull", err)
	}
	// Interactive traffic still flows up to the hard limit.
	for i := 0; i < 2; i++ {
		if err := b.PublishBatchInteractive("q", [][]byte{[]byte("i")}, nil); err != nil {
			t.Fatalf("interactive publish %d: %v", i, err)
		}
	}
	if err := b.PublishBatchInteractive("q", [][]byte{[]byte("i")}, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("interactive over hard limit: err = %v, want ErrQueueFull", err)
	}
	if d, _ := b.Depth("q"); d != 10 {
		t.Fatalf("depth = %d, want 10", d)
	}
	// A batch publish of n > remaining watermark headroom sheds whole.
	if err := b.PublishBatch("q", [][]byte{[]byte("a"), []byte("b")}, nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("batch publish on full queue: err = %v", err)
	}
	// Draining reopens the queue.
	c, err := b.Consume("q", 10)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		m := <-c.Messages()
		c.Ack(m.Tag)
	}
	if err := b.Publish("q", []byte("y")); err != nil {
		t.Fatalf("publish after drain: %v", err)
	}
	// Removing the limit restores unbounded growth.
	if err := b.SetQueueLimit("q", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := b.Publish("q", []byte("z")); err != nil {
			t.Fatalf("unbounded publish: %v", err)
		}
	}
}

func TestRequeueBypassesLimitAndKeepsPriority(t *testing.T) {
	b := New()
	defer b.Close()
	b.Declare("q")
	c, err := b.Consume("q", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := b.PublishBatchInteractive("q", [][]byte{[]byte("i1")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("q", []byte("b1")); err != nil {
		t.Fatal(err)
	}
	<-c.Messages() // i1
	<-c.Messages() // b1
	// Clamp the queue shut, then disconnect with both unacked: the requeue
	// must succeed (no shed) and the interactive entry must redeliver first
	// to the next consumer.
	if err := b.SetQueueLimit("q", 1); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c2, err := b.Consume("q", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	r1 := <-c2.Messages()
	r2 := <-c2.Messages()
	if string(r1.Body) != "i1" || !r1.Redelivered {
		t.Fatalf("first redelivery = %q (redelivered=%v), want i1", r1.Body, r1.Redelivered)
	}
	if string(r2.Body) != "b1" {
		t.Fatalf("second redelivery = %q, want b1", r2.Body)
	}
}

func TestPrioritySurvivesSnapshotRestore(t *testing.T) {
	b := New()
	b.Declare("q")
	b.PublishBatch("q", [][]byte{[]byte("b1")}, nil)
	b.PublishBatchInteractive("q", [][]byte{[]byte("i1")}, nil)
	img, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b.Close()

	b2 := New()
	if err := b2.Restore(img); err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	c, err := b2.Consume("q", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	first := <-c.Messages()
	if string(first.Body) != "i1" {
		t.Fatalf("first after restore = %q, want i1", first.Body)
	}
}

func TestShedCounterAndDepthGauge(t *testing.T) {
	b := New()
	defer b.Close()
	b.Declare("q")
	b.SetQueueLimit("q", 2)
	b.Publish("q", []byte("x"))
	if err := b.Publish("q", []byte("x")); !errors.Is(err, ErrQueueFull) {
		// watermark of 2 is int(0.8*2)=1
		t.Fatalf("err = %v", err)
	}
	snap := b.Metrics.TakeSnapshot()
	if got := snap.Counters["shed.q"]; got != 1 {
		t.Errorf("shed.q = %d, want 1", got)
	}
	if got := snap.Gauges["depth.q"]; got != 1 {
		t.Errorf("depth.q = %d, want 1", got)
	}
}
