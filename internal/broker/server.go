package broker

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"globuscompute/internal/obs"
	"globuscompute/internal/protocol"
)

// Wire bodies for the framed-TCP broker protocol now live in
// internal/protocol (wire.go) so the binary hot-path codec can encode them
// structurally; the aliases keep the broker's handler code unchanged.

type declareBody = protocol.DeclareBody
type publishBody = protocol.PublishBody
type publishBatchBody = protocol.PublishBatchBody
type consumeBody = protocol.ConsumeBody
type ackBody = protocol.AckBody
type ackBatchBody = protocol.AckBatchBody
type deliveryBody = protocol.DeliveryBody
type deliveryItem = protocol.DeliveryItem
type deliveryBatchBody = protocol.DeliveryBatchBody
type errorBody = protocol.ErrorBody
type okBody = protocol.OKBody

// Server exposes a Broker over framed TCP so that endpoint agents and SDK
// result streams in other processes can reach it.
type Server struct {
	B  *Broker
	ln net.Listener

	// DisableBinary makes the server behave like one that predates the
	// binary hot-path codec: client Bin advertisements are ignored and every
	// reply stays JSON. Used by interop tests; production servers leave it
	// false.
	DisableBinary bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and serves until
// Close. It returns the server with the bound address available via Addr.
func Serve(b *Broker, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broker: listen: %w", err)
	}
	s := &Server{B: b, ln: ln, conns: make(map[net.Conn]struct{})}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and disconnects all clients.
func (s *Server) Close() {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// handle serves one client connection. A connection may hold at most one
// consumer per queue; closing the connection requeues unacked deliveries.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := protocol.NewFrameReader(conn)
	w := protocol.NewFrameWriter(conn)
	consumers := make(map[string]*Consumer)
	var wg sync.WaitGroup
	defer func() {
		for _, c := range consumers {
			c.Close()
		}
		wg.Wait()
	}()

	reply := func(id string, err error) {
		if err != nil {
			_ = w.Write(protocol.Envelope{Type: protocol.EnvError, ID: id, Bin: &errorBody{Message: err.Error()}})
			return
		}
		_ = w.Write(protocol.Envelope{Type: protocol.EnvOK, ID: id})
	}
	// negotiated tracks whether this connection's writes use the binary
	// codec. A client advertises Bin on declare/consume when it can decode
	// binary frames; the server (whose reader is always bilingual) confirms
	// with OKBody{Bin:true}, flips its writer, and the client flips its own
	// writer on seeing the confirmation. Old clients never advertise, old
	// servers (DisableBinary) never confirm — both sides stay on JSON.
	negotiated := false
	replyNegotiate := func(id string, advertise bool, err error) {
		if err != nil || !advertise || s.DisableBinary {
			reply(id, err)
			return
		}
		if !negotiated {
			negotiated = true
			w.EnableBinary()
			s.B.Metrics.Counter("codec_binary_conns").Inc()
		}
		_ = w.Write(protocol.Envelope{Type: protocol.EnvOK, ID: id, Bin: &protocol.OKBody{Bin: true}})
	}

	for {
		env, err := r.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				obs.Component("broker").Warn("connection read", "error", err)
			}
			return
		}
		switch env.Type {
		case protocol.EnvDeclare:
			var body declareBody
			if err := env.Decode(&body); err != nil {
				reply(env.ID, err)
				continue
			}
			replyNegotiate(env.ID, body.Bin, s.B.Declare(body.Queue))

		case protocol.EnvPublish:
			var body publishBody
			if err := env.Decode(&body); err != nil {
				reply(env.ID, err)
				continue
			}
			reply(env.ID, s.B.PublishTraced(body.Queue, body.Body, env.Trace))

		case protocol.EnvPublishBatch:
			var body publishBatchBody
			if err := env.Decode(&body); err != nil {
				reply(env.ID, err)
				continue
			}
			reply(env.ID, s.B.PublishBatch(body.Queue, body.Bodies, body.Traces))

		case protocol.EnvConsume:
			var body consumeBody
			if err := env.Decode(&body); err != nil {
				reply(env.ID, err)
				continue
			}
			if _, dup := consumers[body.Queue]; dup {
				reply(env.ID, fmt.Errorf("broker: already consuming %q on this connection", body.Queue))
				continue
			}
			c, err := s.B.Consume(body.Queue, body.Prefetch)
			if err != nil {
				reply(env.ID, err)
				continue
			}
			consumers[body.Queue] = c
			replyNegotiate(env.ID, body.Bin, nil)
			wg.Add(1)
			go s.deliveryPump(&wg, w, body, c)

		case protocol.EnvAckBatch:
			var body ackBatchBody
			if err := env.Decode(&body); err != nil {
				reply(env.ID, err)
				continue
			}
			c, ok := consumers[body.Queue]
			if !ok {
				reply(env.ID, fmt.Errorf("broker: not consuming %q", body.Queue))
				continue
			}
			reply(env.ID, c.AckBatch(body.Tags))

		case protocol.EnvAck, protocol.EnvNack:
			var body ackBody
			if err := env.Decode(&body); err != nil {
				reply(env.ID, err)
				continue
			}
			c, ok := consumers[body.Queue]
			if !ok {
				reply(env.ID, fmt.Errorf("broker: not consuming %q", body.Queue))
				continue
			}
			switch {
			case env.Type == protocol.EnvAck:
				reply(env.ID, c.Ack(body.Tag))
			case body.DeadLetter:
				reply(env.ID, c.Reject(body.Tag))
			default:
				reply(env.ID, c.Nack(body.Tag))
			}

		case protocol.EnvDrain:
			// Cancel an active consume on this connection.
			var body declareBody
			if err := env.Decode(&body); err != nil {
				reply(env.ID, err)
				continue
			}
			c, ok := consumers[body.Queue]
			if !ok {
				reply(env.ID, fmt.Errorf("broker: not consuming %q", body.Queue))
				continue
			}
			c.Close()
			delete(consumers, body.Queue)
			reply(env.ID, nil)

		case protocol.EnvShutdown:
			// Delete a queue broker-wide.
			var body declareBody
			if err := env.Decode(&body); err != nil {
				reply(env.ID, err)
				continue
			}
			delete(consumers, body.Queue) // local consumer (if any) is closed by the broker
			reply(env.ID, s.B.Delete(body.Queue))

		case protocol.EnvHeartbeat:
			reply(env.ID, nil)

		default:
			reply(env.ID, fmt.Errorf("broker: unknown request %q", env.Type))
		}
	}
}

// deliveryPump forwards a consumer's messages onto the connection. For
// batch-enabled consumers it coalesces whatever is already buffered (bounded
// by max_batch, optionally waiting out a flush window) into one
// delivery_batch frame; a lone message still goes out as a plain delivery,
// so the batched wire path degrades to the classic one at low load.
func (s *Server) deliveryPump(wg *sync.WaitGroup, w *protocol.FrameWriter, opts consumeBody, c *Consumer) {
	defer wg.Done()
	maxBatch := opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 64
	}
	window := time.Duration(opts.FlushWindowUS) * time.Microsecond
	for m := range c.Messages() {
		if !opts.Batch {
			e := protocol.Envelope{Type: protocol.EnvDelivery, Trace: m.Trace, Bin: &deliveryBody{
				Queue: opts.Queue, Tag: m.Tag, Body: m.Body, Redelivered: m.Redelivered,
			}}
			if err := w.Write(e); err != nil {
				c.Close()
				return
			}
			continue
		}
		items := []deliveryItem{{Tag: m.Tag, Body: m.Body, Redelivered: m.Redelivered, Trace: m.Trace}}
		items = drainDeliveries(c, items, maxBatch, window)
		var e protocol.Envelope
		if len(items) == 1 {
			e = protocol.Envelope{Type: protocol.EnvDelivery, Trace: m.Trace, Bin: &deliveryBody{
				Queue: opts.Queue, Tag: m.Tag, Body: m.Body, Redelivered: m.Redelivered,
			}}
		} else {
			e = protocol.Envelope{Type: protocol.EnvDeliveryBatch, Bin: &deliveryBatchBody{
				Queue: opts.Queue, Items: items,
			}}
		}
		if err := w.Write(e); err != nil {
			c.Close()
			return
		}
	}
}

// drainDeliveries appends already-buffered messages to items up to maxBatch,
// waiting at most window (0 = don't wait) for stragglers.
func drainDeliveries(c *Consumer, items []deliveryItem, maxBatch int, window time.Duration) []deliveryItem {
	var deadline <-chan time.Time
	for len(items) < maxBatch {
		select {
		case m, ok := <-c.Messages():
			if !ok {
				return items
			}
			items = append(items, deliveryItem{Tag: m.Tag, Body: m.Body, Redelivered: m.Redelivered, Trace: m.Trace})
		default:
			if window <= 0 {
				return items
			}
			if deadline == nil {
				t := time.NewTimer(window)
				defer t.Stop()
				deadline = t.C
			}
			select {
			case m, ok := <-c.Messages():
				if !ok {
					return items
				}
				items = append(items, deliveryItem{Tag: m.Tag, Body: m.Body, Redelivered: m.Redelivered, Trace: m.Trace})
			case <-deadline:
				return items
			}
		}
	}
	return items
}

// requestID generates connection-local correlation IDs for the client.
type requestID struct {
	mu sync.Mutex
	n  uint64
}

func (r *requestID) next() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	return strconv.FormatUint(r.n, 10)
}
