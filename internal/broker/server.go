package broker

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"sync"

	"globuscompute/internal/protocol"
)

// Wire bodies for the framed-TCP broker protocol. Byte slices marshal as
// base64 under encoding/json.

type declareBody struct {
	Queue string `json:"queue"`
}

type publishBody struct {
	Queue string `json:"queue"`
	Body  []byte `json:"body"`
}

type consumeBody struct {
	Queue    string `json:"queue"`
	Prefetch int    `json:"prefetch"`
}

type ackBody struct {
	Queue string `json:"queue"`
	Tag   uint64 `json:"tag"`
	// DeadLetter turns a nack into a reject (dead-letter) request.
	DeadLetter bool `json:"dead_letter,omitempty"`
}

type deliveryBody struct {
	Queue       string `json:"queue"`
	Tag         uint64 `json:"tag"`
	Body        []byte `json:"body"`
	Redelivered bool   `json:"redelivered,omitempty"`
}

type errorBody struct {
	Message string `json:"message"`
}

// Server exposes a Broker over framed TCP so that endpoint agents and SDK
// result streams in other processes can reach it.
type Server struct {
	B  *Broker
	ln net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and serves until
// Close. It returns the server with the bound address available via Addr.
func Serve(b *Broker, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broker: listen: %w", err)
	}
	s := &Server{B: b, ln: ln, conns: make(map[net.Conn]struct{})}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and disconnects all clients.
func (s *Server) Close() {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// handle serves one client connection. A connection may hold at most one
// consumer per queue; closing the connection requeues unacked deliveries.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := protocol.NewFrameReader(conn)
	w := protocol.NewFrameWriter(conn)
	consumers := make(map[string]*Consumer)
	var wg sync.WaitGroup
	defer func() {
		for _, c := range consumers {
			c.Close()
		}
		wg.Wait()
	}()

	reply := func(id string, err error) {
		if err != nil {
			_ = w.Write(protocol.MustEnvelope(protocol.EnvError, id, errorBody{Message: err.Error()}))
			return
		}
		_ = w.Write(protocol.MustEnvelope(protocol.EnvOK, id, nil))
	}

	for {
		env, err := r.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				log.Printf("broker: connection read: %v", err)
			}
			return
		}
		switch env.Type {
		case protocol.EnvDeclare:
			var body declareBody
			if err := env.Decode(&body); err != nil {
				reply(env.ID, err)
				continue
			}
			reply(env.ID, s.B.Declare(body.Queue))

		case protocol.EnvPublish:
			var body publishBody
			if err := env.Decode(&body); err != nil {
				reply(env.ID, err)
				continue
			}
			reply(env.ID, s.B.PublishTraced(body.Queue, body.Body, env.Trace))

		case protocol.EnvConsume:
			var body consumeBody
			if err := env.Decode(&body); err != nil {
				reply(env.ID, err)
				continue
			}
			if _, dup := consumers[body.Queue]; dup {
				reply(env.ID, fmt.Errorf("broker: already consuming %q on this connection", body.Queue))
				continue
			}
			c, err := s.B.Consume(body.Queue, body.Prefetch)
			if err != nil {
				reply(env.ID, err)
				continue
			}
			consumers[body.Queue] = c
			reply(env.ID, nil)
			wg.Add(1)
			go func(queue string, c *Consumer) {
				defer wg.Done()
				for m := range c.Messages() {
					e := protocol.MustEnvelope(protocol.EnvDelivery, "", deliveryBody{
						Queue: queue, Tag: m.Tag, Body: m.Body, Redelivered: m.Redelivered,
					})
					e.Trace = m.Trace
					if err := w.Write(e); err != nil {
						c.Close()
						return
					}
				}
			}(body.Queue, c)

		case protocol.EnvAck, protocol.EnvNack:
			var body ackBody
			if err := env.Decode(&body); err != nil {
				reply(env.ID, err)
				continue
			}
			c, ok := consumers[body.Queue]
			if !ok {
				reply(env.ID, fmt.Errorf("broker: not consuming %q", body.Queue))
				continue
			}
			switch {
			case env.Type == protocol.EnvAck:
				reply(env.ID, c.Ack(body.Tag))
			case body.DeadLetter:
				reply(env.ID, c.Reject(body.Tag))
			default:
				reply(env.ID, c.Nack(body.Tag))
			}

		case protocol.EnvDrain:
			// Cancel an active consume on this connection.
			var body declareBody
			if err := env.Decode(&body); err != nil {
				reply(env.ID, err)
				continue
			}
			c, ok := consumers[body.Queue]
			if !ok {
				reply(env.ID, fmt.Errorf("broker: not consuming %q", body.Queue))
				continue
			}
			c.Close()
			delete(consumers, body.Queue)
			reply(env.ID, nil)

		case protocol.EnvShutdown:
			// Delete a queue broker-wide.
			var body declareBody
			if err := env.Decode(&body); err != nil {
				reply(env.ID, err)
				continue
			}
			delete(consumers, body.Queue) // local consumer (if any) is closed by the broker
			reply(env.ID, s.B.Delete(body.Queue))

		case protocol.EnvHeartbeat:
			reply(env.ID, nil)

		default:
			reply(env.ID, fmt.Errorf("broker: unknown request %q", env.Type))
		}
	}
}

// requestID generates connection-local correlation IDs for the client.
type requestID struct {
	mu sync.Mutex
	n  uint64
}

func (r *requestID) next() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	return strconv.FormatUint(r.n, 10)
}
