package broker

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *Broker) {
	t.Helper()
	b := New()
	s, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		b.Close()
	})
	return s, b
}

func TestClientPublishConsume(t *testing.T) {
	s, _ := newTestServer(t)
	pub, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	if err := pub.Declare("tasks.ep1"); err != nil {
		t.Fatal(err)
	}
	rc, err := sub.Consume("tasks.ep1", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := pub.Publish("tasks.ep1", []byte(fmt.Sprintf("task-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		select {
		case m := <-rc.Messages():
			if string(m.Body) != fmt.Sprintf("task-%d", i) {
				t.Fatalf("message %d = %q", i, m.Body)
			}
			if err := rc.Ack(m.Tag); err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for message %d", i)
		}
	}
}

func TestClientPing(t *testing.T) {
	s, _ := newTestServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Errorf("ping = %v", err)
	}
}

func TestClientErrorsPropagate(t *testing.T) {
	s, _ := newTestServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Publish("no-such-queue", []byte("x")); err == nil {
		t.Error("publish to missing queue succeeded")
	}
	if _, err := c.Consume("no-such-queue", 1); err == nil {
		t.Error("consume of missing queue succeeded")
	}
}

func TestClientDuplicateConsume(t *testing.T) {
	s, _ := newTestServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Declare("q")
	if _, err := c.Consume("q", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Consume("q", 1); err == nil {
		t.Error("duplicate consume on one connection succeeded")
	}
}

func TestClientDisconnectRequeues(t *testing.T) {
	s, b := newTestServer(t)
	pub, _ := Dial(s.Addr())
	defer pub.Close()
	pub.Declare("q")
	pub.Publish("q", []byte("precious"))

	sub, _ := Dial(s.Addr())
	rc, err := sub.Consume("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	<-rc.Messages() // receive but never ack
	sub.Close()     // disconnect: server must requeue

	deadline := time.After(2 * time.Second)
	for {
		d, _ := b.Depth("q")
		if d == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("message not requeued after disconnect (depth=%d)", d)
		case <-time.After(10 * time.Millisecond):
		}
	}
	// A new consumer gets it, flagged redelivered.
	sub2, _ := Dial(s.Addr())
	defer sub2.Close()
	rc2, _ := sub2.Consume("q", 1)
	select {
	case m := <-rc2.Messages():
		if !m.Redelivered {
			t.Error("message not flagged redelivered")
		}
		rc2.Ack(m.Tag)
	case <-time.After(2 * time.Second):
		t.Fatal("requeued message never redelivered")
	}
}

func TestClientNack(t *testing.T) {
	s, _ := newTestServer(t)
	c, _ := Dial(s.Addr())
	defer c.Close()
	c.Declare("q")
	c.Publish("q", []byte("x"))
	rc, _ := c.Consume("q", 1)
	m := <-rc.Messages()
	if err := rc.Nack(m.Tag); err != nil {
		t.Fatal(err)
	}
	select {
	case m2 := <-rc.Messages():
		if !m2.Redelivered {
			t.Error("nacked message not flagged redelivered")
		}
		rc.Ack(m2.Tag)
	case <-time.After(2 * time.Second):
		t.Fatal("nacked message never redelivered")
	}
}

func TestClientCallsAfterClose(t *testing.T) {
	s, _ := newTestServer(t)
	c, _ := Dial(s.Addr())
	c.Close()
	time.Sleep(20 * time.Millisecond)
	if err := c.Declare("q"); err == nil {
		t.Error("declare after close succeeded")
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	b := New()
	s, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, _ := Dial(s.Addr())
	c.Declare("q")
	rc, _ := c.Consume("q", 1)
	s.Close()
	select {
	case _, ok := <-rc.Messages():
		if ok {
			t.Error("unexpected delivery after server close")
		}
	case <-time.After(2 * time.Second):
		t.Error("consumer channel not closed after server shutdown")
	}
	b.Close()
}

func TestConcurrentClientsThroughput(t *testing.T) {
	s, _ := newTestServer(t)
	pub, _ := Dial(s.Addr())
	defer pub.Close()
	pub.Declare("q")

	const producers, perProducer = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < perProducer; i++ {
				if err := c.Publish("q", []byte{byte(p), byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	sub, _ := Dial(s.Addr())
	defer sub.Close()
	rc, err := sub.Consume("q", 16)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	timeout := time.After(10 * time.Second)
	for got < producers*perProducer {
		select {
		case m := <-rc.Messages():
			rc.Ack(m.Tag)
			got++
		case <-timeout:
			t.Fatalf("received %d of %d", got, producers*perProducer)
		}
	}
	wg.Wait()
}
