package broker

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"globuscompute/internal/trace"
)

// roundTrip publishes n messages and consumes+acks them, failing on any
// mismatch. It exercises publish, delivery, ack, and trace propagation over
// whatever codec the connection negotiated.
func roundTrip(t *testing.T, pub, sub *Client, queue string, n int) {
	t.Helper()
	if err := pub.Declare(queue); err != nil {
		t.Fatal(err)
	}
	rc, err := sub.Consume(queue, 8)
	if err != nil {
		t.Fatal(err)
	}
	tc := &trace.Context{TraceID: trace.NewTraceID(), SpanID: trace.NewSpanID()}
	for i := 0; i < n; i++ {
		if err := pub.PublishTraced(queue, []byte(fmt.Sprintf("msg-%d", i)), tc); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case m := <-rc.Messages():
			if string(m.Body) != fmt.Sprintf("msg-%d", i) {
				t.Fatalf("message %d = %q", i, m.Body)
			}
			if m.Trace == nil || m.Trace.TraceID != tc.TraceID {
				t.Fatalf("message %d trace = %+v, want trace id %s", i, m.Trace, tc.TraceID)
			}
			if err := rc.Ack(m.Tag); err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for message %d", i)
		}
	}
}

func TestBinaryCodecNegotiated(t *testing.T) {
	s, b := newTestServer(t)
	pub, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	pub.EnableBinary()
	sub, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	sub.EnableBinary()

	roundTrip(t, pub, sub, "tasks.ep-bin", 10)
	if !pub.BinaryNegotiated() {
		t.Error("publisher did not negotiate binary")
	}
	// The subscriber negotiates on Consume.
	if !sub.BinaryNegotiated() {
		t.Error("subscriber did not negotiate binary")
	}
	if got := b.Metrics.Counter("codec_binary_conns").Value(); got < 2 {
		t.Errorf("codec_binary_conns = %d, want >= 2", got)
	}
}

func TestBinaryCodecWithBatching(t *testing.T) {
	s, _ := newTestServer(t)
	pub, err := DialBatched(s.Addr(), BatchConfig{MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	pub.EnableBinary()
	sub, err := DialBatched(s.Addr(), BatchConfig{MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	sub.EnableBinary()

	queue := "tasks.ep-binbatch"
	if err := pub.Declare(queue); err != nil {
		t.Fatal(err)
	}
	rc, err := sub.Consume(queue, 32)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	bodies := make([][]byte, n)
	for i := range bodies {
		bodies[i] = []byte(fmt.Sprintf("batch-%d", i))
	}
	if err := pub.PublishBatch(queue, bodies, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		select {
		case m := <-rc.Messages():
			if !bytes.Equal(m.Body, bodies[i]) {
				t.Fatalf("message %d = %q, want %q", i, m.Body, bodies[i])
			}
			if err := rc.Ack(m.Tag); err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for message %d", i)
		}
	}
	if !pub.BinaryNegotiated() || !sub.BinaryNegotiated() {
		t.Error("batched clients did not negotiate binary")
	}
}

// TestBinaryClientJSONOnlyServer pins the old-server interop path: a client
// that advertises the binary codec against a server that ignores the
// capability must stay fully functional on JSON.
func TestBinaryClientJSONOnlyServer(t *testing.T) {
	s, _ := newTestServer(t)
	s.DisableBinary = true
	pub, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	pub.EnableBinary()
	sub, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	sub.EnableBinary()

	roundTrip(t, pub, sub, "tasks.ep-oldsrv", 10)
	if pub.BinaryNegotiated() || sub.BinaryNegotiated() {
		t.Error("negotiated binary against a JSON-only server")
	}
}

// TestJSONClientBinaryServer pins the old-client interop path: a client that
// never advertises the codec keeps a pure-JSON connection against a
// binary-capable server.
func TestJSONClientBinaryServer(t *testing.T) {
	s, _ := newTestServer(t)
	pub, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	roundTrip(t, pub, sub, "tasks.ep-oldcli", 10)
	if pub.BinaryNegotiated() || sub.BinaryNegotiated() {
		t.Error("negotiated binary without advertising it")
	}
}

// TestReconnectKeepsNegotiatedCodec drops the connection under a
// ReconnectingConn whose Dial enables the binary codec, and verifies the
// replacement connection re-negotiates it and redelivers the unacked
// message.
func TestReconnectKeepsNegotiatedCodec(t *testing.T) {
	s, _ := newTestServer(t)
	var (
		lastClient *Client
	)
	rc, err := NewReconnecting(ReconnectConfig{
		Dial: func() (Conn, error) {
			c, err := Dial(s.Addr())
			if err != nil {
				return nil, err
			}
			c.EnableBinary()
			lastClient = c
			return c.AsConn(), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	queue := "tasks.ep-reconn"
	if err := rc.Declare(queue); err != nil {
		t.Fatal(err)
	}
	sub, err := rc.Subscribe(queue, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !lastClient.BinaryNegotiated() {
		t.Fatal("first connection did not negotiate binary")
	}

	if err := rc.Publish(queue, []byte("before-drop")); err != nil {
		t.Fatal(err)
	}
	var m Message
	select {
	case m = <-sub.Messages():
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery before drop")
	}
	if string(m.Body) != "before-drop" {
		t.Fatalf("body = %q", m.Body)
	}

	// Kill the connection without acking: the broker requeues, the
	// subscription resubscribes on a fresh (re-negotiated) connection, and
	// the message arrives again flagged Redelivered.
	first := lastClient
	first.Close()
	select {
	case m = <-sub.Messages():
	case <-time.After(5 * time.Second):
		t.Fatal("no redelivery after reconnect")
	}
	if string(m.Body) != "before-drop" || !m.Redelivered {
		t.Fatalf("redelivery = %q (redelivered=%v)", m.Body, m.Redelivered)
	}
	if err := sub.Ack(m.Tag); err != nil {
		t.Fatal(err)
	}
	if lastClient == first || !lastClient.BinaryNegotiated() {
		t.Error("reconnected client did not re-negotiate binary")
	}
	if err := rc.Publish(queue, []byte("after-drop")); err != nil {
		t.Fatal(err)
	}
	select {
	case m = <-sub.Messages():
		if string(m.Body) != "after-drop" {
			t.Fatalf("post-reconnect body = %q", m.Body)
		}
		_ = sub.Ack(m.Tag)
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery after reconnect")
	}
}
