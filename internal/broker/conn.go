package broker

import (
	"fmt"

	"globuscompute/internal/trace"
)

// Conn abstracts a broker connection so components (endpoint agents, the
// MEP, the SDK result stream) work identically against an in-process Broker
// or a TCP Client.
type Conn interface {
	Declare(queue string) error
	Publish(queue string, body []byte) error
	// PublishTraced is Publish carrying a trace context with the message
	// (on the envelope for TCP connections), so consumers can continue the
	// publisher's trace. A nil context is equivalent to Publish.
	PublishTraced(queue string, body []byte, tc *trace.Context) error
	Subscribe(queue string, prefetch int) (Subscription, error)
	// Delete removes a queue, dropping pending messages (used to clean up
	// per-executor group queues and deregistered endpoints).
	Delete(queue string) error
}

// Subscription is a cancellable consumer.
type Subscription interface {
	Messages() <-chan Message
	Ack(tag uint64) error
	Nack(tag uint64) error
	// Reject dead-letters a poison message to "<queue>.dlq".
	Reject(tag uint64) error
	// Cancel detaches the consumer; unacknowledged messages requeue.
	Cancel() error
}

// BatchPublisher is the optional Conn capability of publishing N messages
// to one queue in a single wire frame / lock round trip. All Conns in this
// package implement it; third-party wrappers (fault injectors) may not.
type BatchPublisher interface {
	PublishBatch(queue string, bodies [][]byte, traces []*trace.Context) error
}

// BatchAcker is the optional Subscription capability of acknowledging N
// tags at once.
type BatchAcker interface {
	AckBatch(tags []uint64) error
}

// PublishBatchOn publishes a batch through c's fast path when it has one,
// falling back to sequential PublishTraced otherwise (wrapped Conns).
func PublishBatchOn(c Conn, queue string, bodies [][]byte, traces []*trace.Context) error {
	if bp, ok := c.(BatchPublisher); ok {
		return bp.PublishBatch(queue, bodies, traces)
	}
	for i, body := range bodies {
		var tc *trace.Context
		if i < len(traces) {
			tc = traces[i]
		}
		if err := c.PublishTraced(queue, body, tc); err != nil {
			return err
		}
	}
	return nil
}

// AckBatchOn acknowledges tags through s's batch path when it has one,
// falling back to per-tag Acks (first error wins, remaining tags still
// acked — the broker requeues whatever stays unacknowledged).
func AckBatchOn(s Subscription, tags []uint64) error {
	if ba, ok := s.(BatchAcker); ok {
		return ba.AckBatch(tags)
	}
	var firstErr error
	for _, tag := range tags {
		if err := s.Ack(tag); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// localConn adapts *Broker to Conn.
type localConn struct{ b *Broker }

// LocalConn wraps an in-process broker as a Conn.
func LocalConn(b *Broker) Conn { return localConn{b} }

func (l localConn) Declare(queue string) error              { return l.b.Declare(queue) }
func (l localConn) Publish(queue string, body []byte) error { return l.b.Publish(queue, body) }
func (l localConn) Delete(queue string) error               { return l.b.Delete(queue) }

func (l localConn) PublishTraced(queue string, body []byte, tc *trace.Context) error {
	return l.b.PublishTraced(queue, body, tc)
}

func (l localConn) PublishBatch(queue string, bodies [][]byte, traces []*trace.Context) error {
	return l.b.PublishBatch(queue, bodies, traces)
}

func (l localConn) Subscribe(queue string, prefetch int) (Subscription, error) {
	c, err := l.b.Consume(queue, prefetch)
	if err != nil {
		return nil, err
	}
	return localSub{c}, nil
}

type localSub struct{ c *Consumer }

func (s localSub) Messages() <-chan Message     { return s.c.Messages() }
func (s localSub) Ack(tag uint64) error         { return s.c.Ack(tag) }
func (s localSub) AckBatch(tags []uint64) error { return s.c.AckBatch(tags) }
func (s localSub) Nack(tag uint64) error        { return s.c.Nack(tag) }
func (s localSub) Reject(tag uint64) error      { return s.c.Reject(tag) }
func (s localSub) Cancel() error                { s.c.Close(); return nil }

// remoteSub adapts *RemoteConsumer to Subscription.
type remoteSub struct{ rc *RemoteConsumer }

func (s remoteSub) Messages() <-chan Message     { return s.rc.Messages() }
func (s remoteSub) Ack(tag uint64) error         { return s.rc.Ack(tag) }
func (s remoteSub) AckBatch(tags []uint64) error { return s.rc.AckBatch(tags) }
func (s remoteSub) Nack(tag uint64) error        { return s.rc.Nack(tag) }
func (s remoteSub) Reject(tag uint64) error      { return s.rc.Reject(tag) }
func (s remoteSub) Cancel() error                { return s.rc.Cancel() }

// clientConn adapts *Client to Conn.
type clientConn struct{ c *Client }

// AsConn wraps a TCP client as a Conn.
func (c *Client) AsConn() Conn { return clientConn{c} }

func (cc clientConn) Declare(queue string) error              { return cc.c.Declare(queue) }
func (cc clientConn) Publish(queue string, body []byte) error { return cc.c.Publish(queue, body) }
func (cc clientConn) Delete(queue string) error               { return cc.c.DeleteQueue(queue) }

// Close tears down the underlying TCP client (ReconnectingConn discards
// stale connections through this).
func (cc clientConn) Close() error { return cc.c.Close() }

func (cc clientConn) PublishTraced(queue string, body []byte, tc *trace.Context) error {
	return cc.c.PublishTraced(queue, body, tc)
}

func (cc clientConn) PublishBatch(queue string, bodies [][]byte, traces []*trace.Context) error {
	return cc.c.PublishBatch(queue, bodies, traces)
}

func (cc clientConn) Subscribe(queue string, prefetch int) (Subscription, error) {
	rc, err := cc.c.Consume(queue, prefetch)
	if err != nil {
		return nil, fmt.Errorf("broker: subscribe %q: %w", queue, err)
	}
	return remoteSub{rc}, nil
}
