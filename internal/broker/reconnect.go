package broker

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"globuscompute/internal/metrics"
	"globuscompute/internal/trace"
)

// ReconnectConfig assembles a ReconnectingConn.
type ReconnectConfig struct {
	// Dial establishes a fresh broker connection (required). It is invoked
	// for the initial connection and again after every detected loss.
	Dial func() (Conn, error)
	// BaseDelay seeds the exponential backoff between reconnect attempts
	// (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// PublishAttempts bounds attempts per publish/declare/delete operation,
	// counting the first try (default 6). Subscription re-establishment is
	// not bounded: a consumer stream retries until Close.
	PublishAttempts int
	// Seed seeds the backoff jitter so fault-injection runs reproduce
	// (default 1).
	Seed int64
	// Metrics receives the reconnects / resubscribes / publish_retries
	// counters (default: a private registry).
	Metrics *metrics.Registry
}

// ReconnectingConn is a broker Conn that survives connection loss: failed
// operations redial with jittered exponential backoff, and subscriptions
// transparently resubscribe when their delivery stream drops. Unacked
// deliveries at the moment of loss are requeued by the broker and arrive
// again flagged Redelivered — the at-least-once contract the hosted service
// offers over AMQPS.
//
// After a reconnect, Ack/Nack tags from deliveries of the previous
// connection are stale; acknowledging them returns ErrUnknownTag and the
// message is simply redelivered. Consumers must therefore tolerate
// duplicate deliveries (all consumers in this codebase do).
type ReconnectingConn struct {
	cfg ReconnectConfig

	// dialMu serializes redials so concurrent failing operations trigger
	// one reconnect, not a thundering herd.
	dialMu sync.Mutex

	mu     sync.Mutex
	cur    Conn
	gen    int // bumped on every successful (re)dial
	rng    *rand.Rand
	subs   []*resilientSub
	closed bool
	done   chan struct{}

	Metrics *metrics.Registry
}

// NewReconnecting validates cfg and returns a connection that dials lazily
// on first use.
func NewReconnecting(cfg ReconnectConfig) (*ReconnectingConn, error) {
	if cfg.Dial == nil {
		return nil, errors.New("broker: reconnect dial function required")
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 25 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Second
	}
	if cfg.PublishAttempts <= 0 {
		cfg.PublishAttempts = 6
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return &ReconnectingConn{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		done:    make(chan struct{}),
		Metrics: cfg.Metrics,
	}, nil
}

// Close stops reconnecting and cancels every subscription. The underlying
// connection, if it exposes Close, is closed too.
func (r *ReconnectingConn) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.done)
	subs := append([]*resilientSub(nil), r.subs...)
	cur := r.cur
	r.mu.Unlock()
	for _, s := range subs {
		_ = s.Cancel()
	}
	if c, ok := cur.(interface{ Close() error }); ok {
		_ = c.Close()
	}
}

// backoff returns the jittered delay before retry attempt n (full jitter:
// uniform in [delay/2, delay]).
func (r *ReconnectingConn) backoff(attempt int) time.Duration {
	d := r.cfg.BaseDelay << uint(attempt)
	if d <= 0 || d > r.cfg.MaxDelay {
		d = r.cfg.MaxDelay
	}
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)/2 + 1))
	r.mu.Unlock()
	return d/2 + j
}

// conn returns a live connection, redialing when the caller's generation is
// the one that failed. attempts bounds dial tries (<=0 means retry until
// Close). It returns the connection and its generation.
func (r *ReconnectingConn) conn(staleGen, attempts int) (Conn, int, error) {
	r.dialMu.Lock()
	defer r.dialMu.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, 0, ErrClosed
	}
	if r.cur != nil && r.gen > staleGen {
		c, g := r.cur, r.gen
		r.mu.Unlock()
		return c, g, nil
	}
	stale := r.cur
	r.cur = nil
	redial := r.gen > 0
	r.mu.Unlock()
	if c, ok := stale.(interface{ Close() error }); ok {
		_ = c.Close() // release the dead connection's resources
	}

	var lastErr error
	for attempt := 0; attempts <= 0 || attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-r.done:
				return nil, 0, ErrClosed
			case <-time.After(r.backoff(attempt - 1)):
			}
		}
		c, err := r.cfg.Dial()
		if err != nil {
			lastErr = err
			continue
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			if cc, ok := c.(interface{ Close() error }); ok {
				_ = cc.Close()
			}
			return nil, 0, ErrClosed
		}
		r.cur = c
		r.gen++
		g := r.gen
		r.mu.Unlock()
		if redial {
			r.Metrics.Counter("reconnects").Inc()
		}
		return c, g, nil
	}
	return nil, 0, fmt.Errorf("broker: reconnect gave up after %d attempts: %w", attempts, lastErr)
}

// transientBrokerErr reports whether err looks like a lost or unusable
// connection (worth a reconnect) rather than a broker-level rejection such
// as an unknown queue.
func transientBrokerErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrClosed) || errors.Is(err, ErrConsumerClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	s := err.Error()
	for _, marker := range []string{
		"connection lost", "connection refused", "connection reset",
		"broken pipe", "timed out", "use of closed network connection",
		"EOF", "send ",
	} {
		if strings.Contains(s, marker) {
			return true
		}
	}
	return false
}

// op runs one idempotent broker operation with reconnect-and-retry.
func (r *ReconnectingConn) op(name string, f func(Conn) error) error {
	stale := -1
	var lastErr error
	for attempt := 0; attempt < r.cfg.PublishAttempts; attempt++ {
		if attempt > 0 {
			r.Metrics.Counter("publish_retries").Inc()
			select {
			case <-r.done:
				return ErrClosed
			case <-time.After(r.backoff(attempt - 1)):
			}
		}
		c, gen, err := r.conn(stale, 1)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return err
			}
			lastErr = err
			continue
		}
		if err := f(c); err != nil {
			if !transientBrokerErr(err) {
				return err
			}
			lastErr = err
			stale = gen
			continue
		}
		return nil
	}
	return fmt.Errorf("broker: %s gave up after %d attempts: %w", name, r.cfg.PublishAttempts, lastErr)
}

func (r *ReconnectingConn) Declare(queue string) error {
	return r.op("declare", func(c Conn) error { return c.Declare(queue) })
}

func (r *ReconnectingConn) Publish(queue string, body []byte) error {
	return r.op("publish", func(c Conn) error { return c.Publish(queue, body) })
}

func (r *ReconnectingConn) PublishTraced(queue string, body []byte, tc *trace.Context) error {
	return r.op("publish", func(c Conn) error { return c.PublishTraced(queue, body, tc) })
}

// PublishBatch publishes a batch with reconnect-and-retry. Like Publish it
// is at-least-once: a retry after a mid-batch connection loss may duplicate
// messages that already landed, which consumers must tolerate anyway.
func (r *ReconnectingConn) PublishBatch(queue string, bodies [][]byte, traces []*trace.Context) error {
	return r.op("publish_batch", func(c Conn) error { return PublishBatchOn(c, queue, bodies, traces) })
}

func (r *ReconnectingConn) Delete(queue string) error {
	return r.op("delete", func(c Conn) error { return c.Delete(queue) })
}

// Subscribe attaches a resilient consumer: when the delivery stream drops
// (connection loss, injected fault), the subscription reconnects and
// resubscribes with backoff until Cancel or Close, and deliveries continue
// on the same Messages channel.
func (r *ReconnectingConn) Subscribe(queue string, prefetch int) (Subscription, error) {
	if prefetch <= 0 {
		prefetch = 1
	}
	s := &resilientSub{
		r:        r,
		queue:    queue,
		prefetch: prefetch,
		out:      make(chan Message, prefetch+1),
		done:     make(chan struct{}),
	}
	if err := s.attach(-1, r.cfg.PublishAttempts); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	r.subs = append(r.subs, s)
	r.mu.Unlock()
	go s.pump()
	return s, nil
}

// resilientSub forwards deliveries from the current underlying subscription
// onto a stable channel, resubscribing across connection loss.
type resilientSub struct {
	r        *ReconnectingConn
	queue    string
	prefetch int
	out      chan Message

	mu        sync.Mutex
	inner     Subscription
	gen       int
	cancelled bool
	done      chan struct{}
}

// attach (re)subscribes on a live connection. attempts <= 0 retries until
// the conn closes.
func (s *resilientSub) attach(staleGen, attempts int) error {
	for tries := 0; ; tries++ {
		c, gen, err := s.r.conn(staleGen, attempts)
		if err != nil {
			return err
		}
		sub, err := c.Subscribe(s.queue, s.prefetch)
		if err != nil {
			if !transientBrokerErr(err) {
				return err
			}
			staleGen = gen
			if attempts > 0 && tries+1 >= attempts {
				return err
			}
			select {
			case <-s.done:
				return ErrConsumerClosed
			case <-time.After(s.r.backoff(tries)):
			}
			continue
		}
		s.mu.Lock()
		s.inner, s.gen = sub, gen
		s.mu.Unlock()
		return nil
	}
}

// pump forwards deliveries until the subscription is cancelled or the conn
// closes; on stream loss it resubscribes and keeps going.
func (s *resilientSub) pump() {
	for {
		s.mu.Lock()
		inner := s.inner
		gen := s.gen
		s.mu.Unlock()
		for m := range inner.Messages() {
			select {
			case s.out <- m:
			case <-s.done:
				close(s.out)
				return
			}
		}
		// Stream closed: deliberate cancel ends the subscription; anything
		// else is a lost connection worth resubscribing after.
		s.mu.Lock()
		cancelled := s.cancelled
		s.mu.Unlock()
		if cancelled {
			close(s.out)
			return
		}
		if err := s.attach(gen, 0); err != nil {
			close(s.out)
			return
		}
		s.r.Metrics.Counter("resubscribes").Inc()
	}
}

func (s *resilientSub) Messages() <-chan Message { return s.out }

func (s *resilientSub) current() Subscription {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner
}

// Ack acknowledges a delivery. After a reconnect, tags from the previous
// stream are stale: the ack fails and the broker redelivers the message.
func (s *resilientSub) Ack(tag uint64) error    { return s.current().Ack(tag) }
func (s *resilientSub) Nack(tag uint64) error   { return s.current().Nack(tag) }
func (s *resilientSub) Reject(tag uint64) error { return s.current().Reject(tag) }

// AckBatch acknowledges a batch of tags on the current stream. Stale tags
// (from before a reconnect) fail and their messages simply redeliver.
func (s *resilientSub) AckBatch(tags []uint64) error { return AckBatchOn(s.current(), tags) }

// Cancel permanently detaches the consumer; unacked deliveries requeue on
// the broker.
func (s *resilientSub) Cancel() error {
	s.mu.Lock()
	if s.cancelled {
		s.mu.Unlock()
		return nil
	}
	s.cancelled = true
	inner := s.inner
	close(s.done)
	s.mu.Unlock()
	if inner != nil {
		return inner.Cancel()
	}
	return nil
}
