package broker

import (
	"container/list"
	"encoding/json"
	"fmt"
)

// Durability: the hosted RabbitMQ deployment persists queue contents so
// buffered tasks and results survive service restarts ("ensuring they are
// not lost"). Snapshot/Restore provide the same guarantee for this broker:
// a snapshot captures every queue's ready messages plus
// delivered-but-unacknowledged messages (which a restart must redeliver).
// The durable package layers a write-ahead journal on top (see Journal),
// using the message IDs carried in the image to dedupe replayed publishes.

// QueueImage is one queue's persisted form.
type QueueImage struct {
	Name string `json:"name"`
	// Messages are ready bodies in order; unacked deliveries are folded in
	// at the front (they redeliver first, flagged Redelivered).
	Messages    [][]byte `json:"messages"`
	RedeliverTo int      `json:"redeliver_to"` // messages[:RedeliverTo] redeliver
	// IDs are the journal message IDs parallel to Messages (absent or zero
	// when the broker was not journaling).
	IDs []uint64 `json:"ids,omitempty"`
	// Interactive, when present, is parallel to Messages and marks which
	// entries belong to the interactive priority level (see
	// PublishBatchInteractive). Absent (older images) means all batch.
	Interactive []bool `json:"interactive,omitempty"`
}

// Image is the broker's full persisted form.
type Image struct {
	Queues []QueueImage `json:"queues"`
	// NextID seeds the journal message-ID counter after a restore so new
	// publishes never reuse a persisted ID.
	NextID uint64 `json:"next_id,omitempty"`
}

// SnapshotImage captures all queues: ready messages plus unacknowledged
// deliveries (folded to the front, as a broker restart would requeue them).
func (b *Broker) SnapshotImage() Image {
	var queues []*queue
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		for _, q := range sh.m {
			queues = append(queues, q)
		}
		sh.mu.RUnlock()
	}

	img := Image{NextID: b.nextMsgID.Load() + 1}
	for _, q := range queues {
		q.mu.Lock()
		qi := QueueImage{Name: q.name}
		for _, c := range q.consumers {
			for _, e := range c.unacked {
				qi.Messages = append(qi.Messages, append([]byte(nil), e.body...))
				qi.IDs = append(qi.IDs, e.id)
				qi.Interactive = append(qi.Interactive, e.interactive)
			}
		}
		qi.RedeliverTo = len(qi.Messages)
		// Ready levels in dispatch order: interactive first, then batch.
		for _, lst := range []*list.List{q.readyHigh, q.ready} {
			for el := lst.Front(); el != nil; el = el.Next() {
				e := el.Value.(*entry)
				qi.Messages = append(qi.Messages, append([]byte(nil), e.body...))
				qi.IDs = append(qi.IDs, e.id)
				qi.Interactive = append(qi.Interactive, e.interactive)
				if e.redelivered && qi.RedeliverTo < len(qi.Messages) {
					// preserve redelivery flags for already-requeued entries
					qi.RedeliverTo = len(qi.Messages)
				}
			}
		}
		q.mu.Unlock()
		img.Queues = append(img.Queues, qi)
	}
	return img
}

// Snapshot serializes SnapshotImage to JSON.
func (b *Broker) Snapshot() ([]byte, error) {
	return json.Marshal(b.SnapshotImage())
}

// RestoreImage recreates queues and their buffered messages from an Image.
// Existing queues with the same names receive the messages appended;
// typically it is called on a fresh broker. The journal ID counter resumes
// past every restored ID.
func (b *Broker) RestoreImage(img Image) error {
	maxID := img.NextID
	for _, qi := range img.Queues {
		if err := b.Declare(qi.Name); err != nil {
			return err
		}
		q, err := b.lookup(qi.Name)
		if err != nil {
			return err
		}
		q.mu.Lock()
		for i, body := range qi.Messages {
			e := &entry{body: append([]byte(nil), body...), redelivered: i < qi.RedeliverTo}
			if i < len(qi.IDs) {
				e.id = qi.IDs[i]
				if e.id >= maxID {
					maxID = e.id + 1
				}
			}
			if i < len(qi.Interactive) && qi.Interactive[i] {
				e.interactive = true
				q.readyHigh.PushBack(e)
			} else {
				q.ready.PushBack(e)
			}
		}
		q.dispatchLocked()
		q.mu.Unlock()
	}
	if cur := b.nextMsgID.Load(); maxID > cur+1 {
		b.nextMsgID.Store(maxID - 1)
	}
	return nil
}

// Restore is RestoreImage from a Snapshot's JSON form.
func (b *Broker) Restore(data []byte) error {
	var img Image
	if err := json.Unmarshal(data, &img); err != nil {
		return fmt.Errorf("broker: restore: %w", err)
	}
	return b.RestoreImage(img)
}
