package broker

import (
	"encoding/json"
	"fmt"
)

// Durability: the hosted RabbitMQ deployment persists queue contents so
// buffered tasks and results survive service restarts ("ensuring they are
// not lost"). Snapshot/Restore provide the same guarantee for this broker:
// a snapshot captures every queue's ready messages plus
// delivered-but-unacknowledged messages (which a restart must redeliver).

// queueImage is one queue's persisted form.
type queueImage struct {
	Name string `json:"name"`
	// Messages are ready bodies in order; unacked deliveries are folded in
	// at the front (they redeliver first, flagged Redelivered).
	Messages    [][]byte `json:"messages"`
	RedeliverTo int      `json:"redeliver_to"` // messages[:RedeliverTo] redeliver
}

type brokerImage struct {
	Queues []queueImage `json:"queues"`
}

// Snapshot serializes all queues: ready messages plus unacknowledged
// deliveries (folded to the front, as a broker restart would requeue them).
func (b *Broker) Snapshot() ([]byte, error) {
	var queues []*queue
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		for _, q := range sh.m {
			queues = append(queues, q)
		}
		sh.mu.RUnlock()
	}

	var img brokerImage
	for _, q := range queues {
		q.mu.Lock()
		qi := queueImage{Name: q.name}
		for _, c := range q.consumers {
			for _, e := range c.unacked {
				qi.Messages = append(qi.Messages, append([]byte(nil), e.body...))
			}
		}
		qi.RedeliverTo = len(qi.Messages)
		for el := q.ready.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			qi.Messages = append(qi.Messages, append([]byte(nil), e.body...))
			if e.redelivered && qi.RedeliverTo < len(qi.Messages) {
				// preserve redelivery flags for already-requeued entries
				qi.RedeliverTo = len(qi.Messages)
			}
		}
		q.mu.Unlock()
		img.Queues = append(img.Queues, qi)
	}
	return json.Marshal(img)
}

// Restore recreates queues and their buffered messages from a Snapshot
// image. Existing queues with the same names receive the messages appended;
// typically Restore is called on a fresh broker.
func (b *Broker) Restore(data []byte) error {
	var img brokerImage
	if err := json.Unmarshal(data, &img); err != nil {
		return fmt.Errorf("broker: restore: %w", err)
	}
	for _, qi := range img.Queues {
		if err := b.Declare(qi.Name); err != nil {
			return err
		}
		q, err := b.lookup(qi.Name)
		if err != nil {
			return err
		}
		q.mu.Lock()
		for i, body := range qi.Messages {
			e := &entry{body: append([]byte(nil), body...), redelivered: i < qi.RedeliverTo}
			q.ready.PushBack(e)
		}
		q.dispatchLocked()
		q.mu.Unlock()
	}
	return nil
}
