package broker

import (
	"fmt"
	"testing"
	"time"
)

func TestSnapshotRestoreReadyMessages(t *testing.T) {
	b := New()
	b.Declare("q1")
	b.Declare("q2")
	for i := 0; i < 5; i++ {
		b.Publish("q1", []byte(fmt.Sprintf("a-%d", i)))
	}
	b.Publish("q2", []byte("solo"))

	img, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b.Close()

	b2 := New()
	defer b2.Close()
	if err := b2.Restore(img); err != nil {
		t.Fatal(err)
	}
	if d, _ := b2.Depth("q1"); d != 5 {
		t.Errorf("q1 depth = %d", d)
	}
	c, _ := b2.Consume("q1", 8)
	for i := 0; i < 5; i++ {
		select {
		case m := <-c.Messages():
			if string(m.Body) != fmt.Sprintf("a-%d", i) {
				t.Errorf("message %d = %q (order lost)", i, m.Body)
			}
			c.Ack(m.Tag)
		case <-time.After(2 * time.Second):
			t.Fatal("restored message missing")
		}
	}
	c2, _ := b2.Consume("q2", 1)
	m := <-c2.Messages()
	if string(m.Body) != "solo" {
		t.Errorf("q2 body = %q", m.Body)
	}
	c2.Ack(m.Tag)
}

func TestSnapshotIncludesUnacked(t *testing.T) {
	b := New()
	b.Declare("q")
	b.Publish("q", []byte("inflight"))
	b.Publish("q", []byte("waiting"))
	c, _ := b.Consume("q", 1)
	<-c.Messages() // delivered, never acked: must survive the snapshot

	img, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	b2 := New()
	defer b2.Close()
	if err := b2.Restore(img); err != nil {
		t.Fatal(err)
	}
	if d, _ := b2.Depth("q"); d != 2 {
		t.Fatalf("depth = %d, want 2 (unacked folded in)", d)
	}
	c2, _ := b2.Consume("q", 2)
	first := <-c2.Messages()
	if string(first.Body) != "inflight" || !first.Redelivered {
		t.Errorf("first = %q redelivered=%v, want inflight/true", first.Body, first.Redelivered)
	}
	second := <-c2.Messages()
	if string(second.Body) != "waiting" {
		t.Errorf("second = %q", second.Body)
	}
	c2.Ack(first.Tag)
	c2.Ack(second.Tag)
}

func TestRestoreBadImage(t *testing.T) {
	b := New()
	defer b.Close()
	if err := b.Restore([]byte("{")); err == nil {
		t.Error("garbage image restored")
	}
}

func TestSnapshotEmptyBroker(t *testing.T) {
	b := New()
	defer b.Close()
	img, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b2 := New()
	defer b2.Close()
	if err := b2.Restore(img); err != nil {
		t.Fatal(err)
	}
	if len(b2.Queues()) != 0 {
		t.Errorf("queues = %v", b2.Queues())
	}
}
