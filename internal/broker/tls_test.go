package broker

import (
	"crypto/x509"
	"testing"
	"time"
)

func newTLSServer(t *testing.T) (*Server, *x509.CertPool, *Broker) {
	t.Helper()
	cert, pool, err := GenerateIdentity()
	if err != nil {
		t.Fatal(err)
	}
	b := New()
	s, err := ServeTLS(b, "127.0.0.1:0", cert)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		b.Close()
	})
	return s, pool, b
}

func TestTLSPublishConsume(t *testing.T) {
	s, pool, _ := newTLSServer(t)
	c, err := DialTLS(s.Addr(), pool)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Declare("secure"); err != nil {
		t.Fatal(err)
	}
	rc, err := c.Consume("secure", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("secure", []byte("encrypted payload")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-rc.Messages():
		if string(m.Body) != "encrypted payload" {
			t.Errorf("body = %q", m.Body)
		}
		rc.Ack(m.Tag)
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery over TLS")
	}
}

func TestTLSRejectsUntrustedClient(t *testing.T) {
	s, _, _ := newTLSServer(t)
	// A client with an empty trust pool must refuse the server cert.
	empty := x509.NewCertPool()
	if c, err := DialTLS(s.Addr(), empty); err == nil {
		// TLS handshakes may complete lazily; force a round trip.
		defer c.Close()
		if perr := c.Ping(); perr == nil {
			t.Error("untrusted server accepted")
		}
	}
}

func TestTLSRejectsPlaintextClient(t *testing.T) {
	s, _, _ := newTLSServer(t)
	c, err := Dial(s.Addr()) // plaintext dial against TLS listener
	if err == nil {
		defer c.Close()
		if perr := c.Ping(); perr == nil {
			t.Error("plaintext client worked against TLS broker")
		}
	}
}

func TestGenerateIdentityDistinct(t *testing.T) {
	c1, _, err := GenerateIdentity()
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := GenerateIdentity()
	if err != nil {
		t.Fatal(err)
	}
	if c1.Leaf.SerialNumber.Cmp(c2.Leaf.SerialNumber) == 0 {
		t.Error("identities share a serial number")
	}
	// Cross-trust fails: pool of cert1 does not verify cert2.
	_, pool1, _ := GenerateIdentity()
	b := New()
	defer b.Close()
	s, err := ServeTLS(b, "127.0.0.1:0", c2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if c, err := DialTLS(s.Addr(), pool1); err == nil {
		defer c.Close()
		if perr := c.Ping(); perr == nil {
			t.Error("cross-identity trust succeeded")
		}
	}
}
