package protocol

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewUUIDFormat(t *testing.T) {
	u := NewUUID()
	if !u.Valid() {
		t.Fatalf("NewUUID produced invalid UUID %q", u)
	}
	if len(u) != 36 {
		t.Fatalf("UUID length = %d, want 36", len(u))
	}
	// version nibble must be 4, variant high bits 10
	if u[14] != '4' {
		t.Errorf("version nibble = %c, want 4", u[14])
	}
	switch u[19] {
	case '8', '9', 'a', 'b':
	default:
		t.Errorf("variant nibble = %c, want one of 89ab", u[19])
	}
}

func TestNewUUIDUnique(t *testing.T) {
	seen := make(map[UUID]bool)
	for i := 0; i < 2000; i++ {
		u := NewUUID()
		if seen[u] {
			t.Fatalf("duplicate UUID %q after %d draws", u, i)
		}
		seen[u] = true
	}
}

func TestUUIDValidRejects(t *testing.T) {
	bad := []UUID{
		"",
		"not-a-uuid",
		"00000000000000000000000000000000",      // no dashes
		"00000000-0000-0000-0000-00000000000",   // short
		"00000000-0000-0000-0000-0000000000000", // long
		"G0000000-0000-4000-8000-000000000000",  // non-hex
		"00000000_0000-4000-8000-000000000000",  // wrong separator
	}
	for _, u := range bad {
		if u.Valid() {
			t.Errorf("Valid(%q) = true, want false", u)
		}
	}
	if good := UUID("01234567-89ab-4def-8123-456789abcdef"); !good.Valid() {
		t.Errorf("Valid(%q) = false, want true", good)
	}
}

func TestTaskStateTerminal(t *testing.T) {
	cases := map[TaskState]bool{
		StateReceived:  false,
		StateWaiting:   false,
		StateDelivered: false,
		StateRunning:   false,
		StateSuccess:   true,
		StateFailed:    true,
		StateCancelled: true,
	}
	for s, want := range cases {
		if got := s.Terminal(); got != want {
			t.Errorf("%s.Terminal() = %v, want %v", s, got, want)
		}
	}
}

func TestResourceSpecNormalizeDefaults(t *testing.T) {
	n, err := ResourceSpec{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := ResourceSpec{NumNodes: 1, RanksPerNode: 1, NumRanks: 1}
	if n != want {
		t.Errorf("Normalize zero = %+v, want %+v", n, want)
	}
}

func TestResourceSpecNormalizeDerivations(t *testing.T) {
	cases := []struct {
		in, want ResourceSpec
	}{
		{ResourceSpec{NumNodes: 2, RanksPerNode: 3}, ResourceSpec{2, 3, 6}},
		{ResourceSpec{NumNodes: 2, NumRanks: 8}, ResourceSpec{2, 4, 8}},
		{ResourceSpec{NumRanks: 4}, ResourceSpec{1, 4, 4}},
		{ResourceSpec{NumNodes: 3}, ResourceSpec{3, 1, 3}},
		{ResourceSpec{NumNodes: 2, RanksPerNode: 2, NumRanks: 4}, ResourceSpec{2, 2, 4}},
	}
	for _, c := range cases {
		got, err := c.in.Normalize()
		if err != nil {
			t.Errorf("Normalize(%+v) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Normalize(%+v) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestResourceSpecNormalizeErrors(t *testing.T) {
	bad := []ResourceSpec{
		{NumNodes: 2, NumRanks: 5},                  // 5 ranks on 2 nodes
		{NumNodes: 2, RanksPerNode: 2, NumRanks: 5}, // inconsistent
		{NumNodes: -1},
		{RanksPerNode: -2},
		{NumRanks: -3},
	}
	for _, r := range bad {
		if _, err := r.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) succeeded, want error", r)
		}
	}
}

func TestResourceSpecNormalizeProperty(t *testing.T) {
	// Any successfully normalized spec satisfies nodes*rpn == ranks with
	// all fields positive.
	f := func(nodes, rpn, ranks uint8) bool {
		in := ResourceSpec{NumNodes: int(nodes % 16), RanksPerNode: int(rpn % 16), NumRanks: int(ranks % 64)}
		out, err := in.Normalize()
		if err != nil {
			return true // rejection is fine; acceptance must be consistent
		}
		return out.NumNodes > 0 && out.RanksPerNode > 0 &&
			out.NumNodes*out.RanksPerNode == out.NumRanks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	spec := ShellSpec{Command: "echo hi", Sandbox: true, WalltimeSec: 1.5}
	b, err := EncodePayload(spec)
	if err != nil {
		t.Fatal(err)
	}
	var got ShellSpec
	if err := DecodePayload(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Command != spec.Command || got.Sandbox != spec.Sandbox || got.WalltimeSec != spec.WalltimeSec {
		t.Errorf("round trip = %+v, want %+v", got, spec)
	}
}

func TestDecodePayloadError(t *testing.T) {
	var s ShellSpec
	if err := DecodePayload([]byte("{nope"), &s); err == nil {
		t.Error("DecodePayload accepted invalid JSON")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	task := Task{ID: NewUUID(), Kind: KindShell, Payload: []byte(`{"command":"ls"}`)}
	env, err := NewEnvelope(EnvTask, string(task.ID), task)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(env); err != nil {
		t.Fatal(err)
	}
	r := NewFrameReader(&buf)
	got, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != EnvTask || got.ID != string(task.ID) {
		t.Errorf("envelope header = %q/%q, want %q/%q", got.Type, got.ID, EnvTask, task.ID)
	}
	var t2 Task
	if err := got.Decode(&t2); err != nil {
		t.Fatal(err)
	}
	if t2.ID != task.ID || t2.Kind != task.Kind {
		t.Errorf("decoded task = %+v, want %+v", t2, task)
	}
}

func TestFrameMultipleSequential(t *testing.T) {
	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	for i := 0; i < 100; i++ {
		if err := w.Write(MustEnvelope(EnvHeartbeat, "", map[string]int{"seq": i})); err != nil {
			t.Fatal(err)
		}
	}
	r := NewFrameReader(&buf)
	for i := 0; i < 100; i++ {
		env, err := r.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		var body map[string]int
		if err := env.Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body["seq"] != i {
			t.Fatalf("frame %d out of order: got seq %d", i, body["seq"])
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("after last frame Read err = %v, want io.EOF", err)
	}
}

func TestFrameReaderEOFOnEmpty(t *testing.T) {
	r := NewFrameReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("Read on empty stream = %v, want io.EOF", err)
	}
}

func TestFrameReaderTruncatedHeader(t *testing.T) {
	r := NewFrameReader(strings.NewReader("\x00\x00"))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("Read with truncated header = %v, want io.EOF", err)
	}
}

func TestFrameReaderTruncatedBody(t *testing.T) {
	// Header says 100 bytes, provide 3.
	r := NewFrameReader(strings.NewReader("\x00\x00\x00\x64abc"))
	if _, err := r.Read(); err == nil {
		t.Error("Read with truncated body succeeded")
	}
}

func TestFrameReaderOversized(t *testing.T) {
	var hdr bytes.Buffer
	hdr.Write([]byte{0xff, 0xff, 0xff, 0xff})
	r := NewFrameReader(&hdr)
	if _, err := r.Read(); err != ErrFrameTooLarge {
		t.Errorf("Read oversized = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameWriterOversized(t *testing.T) {
	w := NewFrameWriter(io.Discard)
	big := make([]byte, MaxFrame+1)
	env := Envelope{Type: EnvTask, Body: json.RawMessage(`"x"`)}
	env.Body, _ = json.Marshal(string(big))
	if err := w.Write(env); err != ErrFrameTooLarge {
		t.Errorf("Write oversized = %v, want ErrFrameTooLarge", err)
	}
}

func TestFramePropertyRoundTrip(t *testing.T) {
	f := func(typ string, id string, body []byte) bool {
		payload, _ := json.Marshal(string(body))
		env := Envelope{Type: typ, ID: id, Body: payload}
		var buf bytes.Buffer
		w := NewFrameWriter(&buf)
		if err := w.Write(env); err != nil {
			return false
		}
		got, err := NewFrameReader(&buf).Read()
		if err != nil {
			return false
		}
		return got.Type == typ && got.ID == id && bytes.Equal(got.Body, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
