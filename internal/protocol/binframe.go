package protocol

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"globuscompute/internal/trace"
)

// Binary hot-path codec. JSON envelopes spend most of the broker's CPU
// budget at saturation on marshal/unmarshal and base64-inflate every task
// body by 4/3. This codec replaces the envelope with a compact binary frame
// for the hot-path types (publish/publish_batch, delivery/delivery_batch,
// ack/ack_batch, nack, heartbeat, ok, error): varint lengths, raw bytes for
// message bodies, raw 16-byte UUIDs inside well-known queue names, and an
// inline trace context. Everything else (consume, declare, task, result,
// ...) still rides binary framing with its JSON body carried verbatim, so
// any envelope can cross either codec.
//
// The outer transport is unchanged: a 4-byte big-endian length prefix. A
// binary payload starts with the magic byte 0xBF, which can never begin a
// JSON envelope ('{'), so FrameReader decodes both formats without
// negotiation. Writing binary IS negotiated (see docs/PROTOCOL.md): a peer
// only enables binary writes after the other side has advertised it can
// read them, so JSON-only peers keep working unchanged.

// binMagic is the first payload byte of every binary frame. JSON frames
// always begin with '{' (0x7B).
const binMagic = 0xBF

// BinVersion is the binary frame format version. Readers reject frames with
// a version they do not know; bumping it is a wire change that old peers
// refuse loudly instead of misparsing.
const BinVersion = 1

// Envelope type codes. Code 0 means "type string follows" and covers every
// envelope type without a code (including ones added later).
const (
	binTypeOther byte = iota
	binTypePublish
	binTypePublishBatch
	binTypeDelivery
	binTypeDeliveryBatch
	binTypeAck
	binTypeAckBatch
	binTypeNack
	binTypeHeartbeat
	binTypeOK
	binTypeError
	binTypeConsume
	binTypeDeclare
	binTypeTask
	binTypeResult
	binTypeMax // sentinel
)

var binTypeCode = map[string]byte{
	EnvPublish:       binTypePublish,
	EnvPublishBatch:  binTypePublishBatch,
	EnvDelivery:      binTypeDelivery,
	EnvDeliveryBatch: binTypeDeliveryBatch,
	EnvAck:           binTypeAck,
	EnvAckBatch:      binTypeAckBatch,
	EnvNack:          binTypeNack,
	EnvHeartbeat:     binTypeHeartbeat,
	EnvOK:            binTypeOK,
	EnvError:         binTypeError,
	EnvConsume:       binTypeConsume,
	EnvDeclare:       binTypeDeclare,
	EnvTask:          binTypeTask,
	EnvResult:        binTypeResult,
}

var binTypeName = [binTypeMax]string{
	binTypePublish:       EnvPublish,
	binTypePublishBatch:  EnvPublishBatch,
	binTypeDelivery:      EnvDelivery,
	binTypeDeliveryBatch: EnvDeliveryBatch,
	binTypeAck:           EnvAck,
	binTypeAckBatch:      EnvAckBatch,
	binTypeNack:          EnvNack,
	binTypeHeartbeat:     EnvHeartbeat,
	binTypeOK:            EnvOK,
	binTypeError:         EnvError,
	binTypeConsume:       EnvConsume,
	binTypeDeclare:       EnvDeclare,
	binTypeTask:          EnvTask,
	binTypeResult:        EnvResult,
}

// Envelope flag bits.
const (
	binFlagID     = 1 << 0 // correlation ID present
	binFlagTrace  = 1 << 1 // trace context present
	binFlagStruct = 1 << 2 // structured body (per-typecode encoding)
	binFlagRaw    = 1 << 3 // raw JSON body carried verbatim
)

// Queue-name compression codes: hot queues are "<prefix><uuid>", so the
// prefix becomes one byte and the UUID its 16 raw bytes. Code 0 is an
// uncompressed string (DLQ names, test queues, anything else).
var queuePrefixes = []string{
	1: "tasks.",
	2: "results.group.", // must precede "results." (longest match wins)
	3: "results.",
	4: "mepcmd.",
}

// ErrBadFrame wraps every binary decode failure.
var ErrBadFrame = fmt.Errorf("protocol: bad binary frame")

// binWriter appends binary frame fields to a bytes.Buffer.
type binWriter struct {
	buf     *bytes.Buffer
	scratch [binary.MaxVarintLen64]byte
}

func (w *binWriter) u8(b byte) { w.buf.WriteByte(b) }

func (w *binWriter) uvarint(v uint64) {
	n := binary.PutUvarint(w.scratch[:], v)
	w.buf.Write(w.scratch[:n])
}

// str writes a length-prefixed string.
func (w *binWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

// bytesNil writes a length-prefixed byte slice that distinguishes nil from
// empty: 0 = nil, n+1 = n bytes. JSON makes the same distinction (null vs
// ""), and codec equivalence requires preserving it.
func (w *binWriter) bytesNil(b []byte) {
	if b == nil {
		w.uvarint(0)
		return
	}
	w.uvarint(uint64(len(b)) + 1)
	w.buf.Write(b)
}

// bool01 writes a bool as one byte.
func (w *binWriter) bool01(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// isLowerHex reports whether s is nonempty, even-length, strictly lowercase
// hex — the only strings whose hex round trip is byte-identical.
func isLowerHex(s string) bool {
	if len(s) == 0 || len(s)%2 != 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Trace-context flag bits.
const (
	tcFlagTraceRaw = 1 << 0 // trace ID hex-packed to raw bytes
	tcFlagSpan     = 1 << 1 // span ID present
	tcFlagSpanRaw  = 1 << 2 // span ID hex-packed
)

// traceCtx writes a trace context. Well-formed IDs (lowercase hex) pack to
// half size as raw bytes; anything else falls back to the verbatim string so
// decode always reproduces the input exactly.
func (w *binWriter) traceCtx(tc *trace.Context) {
	var flags byte
	tid, sid := string(tc.TraceID), string(tc.SpanID)
	if isLowerHex(tid) {
		flags |= tcFlagTraceRaw
	}
	if sid != "" {
		flags |= tcFlagSpan
		if isLowerHex(sid) {
			flags |= tcFlagSpanRaw
		}
	}
	w.u8(flags)
	if flags&tcFlagTraceRaw != 0 {
		raw, _ := hex.DecodeString(tid)
		w.uvarint(uint64(len(raw)))
		w.buf.Write(raw)
	} else {
		w.str(tid)
	}
	if flags&tcFlagSpan == 0 {
		return
	}
	if flags&tcFlagSpanRaw != 0 {
		raw, _ := hex.DecodeString(sid)
		w.uvarint(uint64(len(raw)))
		w.buf.Write(raw)
	} else {
		w.str(sid)
	}
}

// queue writes a queue name, compressing "<known-prefix><uuid>" to prefix
// code + 16 raw UUID bytes.
func (w *binWriter) queue(q string) {
	for code, prefix := range queuePrefixes {
		if code == 0 || prefix == "" {
			continue
		}
		rest, ok := cutPrefix(q, prefix)
		if !ok {
			continue
		}
		u := UUID(rest)
		if !u.Valid() {
			continue
		}
		raw, err := uuidBytes(u)
		if err != nil {
			continue
		}
		w.u8(byte(code))
		w.buf.Write(raw[:])
		return
	}
	w.u8(0)
	w.str(q)
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

// uuidBytes packs a canonical UUID string into its 16 raw bytes.
func uuidBytes(u UUID) ([16]byte, error) {
	var out [16]byte
	if !u.Valid() {
		return out, fmt.Errorf("protocol: invalid uuid %q", u)
	}
	s := string(u)
	hexStr := s[0:8] + s[9:13] + s[14:18] + s[19:23] + s[24:36]
	raw, err := hex.DecodeString(hexStr)
	if err != nil {
		return out, err
	}
	copy(out[:], raw)
	return out, nil
}

// uuidString unpacks 16 raw bytes into the canonical dashed form.
func uuidString(b []byte) UUID {
	s := hex.EncodeToString(b)
	return UUID(s[0:8] + "-" + s[8:12] + "-" + s[12:16] + "-" + s[16:20] + "-" + s[20:32])
}

// appendBinaryEnvelope renders env as a binary frame payload into buf
// (after the caller's 4-byte length placeholder). When env.Bin is a known
// wire body it is encoded structurally; otherwise the JSON body (or a JSON
// marshal of Bin) is carried verbatim under binary framing.
func appendBinaryEnvelope(buf *bytes.Buffer, env Envelope) error {
	w := &binWriter{buf: buf}
	w.u8(binMagic)
	w.u8(BinVersion)
	code := binTypeCode[env.Type]
	w.u8(code)
	if code == binTypeOther {
		w.str(env.Type)
	}

	structured := env.Bin != nil && binBodySupported(env.Bin)
	raw := env.Body
	if env.Bin != nil && !structured {
		b, err := marshalBody(env.Bin)
		if err != nil {
			return err
		}
		raw = b
	}
	var flags byte
	if env.ID != "" {
		flags |= binFlagID
	}
	if env.Trace != nil {
		flags |= binFlagTrace
	}
	if structured {
		flags |= binFlagStruct
	} else if raw != nil {
		flags |= binFlagRaw
	}
	w.u8(flags)
	if flags&binFlagID != 0 {
		w.str(env.ID)
	}
	if flags&binFlagTrace != 0 {
		w.traceCtx(env.Trace)
	}
	if structured {
		if err := encodeBinBody(w, env.Bin); err != nil {
			return err
		}
	} else if flags&binFlagRaw != 0 {
		w.uvarint(uint64(len(raw)))
		w.buf.Write(raw)
	}
	return nil
}

// EncodeBinaryEnvelope renders env as a standalone binary frame payload
// (no length prefix) — the exact bytes a binary-enabled FrameWriter puts
// after the 4-byte header. Used by tests and the codec fuzzers.
func EncodeBinaryEnvelope(env Envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := appendBinaryEnvelope(&buf, env); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// binBodySupported reports whether v has a structured binary encoding.
func binBodySupported(v any) bool {
	switch v.(type) {
	case *PublishBody, *PublishBatchBody, *DeliveryBody, *DeliveryBatchBody,
		*AckBody, *AckBatchBody, *ErrorBody, *OKBody:
		return true
	}
	return false
}

func encodeBinBody(w *binWriter, v any) error {
	switch b := v.(type) {
	case *PublishBody:
		w.queue(b.Queue)
		w.bytesNil(b.Body)
	case *PublishBatchBody:
		w.queue(b.Queue)
		if b.Bodies == nil {
			w.uvarint(0)
		} else {
			w.uvarint(uint64(len(b.Bodies)) + 1)
			for _, body := range b.Bodies {
				w.bytesNil(body)
			}
		}
		if b.Traces == nil {
			w.uvarint(0)
		} else {
			w.uvarint(uint64(len(b.Traces)) + 1)
			for _, tc := range b.Traces {
				if tc == nil {
					w.u8(0)
					continue
				}
				w.u8(1)
				w.traceCtx(tc)
			}
		}
	case *DeliveryBody:
		w.queue(b.Queue)
		w.uvarint(b.Tag)
		w.bytesNil(b.Body)
		w.bool01(b.Redelivered)
	case *DeliveryBatchBody:
		w.queue(b.Queue)
		if b.Items == nil {
			w.uvarint(0)
		} else {
			w.uvarint(uint64(len(b.Items)) + 1)
			for i := range b.Items {
				it := &b.Items[i]
				w.uvarint(it.Tag)
				w.bytesNil(it.Body)
				var f byte
				if it.Redelivered {
					f |= 1
				}
				if it.Trace != nil {
					f |= 2
				}
				w.u8(f)
				if it.Trace != nil {
					w.traceCtx(it.Trace)
				}
			}
		}
	case *AckBody:
		w.queue(b.Queue)
		w.uvarint(b.Tag)
		w.bool01(b.DeadLetter)
	case *AckBatchBody:
		w.queue(b.Queue)
		if b.Tags == nil {
			w.uvarint(0)
		} else {
			w.uvarint(uint64(len(b.Tags)) + 1)
			for _, t := range b.Tags {
				w.uvarint(t)
			}
		}
	case *ErrorBody:
		w.str(b.Message)
	case *OKBody:
		w.bool01(b.Bin)
	default:
		return fmt.Errorf("protocol: no binary encoding for %T", v)
	}
	return nil
}

// binReader is a bounds-checked cursor over one binary frame payload. Every
// read returns an error instead of panicking on truncated or corrupt input,
// and length fields are validated against the remaining payload before
// allocation so a hostile frame cannot force a huge allocation.
type binReader struct {
	p   []byte
	off int
}

func (r *binReader) rem() int { return len(r.p) - r.off }

func (r *binReader) u8() (byte, error) {
	if r.off >= len(r.p) {
		return 0, fmt.Errorf("%w: truncated at byte %d", ErrBadFrame, r.off)
	}
	b := r.p[r.off]
	r.off++
	return b, nil
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.p[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at byte %d", ErrBadFrame, r.off)
	}
	r.off += n
	return v, nil
}

// length reads a uvarint and validates it fits in the remaining payload.
func (r *binReader) length() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.rem()) {
		return 0, fmt.Errorf("%w: length %d exceeds remaining %d bytes", ErrBadFrame, v, r.rem())
	}
	return int(v), nil
}

// count reads an item count and validates it against the remaining payload
// (every item costs at least one byte).
func (r *binReader) count() (n int, present bool, err error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, false, err
	}
	if v == 0 {
		return 0, false, nil
	}
	v--
	if v > uint64(r.rem()) {
		return 0, false, fmt.Errorf("%w: count %d exceeds remaining %d bytes", ErrBadFrame, v, r.rem())
	}
	return int(v), true, nil
}

// take returns n raw payload bytes without copying; callers that retain the
// bytes must copy (the frame buffer is reused).
func (r *binReader) take(n int) ([]byte, error) {
	if n > r.rem() {
		return nil, fmt.Errorf("%w: truncated at byte %d (want %d more)", ErrBadFrame, r.off, n)
	}
	b := r.p[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *binReader) str() (string, error) {
	n, err := r.length()
	if err != nil {
		return "", err
	}
	b, err := r.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// bytesNil reads a nil-distinguishing byte slice, copying out of the frame
// buffer.
func (r *binReader) bytesNil() ([]byte, error) {
	n, present, err := r.count()
	if err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	if n == 0 {
		return []byte{}, nil // present-but-empty, distinct from nil
	}
	b, err := r.take(n)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

func (r *binReader) bool01() (bool, error) {
	b, err := r.u8()
	if err != nil {
		return false, err
	}
	return b != 0, nil
}

func (r *binReader) traceCtx() (*trace.Context, error) {
	flags, err := r.u8()
	if err != nil {
		return nil, err
	}
	tc := &trace.Context{}
	if flags&tcFlagTraceRaw != 0 {
		n, err := r.length()
		if err != nil {
			return nil, err
		}
		raw, err := r.take(n)
		if err != nil {
			return nil, err
		}
		tc.TraceID = trace.TraceID(hex.EncodeToString(raw))
	} else {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		tc.TraceID = trace.TraceID(s)
	}
	if flags&tcFlagSpan == 0 {
		return tc, nil
	}
	if flags&tcFlagSpanRaw != 0 {
		n, err := r.length()
		if err != nil {
			return nil, err
		}
		raw, err := r.take(n)
		if err != nil {
			return nil, err
		}
		tc.SpanID = trace.SpanID(hex.EncodeToString(raw))
	} else {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		tc.SpanID = trace.SpanID(s)
	}
	return tc, nil
}

func (r *binReader) queue() (string, error) {
	code, err := r.u8()
	if err != nil {
		return "", err
	}
	if code == 0 {
		return r.str()
	}
	if int(code) >= len(queuePrefixes) || queuePrefixes[code] == "" {
		return "", fmt.Errorf("%w: unknown queue prefix code %d", ErrBadFrame, code)
	}
	raw, err := r.take(16)
	if err != nil {
		return "", err
	}
	return queuePrefixes[code] + string(uuidString(raw)), nil
}

// DecodeBinaryEnvelope parses one binary frame payload (including the magic
// byte). Structured hot-path bodies land in Envelope.Bin; raw-carried JSON
// bodies land in Envelope.Body. It never panics on truncated or corrupt
// input and every error wraps ErrBadFrame.
func DecodeBinaryEnvelope(p []byte) (Envelope, error) {
	r := &binReader{p: p}
	magic, err := r.u8()
	if err != nil {
		return Envelope{}, err
	}
	if magic != binMagic {
		return Envelope{}, fmt.Errorf("%w: bad magic 0x%02x", ErrBadFrame, magic)
	}
	ver, err := r.u8()
	if err != nil {
		return Envelope{}, err
	}
	if ver != BinVersion {
		return Envelope{}, fmt.Errorf("%w: unsupported version %d (have %d)", ErrBadFrame, ver, BinVersion)
	}
	code, err := r.u8()
	if err != nil {
		return Envelope{}, err
	}
	var env Envelope
	switch {
	case code == binTypeOther:
		t, err := r.str()
		if err != nil {
			return Envelope{}, err
		}
		env.Type = t
	case int(code) < len(binTypeName) && binTypeName[code] != "":
		env.Type = binTypeName[code]
	default:
		return Envelope{}, fmt.Errorf("%w: unknown type code %d", ErrBadFrame, code)
	}
	flags, err := r.u8()
	if err != nil {
		return Envelope{}, err
	}
	if flags&binFlagID != 0 {
		id, err := r.str()
		if err != nil {
			return Envelope{}, err
		}
		env.ID = id
	}
	if flags&binFlagTrace != 0 {
		tc, err := r.traceCtx()
		if err != nil {
			return Envelope{}, err
		}
		env.Trace = tc
	}
	switch {
	case flags&binFlagStruct != 0:
		bin, err := decodeBinBody(r, code)
		if err != nil {
			return Envelope{}, err
		}
		env.Bin = bin
	case flags&binFlagRaw != 0:
		n, err := r.length()
		if err != nil {
			return Envelope{}, err
		}
		raw, err := r.take(n)
		if err != nil {
			return Envelope{}, err
		}
		env.Body = append([]byte(nil), raw...)
	}
	if r.rem() != 0 {
		return Envelope{}, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, r.rem())
	}
	return env, nil
}

func decodeBinBody(r *binReader, code byte) (any, error) {
	switch code {
	case binTypePublish:
		b := &PublishBody{}
		var err error
		if b.Queue, err = r.queue(); err != nil {
			return nil, err
		}
		if b.Body, err = r.bytesNil(); err != nil {
			return nil, err
		}
		return b, nil
	case binTypePublishBatch:
		b := &PublishBatchBody{}
		var err error
		if b.Queue, err = r.queue(); err != nil {
			return nil, err
		}
		n, present, err := r.count()
		if err != nil {
			return nil, err
		}
		if present {
			b.Bodies = make([][]byte, n)
			for i := range b.Bodies {
				if b.Bodies[i], err = r.bytesNil(); err != nil {
					return nil, err
				}
			}
		}
		n, present, err = r.count()
		if err != nil {
			return nil, err
		}
		if present {
			b.Traces = make([]*trace.Context, n)
			for i := range b.Traces {
				has, err := r.bool01()
				if err != nil {
					return nil, err
				}
				if !has {
					continue
				}
				if b.Traces[i], err = r.traceCtx(); err != nil {
					return nil, err
				}
			}
		}
		return b, nil
	case binTypeDelivery:
		b := &DeliveryBody{}
		var err error
		if b.Queue, err = r.queue(); err != nil {
			return nil, err
		}
		if b.Tag, err = r.uvarint(); err != nil {
			return nil, err
		}
		if b.Body, err = r.bytesNil(); err != nil {
			return nil, err
		}
		if b.Redelivered, err = r.bool01(); err != nil {
			return nil, err
		}
		return b, nil
	case binTypeDeliveryBatch:
		b := &DeliveryBatchBody{}
		var err error
		if b.Queue, err = r.queue(); err != nil {
			return nil, err
		}
		n, present, err := r.count()
		if err != nil {
			return nil, err
		}
		if present {
			b.Items = make([]DeliveryItem, n)
			for i := range b.Items {
				it := &b.Items[i]
				if it.Tag, err = r.uvarint(); err != nil {
					return nil, err
				}
				if it.Body, err = r.bytesNil(); err != nil {
					return nil, err
				}
				f, err := r.u8()
				if err != nil {
					return nil, err
				}
				it.Redelivered = f&1 != 0
				if f&2 != 0 {
					if it.Trace, err = r.traceCtx(); err != nil {
						return nil, err
					}
				}
			}
		}
		return b, nil
	case binTypeAck, binTypeNack:
		b := &AckBody{}
		var err error
		if b.Queue, err = r.queue(); err != nil {
			return nil, err
		}
		if b.Tag, err = r.uvarint(); err != nil {
			return nil, err
		}
		if b.DeadLetter, err = r.bool01(); err != nil {
			return nil, err
		}
		return b, nil
	case binTypeAckBatch:
		b := &AckBatchBody{}
		var err error
		if b.Queue, err = r.queue(); err != nil {
			return nil, err
		}
		n, present, err := r.count()
		if err != nil {
			return nil, err
		}
		if present {
			b.Tags = make([]uint64, n)
			for i := range b.Tags {
				if b.Tags[i], err = r.uvarint(); err != nil {
					return nil, err
				}
			}
		}
		return b, nil
	case binTypeError:
		b := &ErrorBody{}
		var err error
		if b.Message, err = r.str(); err != nil {
			return nil, err
		}
		return b, nil
	case binTypeOK:
		b := &OKBody{}
		var err error
		if b.Bin, err = r.bool01(); err != nil {
			return nil, err
		}
		return b, nil
	default:
		return nil, fmt.Errorf("%w: type code %d has no structured body", ErrBadFrame, code)
	}
}
