package protocol

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"testing"
)

// benchEnvelope is a representative hot-path frame: a 512-byte task body
// plus correlation ID, about what a publish envelope carries.
func benchEnvelope() Envelope {
	task := Task{ID: NewUUID(), Kind: KindPython, Payload: bytes.Repeat([]byte("p"), 512)}
	return MustEnvelope(EnvPublish, "17", task)
}

// BenchmarkFrameWrite measures the pooled encode path (run with -benchmem;
// the point of the sync.Pool is the allocs/op column). Before buffer reuse
// the writer allocated a fresh marshal slice per envelope (see
// BenchmarkFrameWriteUnpooled for that baseline).
func BenchmarkFrameWrite(b *testing.B) {
	env := benchEnvelope()
	w := NewFrameWriter(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameWriteUnpooled reproduces the pre-PR3 writer (json.Marshal
// into a new slice per envelope) so `-benchmem` shows the drop side by side.
func BenchmarkFrameWriteUnpooled(b *testing.B) {
	env := benchEnvelope()
	bw := bufio.NewWriter(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := json.Marshal(env)
		if err != nil {
			b.Fatal(err)
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
		bw.Write(hdr[:])
		bw.Write(p)
		bw.Flush()
	}
}

// BenchmarkFrameWriteAll measures the batched flush: 32 envelopes, one
// syscall-equivalent flush.
func BenchmarkFrameWriteAll(b *testing.B) {
	envs := make([]Envelope, 32)
	for i := range envs {
		envs[i] = benchEnvelope()
	}
	w := NewFrameWriter(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteAll(envs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBinEnvelope is the binary-codec equivalent of benchEnvelope: the
// same 512-byte task body as a structured publish envelope.
func benchBinEnvelope() Envelope {
	task := Task{ID: NewUUID(), Kind: KindPython, Payload: bytes.Repeat([]byte("p"), 512)}
	body, err := json.Marshal(task)
	if err != nil {
		panic(err)
	}
	return Envelope{Type: EnvPublish, ID: "17",
		Bin: &PublishBody{Queue: "tasks." + string(NewUUID()), Body: body}}
}

// BenchmarkFrameWriteBinBodyJSON measures the JSON writer fed a structured
// Bin body: the body marshals through the second pooled scratch buffer, so
// allocs/op stays flat against the premarshaled path above.
func BenchmarkFrameWriteBinBodyJSON(b *testing.B) {
	env := benchBinEnvelope()
	w := NewFrameWriter(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameWriteBinary measures the binary codec's encode path: no
// JSON marshal, no base64, varint lengths into the pooled frame buffer.
func BenchmarkFrameWriteBinary(b *testing.B) {
	env := benchBinEnvelope()
	w := NewFrameWriter(io.Discard)
	w.EnableBinary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameReadBinary measures the binary decode path against
// BenchmarkFrameRead's JSON unmarshal.
func BenchmarkFrameReadBinary(b *testing.B) {
	var raw bytes.Buffer
	w := NewFrameWriter(&raw)
	w.EnableBinary()
	if err := w.Write(benchBinEnvelope()); err != nil {
		b.Fatal(err)
	}
	frame := raw.Bytes()
	rd := bytes.NewReader(frame)
	r := NewFrameReader(rd)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		if _, err := r.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameRead measures the reusable-read-buffer decode path.
func BenchmarkFrameRead(b *testing.B) {
	var raw bytes.Buffer
	w := NewFrameWriter(&raw)
	if err := w.Write(benchEnvelope()); err != nil {
		b.Fatal(err)
	}
	frame := raw.Bytes()
	rd := bytes.NewReader(frame)
	r := NewFrameReader(rd)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		if _, err := r.Read(); err != nil {
			b.Fatal(err)
		}
	}
}
