package protocol

import (
	"bytes"
	"testing"
)

// FuzzFrameReader hardens the wire framing against malformed input: no
// crash, no unbounded allocation, errors surfaced cleanly.
func FuzzFrameReader(f *testing.F) {
	// Seed with a valid frame, truncations, and junk.
	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	w.Write(MustEnvelope(EnvTask, "id", map[string]string{"k": "v"}))
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, '{', '}', '!', '!'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("\x00\x00\x00\x02{}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewFrameReader(bytes.NewReader(data))
		for i := 0; i < 8; i++ {
			if _, err := r.Read(); err != nil {
				return
			}
		}
	})
}

// FuzzDecodePayload ensures arbitrary payload bytes never panic the
// decoders.
func FuzzDecodePayload(f *testing.F) {
	f.Add([]byte(`{"command":"ls"}`))
	f.Add([]byte(`{`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var shell ShellSpec
		_ = DecodePayload(data, &shell)
		var py PythonSpec
		_ = DecodePayload(data, &py)
	})
}

// FuzzUUIDValid checks Valid never panics and accepts only 36-byte
// canonical forms.
func FuzzUUIDValid(f *testing.F) {
	f.Add(string(NewUUID()))
	f.Add("")
	f.Add("zzzzzzzz-zzzz-zzzz-zzzz-zzzzzzzzzzzz")
	f.Fuzz(func(t *testing.T, s string) {
		if UUID(s).Valid() && len(s) != 36 {
			t.Fatalf("Valid accepted %d-byte string %q", len(s), s)
		}
	})
}
