package protocol

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"unicode/utf8"

	"globuscompute/internal/trace"
)

// FuzzFrameReader hardens the wire framing against malformed input: no
// crash, no unbounded allocation, errors surfaced cleanly.
func FuzzFrameReader(f *testing.F) {
	// Seed with a valid frame, truncations, and junk.
	var buf bytes.Buffer
	w := NewFrameWriter(&buf)
	w.Write(MustEnvelope(EnvTask, "id", map[string]string{"k": "v"}))
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, '{', '}', '!', '!'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("\x00\x00\x00\x02{}"))
	// Binary frames: a valid one (length prefix + payload), a bare magic
	// byte, and a corrupt version.
	if p, err := EncodeBinaryEnvelope(Envelope{Type: EnvAck, Bin: &AckBody{Queue: "q", Tag: 7}}); err == nil {
		framed := append([]byte{0, 0, 0, byte(len(p))}, p...)
		f.Add(framed)
	}
	f.Add([]byte{0, 0, 0, 1, binMagic})
	f.Add([]byte{0, 0, 0, 3, binMagic, 0xEE, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewFrameReader(bytes.NewReader(data))
		for i := 0; i < 8; i++ {
			if _, err := r.Read(); err != nil {
				return
			}
		}
	})
}

// FuzzDecodePayload ensures arbitrary payload bytes never panic the
// decoders.
func FuzzDecodePayload(f *testing.F) {
	f.Add([]byte(`{"command":"ls"}`))
	f.Add([]byte(`{`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var shell ShellSpec
		_ = DecodePayload(data, &shell)
		var py PythonSpec
		_ = DecodePayload(data, &py)
	})
}

// FuzzCodecEquivalence checks the two wire encodings agree: an envelope
// pushed through the binary codec decodes to exactly the value the JSON
// codec produces for the same envelope — including nil-vs-empty bodies,
// queue-name compression, and trace contexts that are not well-formed hex.
func FuzzCodecEquivalence(f *testing.F) {
	f.Add(byte(0), "tasks.queue", uint64(0), []byte(`payload`), false, "17", "abcdef", "0123")
	f.Add(byte(0), "tasks."+string(NewUUID()), uint64(9), []byte{}, true, "", "", "")
	f.Add(byte(1), "results.group."+string(NewUUID()), uint64(1<<40), []byte("x"), false, "id", "NOT-HEX", "odd")
	f.Add(byte(2), "results."+string(NewUUID()), uint64(3), []byte(nil), true, "a", "ab", "")
	f.Add(byte(3), "mepcmd."+string(NewUUID()), uint64(1), []byte("body"), false, "", "ffff", "ee")
	f.Add(byte(4), "dlq.tasks.x", uint64(2), []byte("b"), true, "z", "", "")
	f.Add(byte(5), "q", uint64(0), []byte(nil), false, "", "", "")
	f.Add(byte(6), "boom", uint64(0), []byte(nil), false, "e", "", "")
	f.Add(byte(7), "", uint64(0), []byte(nil), true, "ok", "", "")
	f.Add(byte(8), "", uint64(0), []byte("heartbeat"), false, "", "", "")
	f.Fuzz(func(t *testing.T, kind byte, queue string, tag uint64, body []byte, flag bool, id, traceID, spanID string) {
		// JSON replaces invalid UTF-8 in strings with U+FFFD, so equivalence
		// is only promised for valid strings (bodies are []byte and exempt).
		for _, s := range []string{queue, id, traceID, spanID} {
			if !utf8.ValidString(s) {
				return
			}
		}
		env := Envelope{ID: id}
		if traceID != "" || spanID != "" {
			env.Trace = &trace.Context{TraceID: trace.TraceID(traceID), SpanID: trace.SpanID(spanID)}
		}
		switch kind % 9 {
		case 0:
			env.Type = EnvPublish
			env.Bin = &PublishBody{Queue: queue, Body: body}
		case 1:
			env.Type = EnvPublishBatch
			env.Bin = &PublishBatchBody{Queue: queue, Bodies: [][]byte{body, nil, {}},
				Traces: []*trace.Context{nil, env.Trace, nil}}
		case 2:
			env.Type = EnvDelivery
			env.Bin = &DeliveryBody{Queue: queue, Tag: tag, Body: body, Redelivered: flag}
		case 3:
			env.Type = EnvDeliveryBatch
			env.Bin = &DeliveryBatchBody{Queue: queue,
				Items: []DeliveryItem{{Tag: tag, Body: body, Redelivered: flag, Trace: env.Trace}, {Tag: tag + 1}}}
		case 4:
			env.Type = EnvAck
			env.Bin = &AckBody{Queue: queue, Tag: tag, DeadLetter: flag}
		case 5:
			env.Type = EnvAckBatch
			env.Bin = &AckBatchBody{Queue: queue, Tags: []uint64{tag, tag + 1}}
		case 6:
			env.Type = EnvError
			env.Bin = &ErrorBody{Message: queue}
		case 7:
			env.Type = EnvOK
			env.Bin = &OKBody{Bin: flag}
		case 8:
			// Generic path: any envelope type, JSON body carried verbatim
			// under binary framing.
			env.Type = EnvHeartbeat
			b, err := json.Marshal(string(body))
			if err != nil {
				t.Fatal(err)
			}
			env.Body = b
		}

		// The JSON codec's view of the envelope.
		norm, err := env.Normalize()
		if err != nil {
			t.Fatalf("normalize: %v", err)
		}
		jb, err := json.Marshal(norm)
		if err != nil {
			t.Fatalf("json encode: %v", err)
		}
		var viaJSON Envelope
		if err := json.Unmarshal(jb, &viaJSON); err != nil {
			t.Fatalf("json decode: %v", err)
		}

		// The binary codec's view of the same envelope.
		bp, err := EncodeBinaryEnvelope(env)
		if err != nil {
			t.Fatalf("binary encode: %v", err)
		}
		dec, err := DecodeBinaryEnvelope(bp)
		if err != nil {
			t.Fatalf("binary decode of own encoding: %v", err)
		}
		viaBin, err := dec.Normalize()
		if err != nil {
			t.Fatalf("normalize decoded: %v", err)
		}

		if !reflect.DeepEqual(viaJSON, viaBin) {
			t.Fatalf("codecs disagree:\n json: %#v\n  bin: %#v", viaJSON, viaBin)
		}
	})
}

// FuzzBinaryDecode hardens DecodeBinaryEnvelope against truncated and
// corrupt frames: never a panic, every failure wraps ErrBadFrame, and
// anything that does decode re-encodes cleanly.
func FuzzBinaryDecode(f *testing.F) {
	seeds := []Envelope{
		{Type: EnvPublish, ID: "1", Bin: &PublishBody{Queue: "tasks." + string(NewUUID()), Body: []byte("task")}},
		{Type: EnvDeliveryBatch, Bin: &DeliveryBatchBody{Queue: "q", Items: []DeliveryItem{{Tag: 1, Body: []byte("x")}}}},
		{Type: EnvAckBatch, Bin: &AckBatchBody{Queue: "q", Tags: []uint64{1, 2, 3}}},
		{Type: EnvHeartbeat, Body: []byte(`{"at":1}`),
			Trace: &trace.Context{TraceID: trace.NewTraceID(), SpanID: trace.NewSpanID()}},
	}
	for _, env := range seeds {
		p, err := EncodeBinaryEnvelope(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
		f.Add(p[:len(p)/2]) // truncation
	}
	f.Add([]byte{binMagic})
	f.Add([]byte{binMagic, BinVersion, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeBinaryEnvelope(data)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decode error does not wrap ErrBadFrame: %v", err)
			}
			return
		}
		if _, err := EncodeBinaryEnvelope(env); err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
	})
}

// FuzzUUIDValid checks Valid never panics and accepts only 36-byte
// canonical forms.
func FuzzUUIDValid(f *testing.F) {
	f.Add(string(NewUUID()))
	f.Add("")
	f.Add("zzzzzzzz-zzzz-zzzz-zzzz-zzzzzzzzzzzz")
	f.Fuzz(func(t *testing.T, s string) {
		if UUID(s).Valid() && len(s) != 36 {
			t.Fatalf("Valid accepted %d-byte string %q", len(s), s)
		}
	})
}
