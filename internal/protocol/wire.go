package protocol

import (
	"globuscompute/internal/trace"
)

// Wire bodies for the framed broker protocol. They live in protocol (not
// broker) because the binary hot-path codec in binframe.go needs structured
// knowledge of each body to encode it compactly; the broker aliases them so
// its handler code reads unchanged. Byte slices marshal as base64 under
// encoding/json; the binary codec carries them raw.

// DeclareBody declares or deletes a queue, and cancels consumers (drain).
type DeclareBody struct {
	Queue string `json:"queue"`
	// Bin, on a declare request, advertises that the sender can decode
	// binary hot-path frames (see docs/PROTOCOL.md "Binary encoding"). Old
	// servers ignore the field; old clients never set it.
	Bin bool `json:"bin,omitempty"`
}

// PublishBody appends one message to a queue.
type PublishBody struct {
	Queue string `json:"queue"`
	Body  []byte `json:"body"`
}

// PublishBatchBody carries N messages for one queue in a single frame.
// Traces, when present, is parallel to Bodies (nil entries = untraced).
type PublishBatchBody struct {
	Queue  string           `json:"queue"`
	Bodies [][]byte         `json:"bodies"`
	Traces []*trace.Context `json:"traces,omitempty"`
}

// ConsumeBody begins consuming a queue.
type ConsumeBody struct {
	Queue    string `json:"queue"`
	Prefetch int    `json:"prefetch"`
	// Batch opts this consumer into delivery_batch frames. Old servers
	// ignore the field and keep sending plain deliveries; old clients never
	// set it, so they keep receiving plain deliveries from new servers.
	Batch bool `json:"batch,omitempty"`
	// MaxBatch bounds deliveries per delivery_batch frame (default 64).
	MaxBatch int `json:"max_batch,omitempty"`
	// FlushWindowUS, when > 0, lets the server wait up to this many
	// microseconds for more deliveries before flushing a partial batch.
	FlushWindowUS int64 `json:"flush_window_us,omitempty"`
	// Bin advertises that the sender can decode binary hot-path frames.
	Bin bool `json:"bin,omitempty"`
}

// AckBody acknowledges or rejects one delivery.
type AckBody struct {
	Queue string `json:"queue"`
	Tag   uint64 `json:"tag"`
	// DeadLetter turns a nack into a reject (dead-letter) request.
	DeadLetter bool `json:"dead_letter,omitempty"`
}

// AckBatchBody acknowledges N tags on one queue in a single frame.
type AckBatchBody struct {
	Queue string   `json:"queue"`
	Tags  []uint64 `json:"tags"`
}

// DeliveryBody is one delivered message.
type DeliveryBody struct {
	Queue       string `json:"queue"`
	Tag         uint64 `json:"tag"`
	Body        []byte `json:"body"`
	Redelivered bool   `json:"redelivered,omitempty"`
}

// DeliveryItem is one delivery inside a delivery_batch frame.
type DeliveryItem struct {
	Tag         uint64         `json:"tag"`
	Body        []byte         `json:"body"`
	Redelivered bool           `json:"redelivered,omitempty"`
	Trace       *trace.Context `json:"trace,omitempty"`
}

// DeliveryBatchBody carries N deliveries for one queue in a single frame.
type DeliveryBatchBody struct {
	Queue string         `json:"queue"`
	Items []DeliveryItem `json:"items"`
}

// ErrorBody reports a protocol-level error.
type ErrorBody struct {
	Message string `json:"message"`
}

// OKBody is the reply to a successful request. It is empty except on
// negotiation replies, where Bin confirms the server will both read and
// write binary hot-path frames on this connection.
type OKBody struct {
	Bin bool `json:"bin,omitempty"`
}
