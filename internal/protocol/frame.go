package protocol

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"globuscompute/internal/trace"
)

// Envelope is the unit of transmission on every framed connection: a type
// tag, an optional correlation ID, an optional trace context, and a JSON
// body.
type Envelope struct {
	Type string `json:"type"`
	ID   string `json:"id,omitempty"`
	// Trace propagates distributed-trace context across the connection
	// (publish -> delivery, task -> result). Absent on untraced traffic;
	// receivers must treat a missing field as "no trace" (the pre-trace
	// wire format is decodable unchanged).
	Trace *trace.Context  `json:"trace,omitempty"`
	Body  json.RawMessage `json:"body,omitempty"`
	// Bin, when non-nil, is the pre-parsed body (a *PublishBody,
	// *DeliveryBatchBody, ...). Writers encode it directly — structurally on
	// a binary connection, marshalled into Body on a JSON one — and binary
	// reads land hot-path bodies here so Decode can copy without a JSON
	// round trip. Call sites that set Bin are codec-agnostic.
	Bin any `json:"-"`
}

// Envelope type tags used across the system.
const (
	EnvTask      = "task"      // broker -> endpoint, interchange -> manager
	EnvResult    = "result"    // worker -> ... -> broker
	EnvAck       = "ack"       // consumer acknowledgement
	EnvNack      = "nack"      // consumer rejection (requeue)
	EnvHeartbeat = "heartbeat" // liveness
	EnvRegister  = "register"  // manager registration with interchange
	EnvCapacity  = "capacity"  // manager advertises free worker slots
	EnvConsume   = "consume"   // broker client: begin consuming a queue
	EnvPublish   = "publish"   // broker client: publish to a queue
	EnvDeclare   = "declare"   // broker client: declare a queue
	EnvDelivery  = "delivery"  // broker -> consumer: a delivered message
	EnvError     = "error"     // protocol-level error report
	EnvOK        = "ok"        // generic success reply
	EnvDrain     = "drain"     // manager: stop accepting, finish inflight
	EnvShutdown  = "shutdown"  // orderly termination

	// Multi-message envelopes amortize the per-frame round trip on the task
	// hot path. Peers that predate them simply never send them; a plain
	// publish/delivery/ack remains valid and is decoded identically.
	EnvPublishBatch  = "publish_batch"  // broker client: publish N messages to one queue
	EnvDeliveryBatch = "delivery_batch" // broker -> consumer: N deliveries in one frame
	EnvAckBatch      = "ack_batch"      // consumer: acknowledge N tags in one frame
)

// MaxFrame bounds a single frame; larger frames indicate corruption or a
// payload that should have gone through the object store.
const MaxFrame = 64 << 20

// ErrFrameTooLarge is returned when an encoded or received frame exceeds
// MaxFrame.
var ErrFrameTooLarge = fmt.Errorf("protocol: frame exceeds %d bytes", MaxFrame)

// NewEnvelope builds an envelope, JSON-encoding body. A nil body yields an
// empty envelope body.
func NewEnvelope(typ, id string, body any) (Envelope, error) {
	env := Envelope{Type: typ, ID: id}
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return env, fmt.Errorf("protocol: marshal envelope body: %w", err)
		}
		env.Body = b
	}
	return env, nil
}

// MustEnvelope is NewEnvelope for bodies that cannot fail to marshal.
func MustEnvelope(typ, id string, body any) Envelope {
	env, err := NewEnvelope(typ, id, body)
	if err != nil {
		panic(err)
	}
	return env
}

// Decode unmarshals the envelope body into v. When the envelope carries a
// pre-parsed Bin body of the same type (a binary read, or a same-process
// handoff), the body is copied without touching JSON at all.
func (e Envelope) Decode(v any) error {
	if e.Bin != nil {
		if copyBinBody(e.Bin, v) {
			return nil
		}
		b, err := marshalBody(e.Bin)
		if err != nil {
			return fmt.Errorf("protocol: decode %s envelope: %w", e.Type, err)
		}
		e.Body = b
	}
	if err := json.Unmarshal(e.Body, v); err != nil {
		return fmt.Errorf("protocol: decode %s envelope: %w", e.Type, err)
	}
	return nil
}

// copyBinBody copies a pre-parsed body into a destination of the same
// concrete type. Returns false on any type mismatch so Decode can fall back
// to the JSON route.
func copyBinBody(src, dst any) bool {
	switch s := src.(type) {
	case *PublishBody:
		if d, ok := dst.(*PublishBody); ok {
			*d = *s
			return true
		}
	case *PublishBatchBody:
		if d, ok := dst.(*PublishBatchBody); ok {
			*d = *s
			return true
		}
	case *DeliveryBody:
		if d, ok := dst.(*DeliveryBody); ok {
			*d = *s
			return true
		}
	case *DeliveryBatchBody:
		if d, ok := dst.(*DeliveryBatchBody); ok {
			*d = *s
			return true
		}
	case *AckBody:
		if d, ok := dst.(*AckBody); ok {
			*d = *s
			return true
		}
	case *AckBatchBody:
		if d, ok := dst.(*AckBatchBody); ok {
			*d = *s
			return true
		}
	case *ConsumeBody:
		if d, ok := dst.(*ConsumeBody); ok {
			*d = *s
			return true
		}
	case *DeclareBody:
		if d, ok := dst.(*DeclareBody); ok {
			*d = *s
			return true
		}
	case *ErrorBody:
		if d, ok := dst.(*ErrorBody); ok {
			*d = *s
			return true
		}
	case *OKBody:
		if d, ok := dst.(*OKBody); ok {
			*d = *s
			return true
		}
	}
	return false
}

// marshalBody JSON-encodes a pre-parsed body.
func marshalBody(v any) (json.RawMessage, error) {
	return json.Marshal(v)
}

// Normalize returns the envelope with Bin materialized into Body, so
// envelopes decoded from either codec compare equal.
func (e Envelope) Normalize() (Envelope, error) {
	if e.Bin == nil {
		return e, nil
	}
	b, err := marshalBody(e.Bin)
	if err != nil {
		return e, err
	}
	e.Body = b
	e.Bin = nil
	return e, nil
}

// encodeBufPool recycles the per-frame encode buffers across every
// FrameWriter in the process, so steady-state encoding allocates nothing
// beyond what encoding/json needs internally. Buffers that grew past 1 MiB
// are dropped rather than pooled to keep a single huge payload from pinning
// memory.
var encodeBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

const pooledBufLimit = 1 << 20

// FrameWriter writes length-prefixed envelopes — JSON by default, the
// binary hot-path codec once EnableBinary is called (after negotiation). It
// is safe for concurrent use: the engine multiplexes many logical streams
// over one manager connection.
type FrameWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	bin atomic.Bool
}

// NewFrameWriter wraps w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriter(w)}
}

// EnableBinary switches subsequent writes to the binary codec. Call only
// after the peer has advertised (or confirmed) that it decodes binary
// frames; readers are always bilingual, so flipping mid-stream is safe.
func (fw *FrameWriter) EnableBinary() { fw.bin.Store(true) }

// BinaryEnabled reports whether writes use the binary codec.
func (fw *FrameWriter) BinaryEnabled() bool { return fw.bin.Load() }

// encodeFrame renders env (header + payload) into a pooled buffer. The
// caller must return the buffer with putEncodeBuf.
func encodeFrame(env Envelope, bin bool) (*bytes.Buffer, error) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if bin {
		if err := appendBinaryEnvelope(buf, env); err != nil {
			putEncodeBuf(buf)
			return nil, err
		}
		n := buf.Len() - 4
		if n > MaxFrame {
			putEncodeBuf(buf)
			return nil, ErrFrameTooLarge
		}
		binary.BigEndian.PutUint32(buf.Bytes()[:4], uint32(n))
		return buf, nil
	}
	// JSON path: a pre-parsed Bin body is marshalled into Body through a
	// second pooled scratch buffer, so setting Bin at call sites costs no
	// more than the old json.Marshal-into-NewEnvelope pattern (and the
	// scratch is reused across frames).
	var bodyBuf *bytes.Buffer
	if env.Bin != nil && env.Body == nil {
		bodyBuf = encodeBufPool.Get().(*bytes.Buffer)
		bodyBuf.Reset()
		if err := json.NewEncoder(bodyBuf).Encode(env.Bin); err != nil {
			putEncodeBuf(bodyBuf)
			putEncodeBuf(buf)
			return nil, fmt.Errorf("protocol: marshal envelope body: %w", err)
		}
		b := bodyBuf.Bytes()
		env.Body = b[:len(b)-1] // drop Encode's trailing newline
	}
	enc := json.NewEncoder(buf)
	err := enc.Encode(env)
	if bodyBuf != nil {
		putEncodeBuf(bodyBuf)
	}
	if err != nil {
		putEncodeBuf(buf)
		return nil, fmt.Errorf("protocol: marshal frame: %w", err)
	}
	// Encoder.Encode appends a newline; it is not part of the frame.
	b := buf.Bytes()
	n := buf.Len() - 4 - 1
	if n > MaxFrame {
		putEncodeBuf(buf)
		return nil, ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	buf.Truncate(4 + n)
	return buf, nil
}

func putEncodeBuf(buf *bytes.Buffer) {
	if buf.Cap() <= pooledBufLimit {
		encodeBufPool.Put(buf)
	}
}

// Write encodes env as a 4-byte big-endian length followed by JSON, and
// flushes. Encoding happens outside the writer lock (in a pooled buffer) so
// concurrent writers only serialize on the actual socket write.
func (fw *FrameWriter) Write(env Envelope) error {
	buf, err := encodeFrame(env, fw.bin.Load())
	if err != nil {
		return err
	}
	defer putEncodeBuf(buf)
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if _, err := fw.w.Write(buf.Bytes()); err != nil {
		return err
	}
	return fw.w.Flush()
}

// WriteAll encodes every envelope and flushes once, so a burst of frames
// costs one syscall instead of len(envs).
func (fw *FrameWriter) WriteAll(envs []Envelope) error {
	if len(envs) == 0 {
		return nil
	}
	bufs := make([]*bytes.Buffer, 0, len(envs))
	defer func() {
		for _, b := range bufs {
			putEncodeBuf(b)
		}
	}()
	bin := fw.bin.Load()
	for _, env := range envs {
		buf, err := encodeFrame(env, bin)
		if err != nil {
			return err
		}
		bufs = append(bufs, buf)
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	for _, buf := range bufs {
		if _, err := fw.w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return fw.w.Flush()
}

// FrameReader reads length-prefixed JSON envelopes. Not safe for concurrent
// use; each connection has a single reader goroutine.
type FrameReader struct {
	r *bufio.Reader
	// buf is reused across Reads. Safe because json.Unmarshal copies every
	// byte it retains (json.RawMessage included) out of the input.
	buf []byte
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// Read returns the next envelope. io.EOF is returned unwrapped at a clean
// stream end.
func (fr *FrameReader) Read() (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Envelope{}, io.EOF
		}
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Envelope{}, ErrFrameTooLarge
	}
	if uint32(cap(fr.buf)) < n {
		fr.buf = make([]byte, n)
	}
	buf := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		return Envelope{}, fmt.Errorf("protocol: short frame: %w", err)
	}
	var env Envelope
	if n > 0 && buf[0] == binMagic {
		// Binary frame: readers need no negotiation — 0xBF can never begin
		// a JSON envelope. DecodeBinaryEnvelope copies everything it
		// retains out of the reused buffer.
		var err error
		if env, err = DecodeBinaryEnvelope(buf); err != nil {
			if n > pooledBufLimit {
				fr.buf = nil
			}
			return Envelope{}, err
		}
	} else if err := json.Unmarshal(buf, &env); err != nil {
		return Envelope{}, fmt.Errorf("protocol: bad frame: %w", err)
	}
	// Frames over the pooling limit are one-off payload spills; do not let
	// them pin the reader's reusable buffer.
	if n > pooledBufLimit {
		fr.buf = nil
	}
	return env, nil
}
