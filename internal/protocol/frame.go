package protocol

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"globuscompute/internal/trace"
)

// Envelope is the unit of transmission on every framed connection: a type
// tag, an optional correlation ID, an optional trace context, and a JSON
// body.
type Envelope struct {
	Type string `json:"type"`
	ID   string `json:"id,omitempty"`
	// Trace propagates distributed-trace context across the connection
	// (publish -> delivery, task -> result). Absent on untraced traffic;
	// receivers must treat a missing field as "no trace" (the pre-trace
	// wire format is decodable unchanged).
	Trace *trace.Context  `json:"trace,omitempty"`
	Body  json.RawMessage `json:"body,omitempty"`
}

// Envelope type tags used across the system.
const (
	EnvTask      = "task"      // broker -> endpoint, interchange -> manager
	EnvResult    = "result"    // worker -> ... -> broker
	EnvAck       = "ack"       // consumer acknowledgement
	EnvNack      = "nack"      // consumer rejection (requeue)
	EnvHeartbeat = "heartbeat" // liveness
	EnvRegister  = "register"  // manager registration with interchange
	EnvCapacity  = "capacity"  // manager advertises free worker slots
	EnvConsume   = "consume"   // broker client: begin consuming a queue
	EnvPublish   = "publish"   // broker client: publish to a queue
	EnvDeclare   = "declare"   // broker client: declare a queue
	EnvDelivery  = "delivery"  // broker -> consumer: a delivered message
	EnvError     = "error"     // protocol-level error report
	EnvOK        = "ok"        // generic success reply
	EnvDrain     = "drain"     // manager: stop accepting, finish inflight
	EnvShutdown  = "shutdown"  // orderly termination
)

// MaxFrame bounds a single frame; larger frames indicate corruption or a
// payload that should have gone through the object store.
const MaxFrame = 64 << 20

// ErrFrameTooLarge is returned when an encoded or received frame exceeds
// MaxFrame.
var ErrFrameTooLarge = fmt.Errorf("protocol: frame exceeds %d bytes", MaxFrame)

// NewEnvelope builds an envelope, JSON-encoding body. A nil body yields an
// empty envelope body.
func NewEnvelope(typ, id string, body any) (Envelope, error) {
	env := Envelope{Type: typ, ID: id}
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return env, fmt.Errorf("protocol: marshal envelope body: %w", err)
		}
		env.Body = b
	}
	return env, nil
}

// MustEnvelope is NewEnvelope for bodies that cannot fail to marshal.
func MustEnvelope(typ, id string, body any) Envelope {
	env, err := NewEnvelope(typ, id, body)
	if err != nil {
		panic(err)
	}
	return env
}

// Decode unmarshals the envelope body into v.
func (e Envelope) Decode(v any) error {
	if err := json.Unmarshal(e.Body, v); err != nil {
		return fmt.Errorf("protocol: decode %s envelope: %w", e.Type, err)
	}
	return nil
}

// FrameWriter writes length-prefixed JSON envelopes. It is safe for
// concurrent use: the engine multiplexes many logical streams over one
// manager connection.
type FrameWriter struct {
	mu sync.Mutex
	w  *bufio.Writer
}

// NewFrameWriter wraps w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriter(w)}
}

// Write encodes env as a 4-byte big-endian length followed by JSON, and
// flushes.
func (fw *FrameWriter) Write(env Envelope) error {
	b, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("protocol: marshal frame: %w", err)
	}
	if len(b) > MaxFrame {
		return ErrFrameTooLarge
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(b); err != nil {
		return err
	}
	return fw.w.Flush()
}

// FrameReader reads length-prefixed JSON envelopes. Not safe for concurrent
// use; each connection has a single reader goroutine.
type FrameReader struct {
	r *bufio.Reader
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// Read returns the next envelope. io.EOF is returned unwrapped at a clean
// stream end.
func (fr *FrameReader) Read() (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Envelope{}, io.EOF
		}
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Envelope{}, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		return Envelope{}, fmt.Errorf("protocol: short frame: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return Envelope{}, fmt.Errorf("protocol: bad frame: %w", err)
	}
	return env, nil
}
