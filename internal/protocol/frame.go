package protocol

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"globuscompute/internal/trace"
)

// Envelope is the unit of transmission on every framed connection: a type
// tag, an optional correlation ID, an optional trace context, and a JSON
// body.
type Envelope struct {
	Type string `json:"type"`
	ID   string `json:"id,omitempty"`
	// Trace propagates distributed-trace context across the connection
	// (publish -> delivery, task -> result). Absent on untraced traffic;
	// receivers must treat a missing field as "no trace" (the pre-trace
	// wire format is decodable unchanged).
	Trace *trace.Context  `json:"trace,omitempty"`
	Body  json.RawMessage `json:"body,omitempty"`
}

// Envelope type tags used across the system.
const (
	EnvTask      = "task"      // broker -> endpoint, interchange -> manager
	EnvResult    = "result"    // worker -> ... -> broker
	EnvAck       = "ack"       // consumer acknowledgement
	EnvNack      = "nack"      // consumer rejection (requeue)
	EnvHeartbeat = "heartbeat" // liveness
	EnvRegister  = "register"  // manager registration with interchange
	EnvCapacity  = "capacity"  // manager advertises free worker slots
	EnvConsume   = "consume"   // broker client: begin consuming a queue
	EnvPublish   = "publish"   // broker client: publish to a queue
	EnvDeclare   = "declare"   // broker client: declare a queue
	EnvDelivery  = "delivery"  // broker -> consumer: a delivered message
	EnvError     = "error"     // protocol-level error report
	EnvOK        = "ok"        // generic success reply
	EnvDrain     = "drain"     // manager: stop accepting, finish inflight
	EnvShutdown  = "shutdown"  // orderly termination

	// Multi-message envelopes amortize the per-frame round trip on the task
	// hot path. Peers that predate them simply never send them; a plain
	// publish/delivery/ack remains valid and is decoded identically.
	EnvPublishBatch  = "publish_batch"  // broker client: publish N messages to one queue
	EnvDeliveryBatch = "delivery_batch" // broker -> consumer: N deliveries in one frame
	EnvAckBatch      = "ack_batch"      // consumer: acknowledge N tags in one frame
)

// MaxFrame bounds a single frame; larger frames indicate corruption or a
// payload that should have gone through the object store.
const MaxFrame = 64 << 20

// ErrFrameTooLarge is returned when an encoded or received frame exceeds
// MaxFrame.
var ErrFrameTooLarge = fmt.Errorf("protocol: frame exceeds %d bytes", MaxFrame)

// NewEnvelope builds an envelope, JSON-encoding body. A nil body yields an
// empty envelope body.
func NewEnvelope(typ, id string, body any) (Envelope, error) {
	env := Envelope{Type: typ, ID: id}
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return env, fmt.Errorf("protocol: marshal envelope body: %w", err)
		}
		env.Body = b
	}
	return env, nil
}

// MustEnvelope is NewEnvelope for bodies that cannot fail to marshal.
func MustEnvelope(typ, id string, body any) Envelope {
	env, err := NewEnvelope(typ, id, body)
	if err != nil {
		panic(err)
	}
	return env
}

// Decode unmarshals the envelope body into v.
func (e Envelope) Decode(v any) error {
	if err := json.Unmarshal(e.Body, v); err != nil {
		return fmt.Errorf("protocol: decode %s envelope: %w", e.Type, err)
	}
	return nil
}

// encodeBufPool recycles the per-frame encode buffers across every
// FrameWriter in the process, so steady-state encoding allocates nothing
// beyond what encoding/json needs internally. Buffers that grew past 1 MiB
// are dropped rather than pooled to keep a single huge payload from pinning
// memory.
var encodeBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

const pooledBufLimit = 1 << 20

// FrameWriter writes length-prefixed JSON envelopes. It is safe for
// concurrent use: the engine multiplexes many logical streams over one
// manager connection.
type FrameWriter struct {
	mu sync.Mutex
	w  *bufio.Writer
}

// NewFrameWriter wraps w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriter(w)}
}

// encodeFrame renders env (header + JSON) into a pooled buffer. The caller
// must return the buffer with putEncodeBuf.
func encodeFrame(env Envelope) (*bytes.Buffer, error) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	enc := json.NewEncoder(buf)
	if err := enc.Encode(env); err != nil {
		putEncodeBuf(buf)
		return nil, fmt.Errorf("protocol: marshal frame: %w", err)
	}
	// Encoder.Encode appends a newline; it is not part of the frame.
	b := buf.Bytes()
	n := buf.Len() - 4 - 1
	if n > MaxFrame {
		putEncodeBuf(buf)
		return nil, ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	buf.Truncate(4 + n)
	return buf, nil
}

func putEncodeBuf(buf *bytes.Buffer) {
	if buf.Cap() <= pooledBufLimit {
		encodeBufPool.Put(buf)
	}
}

// Write encodes env as a 4-byte big-endian length followed by JSON, and
// flushes. Encoding happens outside the writer lock (in a pooled buffer) so
// concurrent writers only serialize on the actual socket write.
func (fw *FrameWriter) Write(env Envelope) error {
	buf, err := encodeFrame(env)
	if err != nil {
		return err
	}
	defer putEncodeBuf(buf)
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if _, err := fw.w.Write(buf.Bytes()); err != nil {
		return err
	}
	return fw.w.Flush()
}

// WriteAll encodes every envelope and flushes once, so a burst of frames
// costs one syscall instead of len(envs).
func (fw *FrameWriter) WriteAll(envs []Envelope) error {
	if len(envs) == 0 {
		return nil
	}
	bufs := make([]*bytes.Buffer, 0, len(envs))
	defer func() {
		for _, b := range bufs {
			putEncodeBuf(b)
		}
	}()
	for _, env := range envs {
		buf, err := encodeFrame(env)
		if err != nil {
			return err
		}
		bufs = append(bufs, buf)
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	for _, buf := range bufs {
		if _, err := fw.w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return fw.w.Flush()
}

// FrameReader reads length-prefixed JSON envelopes. Not safe for concurrent
// use; each connection has a single reader goroutine.
type FrameReader struct {
	r *bufio.Reader
	// buf is reused across Reads. Safe because json.Unmarshal copies every
	// byte it retains (json.RawMessage included) out of the input.
	buf []byte
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// Read returns the next envelope. io.EOF is returned unwrapped at a clean
// stream end.
func (fr *FrameReader) Read() (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Envelope{}, io.EOF
		}
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Envelope{}, ErrFrameTooLarge
	}
	if uint32(cap(fr.buf)) < n {
		fr.buf = make([]byte, n)
	}
	buf := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		return Envelope{}, fmt.Errorf("protocol: short frame: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return Envelope{}, fmt.Errorf("protocol: bad frame: %w", err)
	}
	// Frames over the pooling limit are one-off payload spills; do not let
	// them pin the reader's reusable buffer.
	if n > pooledBufLimit {
		fr.buf = nil
	}
	return env, nil
}
