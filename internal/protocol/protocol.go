// Package protocol defines the message types and wire framing shared by the
// Globus Compute web service, message broker, endpoint agents, and the
// pilot-job engine components (interchange, managers, workers).
//
// The real system uses AMQPS between endpoints and the cloud and ZeroMQ
// inside the endpoint; here both layers speak the same length-prefixed JSON
// framing over TCP (see Framing in frame.go).
package protocol

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"globuscompute/internal/trace"
)

// UUID is a 128-bit random identifier rendered in canonical 8-4-4-4-12 form.
// Functions, tasks, endpoints, and batch jobs are all identified by UUIDs,
// matching the immutable-identifier model of the hosted service.
type UUID string

// NewUUID returns a fresh random (version 4 style) identifier.
func NewUUID() UUID {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("protocol: rand.Read failed: " + err.Error())
	}
	b[6] = (b[6] & 0x0f) | 0x40
	b[8] = (b[8] & 0x3f) | 0x80
	s := hex.EncodeToString(b[:])
	return UUID(s[0:8] + "-" + s[8:12] + "-" + s[12:16] + "-" + s[16:20] + "-" + s[20:32])
}

// Valid reports whether u looks like a canonical UUID.
func (u UUID) Valid() bool {
	if len(u) != 36 {
		return false
	}
	for i, c := range u {
		switch i {
		case 8, 13, 18, 23:
			if c != '-' {
				return false
			}
		default:
			ishex := (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
			if !ishex {
				return false
			}
		}
	}
	return true
}

// FunctionKind distinguishes the three task types the paper defines.
type FunctionKind string

const (
	// KindPython models a plain registered function: the payload names a
	// worker-side entrypoint plus JSON-encoded arguments. (Substitute for
	// pickled Python callables; see DESIGN.md.)
	KindPython FunctionKind = "python"
	// KindShell is a ShellFunction: a command-line template executed by a
	// worker with sandboxing and walltime support.
	KindShell FunctionKind = "shell"
	// KindMPI is an MPIFunction: a ShellFunction prefixed with an MPI
	// launcher and bound to a resource specification.
	KindMPI FunctionKind = "mpi"
)

// TaskState enumerates the lifecycle states tracked by the web service.
type TaskState string

const (
	StateReceived  TaskState = "received"  // accepted by the web service
	StateWaiting   TaskState = "waiting"   // buffered; endpoint offline or queue backlog
	StateDelivered TaskState = "delivered" // handed to the endpoint task queue consumer
	StateRunning   TaskState = "running"   // executing on a worker
	StateSuccess   TaskState = "success"   // result available
	StateFailed    TaskState = "failed"    // exception recorded
	StateCancelled TaskState = "cancelled" // cancelled before completion
)

// Terminal reports whether s is a terminal state.
func (s TaskState) Terminal() bool {
	switch s {
	case StateSuccess, StateFailed, StateCancelled:
		return true
	}
	return false
}

// ResourceSpec mirrors the Parsl resource specification used by
// MPIFunctions: number of nodes, ranks per node, and total ranks. A zero
// value means "unspecified"; Normalize derives missing fields.
type ResourceSpec struct {
	NumNodes     int `json:"num_nodes,omitempty"`
	RanksPerNode int `json:"ranks_per_node,omitempty"`
	NumRanks     int `json:"num_ranks,omitempty"`
}

// IsZero reports whether no resource requirements were specified.
func (r ResourceSpec) IsZero() bool {
	return r.NumNodes == 0 && r.RanksPerNode == 0 && r.NumRanks == 0
}

// Normalize fills derivable fields and validates consistency. It returns the
// completed spec. Rules follow Parsl: ranks = nodes * ranks_per_node when
// unset; when all three are set they must agree.
func (r ResourceSpec) Normalize() (ResourceSpec, error) {
	n := r
	if n.NumNodes < 0 || n.RanksPerNode < 0 || n.NumRanks < 0 {
		return n, fmt.Errorf("protocol: negative resource specification %+v", r)
	}
	if n.NumNodes == 0 {
		n.NumNodes = 1
	}
	if n.RanksPerNode == 0 && n.NumRanks == 0 {
		n.RanksPerNode = 1
	}
	if n.NumRanks == 0 {
		n.NumRanks = n.NumNodes * n.RanksPerNode
	}
	if n.RanksPerNode == 0 {
		if n.NumRanks%n.NumNodes != 0 {
			return n, fmt.Errorf("protocol: num_ranks %d not divisible across %d nodes", n.NumRanks, n.NumNodes)
		}
		n.RanksPerNode = n.NumRanks / n.NumNodes
	}
	if n.NumNodes*n.RanksPerNode != n.NumRanks {
		return n, fmt.Errorf("protocol: inconsistent resource spec: %d nodes x %d ranks/node != %d ranks",
			n.NumNodes, n.RanksPerNode, n.NumRanks)
	}
	return n, nil
}

// Task is the unit of work that flows from the web service through the
// per-endpoint task queue to a worker.
type Task struct {
	ID         UUID         `json:"task_id"`
	FunctionID UUID         `json:"function_id"`
	EndpointID UUID         `json:"endpoint_id"`
	Kind       FunctionKind `json:"kind"`
	// Payload carries the serialized invocation: entrypoint+args for
	// python-kind, rendered command line and options for shell/MPI kinds.
	Payload []byte `json:"payload"`
	// PayloadRef, when set, names an object-store key holding the payload
	// (used when the inline payload would exceed the service threshold).
	PayloadRef string       `json:"payload_ref,omitempty"`
	Resources  ResourceSpec `json:"resources,omitempty"`
	// UserIdentity is the submitting user's identity username (for MEP
	// identity mapping and audit logging).
	UserIdentity string `json:"user_identity,omitempty"`
	// GroupID ties the task to the submitting executor's task group so
	// results can be streamed back over the group result queue.
	GroupID UUID `json:"group_id,omitempty"`
	// RoutingGroup records the routing-group UUID the task was submitted
	// through when placement (rather than the client) chose EndpointID;
	// empty for direct submits.
	RoutingGroup UUID `json:"routing_group,omitempty"`
	// Rerouted counts placement retries before EndpointID accepted the task
	// (first-choice members that were shedding when picked).
	Rerouted  int       `json:"rerouted,omitempty"`
	Submitted time.Time `json:"submitted"`
	// Attempts counts delivery/execution attempts consumed so far. It rides
	// on the task across requeues (engine interchange, broker redelivery of
	// the engine's making) so a poison task can be dead-lettered after a
	// bounded number of tries instead of cycling forever.
	Attempts int `json:"attempts,omitempty"`
	// Trace carries the task's distributed-trace context across process
	// boundaries; each component continues the trace by starting child
	// spans off it. Omitted when tracing is disabled.
	Trace *trace.Context `json:"trace,omitempty"`
}

// Result is the record a worker produces for a completed task.
type Result struct {
	TaskID UUID      `json:"task_id"`
	State  TaskState `json:"state"`
	Output []byte    `json:"output,omitempty"`
	// OutputRef names an object-store key when the output exceeds the
	// inline threshold.
	OutputRef string `json:"output_ref,omitempty"`
	Error     string `json:"error,omitempty"`
	// Execution metadata, reported for accounting and for the benchmark
	// harness.
	EndpointID  UUID          `json:"endpoint_id"`
	WorkerID    string        `json:"worker_id,omitempty"`
	Started     time.Time     `json:"started"`
	Completed   time.Time     `json:"completed"`
	ExecutionMS float64       `json:"execution_ms"`
	QueueDelay  time.Duration `json:"queue_delay,omitempty"`
	// DeadLettered marks a synthetic failure emitted after the task
	// exhausted its attempt budget (the poison-task escape hatch); the web
	// service counts these separately from ordinary execution failures.
	DeadLettered bool `json:"dead_lettered,omitempty"`
	// Trace continues the submitting task's trace through the result path
	// (worker -> broker -> result processor -> client future).
	Trace *trace.Context `json:"trace,omitempty"`
}

// ShellSpec is the payload body for KindShell and KindMPI tasks.
type ShellSpec struct {
	// Command is the command-line template; {placeholders} have already
	// been substituted by the SDK at submit time.
	Command string `json:"command"`
	// RunDir overrides the working directory (empty = endpoint default).
	RunDir string `json:"run_dir,omitempty"`
	// Sandbox requests a unique per-task working directory.
	Sandbox bool `json:"sandbox,omitempty"`
	// WalltimeSec terminates execution after this many seconds; the return
	// code is then 124 as with coreutils timeout.
	WalltimeSec float64 `json:"walltime_sec,omitempty"`
	// SnippetLines bounds captured stdout/stderr lines (default 1000).
	SnippetLines int `json:"snippet_lines,omitempty"`
	// Launcher, for MPI tasks, names the launcher binary (mpiexec, srun).
	Launcher string `json:"launcher,omitempty"`
	// Container, when set, runs the command inside the named container
	// image (the endpoint must have a container runtime configured).
	Container string `json:"container,omitempty"`
	// Env passes additional environment variables to the command.
	Env map[string]string `json:"env,omitempty"`
}

// ShellResult mirrors the SDK's ShellResult: return code plus output
// snippets from the executed command line.
type ShellResult struct {
	ReturnCode int    `json:"returncode"`
	Cmd        string `json:"cmd"`
	Stdout     string `json:"stdout"`
	Stderr     string `json:"stderr"`
	// Truncated indicates the snippets were clipped to the last N lines.
	Truncated bool `json:"truncated,omitempty"`
}

// PythonSpec is the payload body for KindPython tasks: an entrypoint name
// resolvable in the worker-side callable registry plus JSON-encoded
// positional and keyword arguments.
type PythonSpec struct {
	Entrypoint string                     `json:"entrypoint"`
	Args       []json.RawMessage          `json:"args,omitempty"`
	Kwargs     map[string]json.RawMessage `json:"kwargs,omitempty"`
}

// EncodePayload marshals a payload body for embedding in a Task.
func EncodePayload(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("protocol: encode payload: %w", err)
	}
	return b, nil
}

// DecodePayload unmarshals a task payload into v.
func DecodePayload(b []byte, v any) error {
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("protocol: decode payload: %w", err)
	}
	return nil
}
