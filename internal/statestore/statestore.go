// Package statestore is the relational-database substitute backing the web
// service: typed tables for registered functions, endpoints, and tasks, with
// the task state machine enforced at the storage layer so that every task
// reaches exactly one terminal state. A JSON snapshot/restore pair stands in
// for database durability.
package statestore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"globuscompute/internal/protocol"
)

// Common errors.
var (
	ErrNotFound          = errors.New("statestore: record not found")
	ErrAlreadyExists     = errors.New("statestore: record already exists")
	ErrIllegalTransition = errors.New("statestore: illegal task state transition")
)

// FunctionRecord is an immutable registered function. Re-registering the
// same body yields a new UUID; the MEP allowed-functions feature relies on
// this immutability.
type FunctionRecord struct {
	ID         protocol.UUID         `json:"id"`
	Owner      string                `json:"owner"`
	Kind       protocol.FunctionKind `json:"kind"`
	Definition []byte                `json:"definition"`
	Registered time.Time             `json:"registered"`
}

// EndpointStatus is the service's view of an endpoint.
type EndpointStatus string

const (
	EndpointOnline  EndpointStatus = "online"
	EndpointOffline EndpointStatus = "offline"
)

// EndpointRecord describes a registered endpoint, single- or multi-user.
type EndpointRecord struct {
	ID        protocol.UUID `json:"id"`
	Name      string        `json:"name"`
	Owner     string        `json:"owner"`
	MultiUser bool          `json:"multi_user"`
	// Parent links a user endpoint spawned by a multi-user endpoint to its
	// MEP, for the usage accounting in the paper's §VI.
	Parent        protocol.UUID     `json:"parent,omitempty"`
	Status        EndpointStatus    `json:"status"`
	Registered    time.Time         `json:"registered"`
	LastHeartbeat time.Time         `json:"last_heartbeat"`
	Metadata      map[string]string `json:"metadata,omitempty"`
	// AllowedFunctions, when non-empty, restricts which function UUIDs the
	// endpoint will execute (science-gateway deployments).
	AllowedFunctions []protocol.UUID `json:"allowed_functions,omitempty"`
	// AuthPolicy names a Globus-Auth-style policy checked at submit time.
	AuthPolicy string `json:"auth_policy,omitempty"`
	// Load is the agent's most recent self-reported status.
	Load *EndpointLoad `json:"load,omitempty"`
}

// EndpointLoad is the agent-reported utilization carried in heartbeats.
type EndpointLoad struct {
	PendingTasks     int   `json:"pending_tasks"`
	TotalWorkers     int   `json:"total_workers"`
	FreeWorkers      int   `json:"free_workers"`
	TasksReceived    int64 `json:"tasks_received"`
	ResultsPublished int64 `json:"results_published"`
}

// TaskRecord is the authoritative task row.
type TaskRecord struct {
	Task      protocol.Task      `json:"task"`
	State     protocol.TaskState `json:"state"`
	Result    []byte             `json:"result,omitempty"`
	ResultRef string             `json:"result_ref,omitempty"`
	Error     string             `json:"error,omitempty"`
	Created   time.Time          `json:"created"`
	Updated   time.Time          `json:"updated"`
	Completed time.Time          `json:"completed,omitempty"`
}

// Store holds all service state. Safe for concurrent use.
type Store struct {
	mu        sync.RWMutex
	functions map[protocol.UUID]*FunctionRecord
	endpoints map[protocol.UUID]*EndpointRecord
	tasks     map[protocol.UUID]*TaskRecord
	// tasksByEndpoint is a secondary index for ListTasks queries.
	tasksByEndpoint map[protocol.UUID][]protocol.UUID
	now             func() time.Time
}

// New returns an empty store.
func New() *Store {
	return &Store{
		functions:       make(map[protocol.UUID]*FunctionRecord),
		endpoints:       make(map[protocol.UUID]*EndpointRecord),
		tasks:           make(map[protocol.UUID]*TaskRecord),
		tasksByEndpoint: make(map[protocol.UUID][]protocol.UUID),
		now:             time.Now,
	}
}

// SetClock overrides the time source (tests).
func (s *Store) SetClock(now func() time.Time) { s.now = now }

// --- functions ---

// PutFunction registers an immutable function. Registering an existing ID
// fails.
func (s *Store) PutFunction(rec FunctionRecord) error {
	if !rec.ID.Valid() {
		return fmt.Errorf("statestore: invalid function ID %q", rec.ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.functions[rec.ID]; ok {
		return fmt.Errorf("%w: function %s", ErrAlreadyExists, rec.ID)
	}
	if rec.Registered.IsZero() {
		rec.Registered = s.now()
	}
	rec.Definition = append([]byte(nil), rec.Definition...)
	s.functions[rec.ID] = &rec
	return nil
}

// GetFunction fetches a function record.
func (s *Store) GetFunction(id protocol.UUID) (FunctionRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.functions[id]
	if !ok {
		return FunctionRecord{}, fmt.Errorf("%w: function %s", ErrNotFound, id)
	}
	return *rec, nil
}

// CountFunctions returns the number of registered functions.
func (s *Store) CountFunctions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.functions)
}

// --- endpoints ---

// UpsertEndpoint inserts or replaces an endpoint record.
func (s *Store) UpsertEndpoint(rec EndpointRecord) error {
	if !rec.ID.Valid() {
		return fmt.Errorf("statestore: invalid endpoint ID %q", rec.ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.Registered.IsZero() {
		if old, ok := s.endpoints[rec.ID]; ok {
			rec.Registered = old.Registered
		} else {
			rec.Registered = s.now()
		}
	}
	s.endpoints[rec.ID] = &rec
	return nil
}

// GetEndpoint fetches an endpoint record.
func (s *Store) GetEndpoint(id protocol.UUID) (EndpointRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.endpoints[id]
	if !ok {
		return EndpointRecord{}, fmt.Errorf("%w: endpoint %s", ErrNotFound, id)
	}
	return *rec, nil
}

// SetEndpointStatus updates status and heartbeat time.
func (s *Store) SetEndpointStatus(id protocol.UUID, status EndpointStatus) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.endpoints[id]
	if !ok {
		return fmt.Errorf("%w: endpoint %s", ErrNotFound, id)
	}
	rec.Status = status
	rec.LastHeartbeat = s.now()
	return nil
}

// SetEndpointLoad records an agent's self-reported load.
func (s *Store) SetEndpointLoad(id protocol.UUID, load EndpointLoad) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.endpoints[id]
	if !ok {
		return fmt.Errorf("%w: endpoint %s", ErrNotFound, id)
	}
	rec.Load = &load
	return nil
}

// EndpointFilter selects endpoints in ListEndpoints.
type EndpointFilter struct {
	Owner     string
	MultiUser *bool
	Parent    protocol.UUID
	Status    EndpointStatus
}

// ListEndpoints returns endpoint records matching the filter.
func (s *Store) ListEndpoints(f EndpointFilter) []EndpointRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []EndpointRecord
	for _, rec := range s.endpoints {
		if f.Owner != "" && rec.Owner != f.Owner {
			continue
		}
		if f.MultiUser != nil && rec.MultiUser != *f.MultiUser {
			continue
		}
		if f.Parent != "" && rec.Parent != f.Parent {
			continue
		}
		if f.Status != "" && rec.Status != f.Status {
			continue
		}
		out = append(out, *rec)
	}
	return out
}

// CountEndpoints returns the number of registered endpoints.
func (s *Store) CountEndpoints() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.endpoints)
}

// --- tasks ---

// legalNext defines the task state machine. A terminal state has no
// successors, guaranteeing exactly-one-terminal-state.
var legalNext = map[protocol.TaskState]map[protocol.TaskState]bool{
	protocol.StateReceived: {
		protocol.StateWaiting: true, protocol.StateDelivered: true,
		protocol.StateCancelled: true, protocol.StateFailed: true,
	},
	protocol.StateWaiting: {
		protocol.StateDelivered: true, protocol.StateCancelled: true,
		protocol.StateFailed: true,
	},
	protocol.StateDelivered: {
		protocol.StateRunning: true, protocol.StateSuccess: true,
		protocol.StateFailed: true, protocol.StateCancelled: true,
	},
	protocol.StateRunning: {
		protocol.StateSuccess: true, protocol.StateFailed: true,
		protocol.StateCancelled: true,
	},
}

// CreateTask inserts a new task in StateReceived.
func (s *Store) CreateTask(task protocol.Task) error {
	if !task.ID.Valid() {
		return fmt.Errorf("statestore: invalid task ID %q", task.ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tasks[task.ID]; ok {
		return fmt.Errorf("%w: task %s", ErrAlreadyExists, task.ID)
	}
	now := s.now()
	s.tasks[task.ID] = &TaskRecord{Task: task, State: protocol.StateReceived, Created: now, Updated: now}
	s.tasksByEndpoint[task.EndpointID] = append(s.tasksByEndpoint[task.EndpointID], task.ID)
	return nil
}

// GetTask fetches a task record.
func (s *Store) GetTask(id protocol.UUID) (TaskRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.tasks[id]
	if !ok {
		return TaskRecord{}, fmt.Errorf("%w: task %s", ErrNotFound, id)
	}
	return *rec, nil
}

// TransitionTask moves a task to state, enforcing the state machine.
func (s *Store) TransitionTask(id protocol.UUID, state protocol.TaskState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.transitionLocked(id, state)
}

func (s *Store) transitionLocked(id protocol.UUID, state protocol.TaskState) error {
	rec, ok := s.tasks[id]
	if !ok {
		return fmt.Errorf("%w: task %s", ErrNotFound, id)
	}
	if !legalNext[rec.State][state] {
		return fmt.Errorf("%w: %s -> %s (task %s)", ErrIllegalTransition, rec.State, state, id)
	}
	rec.State = state
	rec.Updated = s.now()
	if state.Terminal() {
		rec.Completed = rec.Updated
	}
	return nil
}

// CompleteTask records a result and moves the task to its terminal state in
// one step (the result processor path).
func (s *Store) CompleteTask(res protocol.Result) error {
	if !res.State.Terminal() {
		return fmt.Errorf("statestore: CompleteTask with non-terminal state %s", res.State)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.tasks[res.TaskID]
	if !ok {
		return fmt.Errorf("%w: task %s", ErrNotFound, res.TaskID)
	}
	if err := s.transitionLocked(res.TaskID, res.State); err != nil {
		return err
	}
	rec.Result = append([]byte(nil), res.Output...)
	rec.ResultRef = res.OutputRef
	rec.Error = res.Error
	return nil
}

// ListTasksByEndpoint returns the task IDs submitted to an endpoint in
// creation order.
func (s *Store) ListTasksByEndpoint(ep protocol.UUID) []protocol.UUID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.tasksByEndpoint[ep]
	return append([]protocol.UUID(nil), ids...)
}

// CountTasksByState tallies tasks per state.
func (s *Store) CountTasksByState() map[protocol.TaskState]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[protocol.TaskState]int)
	for _, rec := range s.tasks {
		out[rec.State]++
	}
	return out
}

// CountTasks returns the total number of tasks.
func (s *Store) CountTasks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tasks)
}

// PurgeTasksBefore deletes terminal task records completed before cutoff,
// implementing the service's bounded result retention ("results are stored
// in the cloud for up to two weeks"). It returns the number purged.
func (s *Store) PurgeTasksBefore(cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	purged := 0
	for id, rec := range s.tasks {
		if rec.State.Terminal() && !rec.Completed.IsZero() && rec.Completed.Before(cutoff) {
			delete(s.tasks, id)
			purged++
			ids := s.tasksByEndpoint[rec.Task.EndpointID]
			for i, tid := range ids {
				if tid == id {
					s.tasksByEndpoint[rec.Task.EndpointID] = append(ids[:i], ids[i+1:]...)
					break
				}
			}
		}
	}
	return purged
}

// --- durability ---

// snapshot is the JSON image of the full store.
type snapshot struct {
	Functions []FunctionRecord `json:"functions"`
	Endpoints []EndpointRecord `json:"endpoints"`
	Tasks     []TaskRecord     `json:"tasks"`
}

// Snapshot serializes the store to JSON.
func (s *Store) Snapshot() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var snap snapshot
	for _, f := range s.functions {
		snap.Functions = append(snap.Functions, *f)
	}
	for _, e := range s.endpoints {
		snap.Endpoints = append(snap.Endpoints, *e)
	}
	for _, t := range s.tasks {
		snap.Tasks = append(snap.Tasks, *t)
	}
	return json.Marshal(snap)
}

// SaveFile writes a snapshot atomically to path (the RDS substitute's
// durability story: periodic snapshots).
func (s *Store) SaveFile(path string) error {
	img, err := s.Snapshot()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, img, 0o644); err != nil {
		return fmt.Errorf("statestore: save: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadFile restores the store from a SaveFile snapshot.
func (s *Store) LoadFile(path string) error {
	img, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("statestore: load: %w", err)
	}
	return s.Restore(img)
}

// Restore replaces the store contents from a Snapshot image.
func (s *Store) Restore(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("statestore: restore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.functions = make(map[protocol.UUID]*FunctionRecord, len(snap.Functions))
	s.endpoints = make(map[protocol.UUID]*EndpointRecord, len(snap.Endpoints))
	s.tasks = make(map[protocol.UUID]*TaskRecord, len(snap.Tasks))
	s.tasksByEndpoint = make(map[protocol.UUID][]protocol.UUID)
	for i := range snap.Functions {
		f := snap.Functions[i]
		s.functions[f.ID] = &f
	}
	for i := range snap.Endpoints {
		e := snap.Endpoints[i]
		s.endpoints[e.ID] = &e
	}
	for i := range snap.Tasks {
		t := snap.Tasks[i]
		s.tasks[t.Task.ID] = &t
		s.tasksByEndpoint[t.Task.EndpointID] = append(s.tasksByEndpoint[t.Task.EndpointID], t.Task.ID)
	}
	return nil
}
