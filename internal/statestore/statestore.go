// Package statestore is the relational-database substitute backing the web
// service: typed tables for registered functions, endpoints, and tasks, with
// the task state machine enforced at the storage layer so that every task
// reaches exactly one terminal state. A JSON snapshot/restore pair stands in
// for database durability.
//
// Concurrency layout: each table has its own lock so function lookups never
// contend with task writes, and the task table — the hot row set on the
// submit and result paths — is split across taskShards hash shards, each
// guarded by an RWMutex. Batch operations (CreateTasks, TransitionTasks,
// CompleteTasks, GetTaskRecords) group their inputs by shard so a burst of N
// tasks costs one lock round trip per touched shard instead of N.
package statestore

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"globuscompute/internal/protocol"
)

// Common errors.
var (
	ErrNotFound          = errors.New("statestore: record not found")
	ErrAlreadyExists     = errors.New("statestore: record already exists")
	ErrIllegalTransition = errors.New("statestore: illegal task state transition")
)

// FunctionRecord is an immutable registered function. Re-registering the
// same body yields a new UUID; the MEP allowed-functions feature relies on
// this immutability.
type FunctionRecord struct {
	ID         protocol.UUID         `json:"id"`
	Owner      string                `json:"owner"`
	Kind       protocol.FunctionKind `json:"kind"`
	Definition []byte                `json:"definition"`
	Registered time.Time             `json:"registered"`
}

// EndpointStatus is the service's view of an endpoint.
type EndpointStatus string

const (
	EndpointOnline  EndpointStatus = "online"
	EndpointOffline EndpointStatus = "offline"
)

// EndpointRecord describes a registered endpoint, single- or multi-user.
type EndpointRecord struct {
	ID        protocol.UUID `json:"id"`
	Name      string        `json:"name"`
	Owner     string        `json:"owner"`
	MultiUser bool          `json:"multi_user"`
	// Parent links a user endpoint spawned by a multi-user endpoint to its
	// MEP, for the usage accounting in the paper's §VI.
	Parent        protocol.UUID     `json:"parent,omitempty"`
	Status        EndpointStatus    `json:"status"`
	Registered    time.Time         `json:"registered"`
	LastHeartbeat time.Time         `json:"last_heartbeat"`
	Metadata      map[string]string `json:"metadata,omitempty"`
	// AllowedFunctions, when non-empty, restricts which function UUIDs the
	// endpoint will execute (science-gateway deployments).
	AllowedFunctions []protocol.UUID `json:"allowed_functions,omitempty"`
	// AuthPolicy names a Globus-Auth-style policy checked at submit time.
	AuthPolicy string `json:"auth_policy,omitempty"`
	// Load is the agent's most recent self-reported status; LoadAt stamps
	// when it arrived. A dead endpoint's last report would otherwise read
	// as current forever — placement and the backlog-shed path treat
	// reports older than three heartbeat intervals as unknown.
	Load   *EndpointLoad `json:"load,omitempty"`
	LoadAt time.Time     `json:"load_at,omitempty"`
}

// LoadAge returns how old the endpoint's load report is, or -1 when it has
// never reported load.
func (r EndpointRecord) LoadAge(now time.Time) time.Duration {
	if r.Load == nil || r.LoadAt.IsZero() {
		return -1
	}
	return now.Sub(r.LoadAt)
}

// EndpointLoad is the agent-reported utilization carried in heartbeats.
type EndpointLoad struct {
	PendingTasks     int   `json:"pending_tasks"`
	TotalWorkers     int   `json:"total_workers"`
	FreeWorkers      int   `json:"free_workers"`
	TasksReceived    int64 `json:"tasks_received"`
	ResultsPublished int64 `json:"results_published"`
	// EgressBacklog is the agent's count of completed results not yet
	// published — endpoint pressure that PendingTasks alone misses, so MEP
	// routing and the dashboard see the true queue depth behind an endpoint.
	// Pointer so an agent that predates the field (and never reports it) is
	// distinguishable from a live zero backlog: nil means "not reported" and
	// federation must not record it as data.
	EgressBacklog *int `json:"egress_backlog,omitempty"`
}

// TaskRecord is the authoritative task row.
type TaskRecord struct {
	Task      protocol.Task      `json:"task"`
	State     protocol.TaskState `json:"state"`
	Result    []byte             `json:"result,omitempty"`
	ResultRef string             `json:"result_ref,omitempty"`
	Error     string             `json:"error,omitempty"`
	Created   time.Time          `json:"created"`
	Updated   time.Time          `json:"updated"`
	Completed time.Time          `json:"completed,omitempty"`
}

// taskShards is the task-table shard count. Power of two so the hash
// modulo compiles to a mask.
const taskShards = 16

// taskShard is one slice of the task table. counts tallies the shard's
// tasks per state incrementally, so state counts never require a table
// scan — pollers (benchmark drains, gc-top) read them at fixed cost no
// matter how many tasks the table holds.
type taskShard struct {
	mu     sync.RWMutex
	m      map[protocol.UUID]*TaskRecord
	counts map[protocol.TaskState]int
}

// idxShard is one slice of the endpoint → task-IDs secondary index
// (creation order preserved per endpoint).
type idxShard struct {
	mu sync.RWMutex
	m  map[protocol.UUID][]protocol.UUID
}

// Store holds all service state. Safe for concurrent use.
type Store struct {
	fnMu      sync.RWMutex
	functions map[protocol.UUID]*FunctionRecord

	epMu      sync.RWMutex
	endpoints map[protocol.UUID]*EndpointRecord

	tasks [taskShards]taskShard
	byEp  [taskShards]idxShard

	// idem maps (owner, idempotency key) -> created task IDs (see
	// idempotency.go).
	idem idemTable

	// groups is the routing-group table (see routinggroup.go).
	groups groupTable

	// jrnl, when set, receives every mutation before it is applied (see
	// journal.go). Attached once at startup, after recovery replay.
	jrnl Journal

	now func() time.Time
}

// New returns an empty store.
func New() *Store {
	s := &Store{
		functions: make(map[protocol.UUID]*FunctionRecord),
		endpoints: make(map[protocol.UUID]*EndpointRecord),
		now:       time.Now,
	}
	for i := range s.tasks {
		s.tasks[i].m = make(map[protocol.UUID]*TaskRecord)
		s.tasks[i].counts = make(map[protocol.TaskState]int)
	}
	for i := range s.byEp {
		s.byEp[i].m = make(map[protocol.UUID][]protocol.UUID)
	}
	s.idem.init()
	s.groups.init()
	return s
}

// SetClock overrides the time source (tests).
func (s *Store) SetClock(now func() time.Time) { s.now = now }

func shardOf(id protocol.UUID) uint32 {
	h := fnv.New32a()
	h.Write([]byte(id))
	return h.Sum32() % taskShards
}

func (s *Store) taskShard(id protocol.UUID) *taskShard { return &s.tasks[shardOf(id)] }
func (s *Store) idxShard(ep protocol.UUID) *idxShard   { return &s.byEp[shardOf(ep)] }

// --- functions ---

// PutFunction registers an immutable function. Registering an existing ID
// fails.
func (s *Store) PutFunction(rec FunctionRecord) error {
	if !rec.ID.Valid() {
		return fmt.Errorf("statestore: invalid function ID %q", rec.ID)
	}
	done, err := s.logMutation(Mutation{Op: OpPutFunction, Function: &rec})
	if err != nil {
		return err
	}
	if done != nil {
		defer done()
	}
	s.fnMu.Lock()
	defer s.fnMu.Unlock()
	if _, ok := s.functions[rec.ID]; ok {
		return fmt.Errorf("%w: function %s", ErrAlreadyExists, rec.ID)
	}
	if rec.Registered.IsZero() {
		rec.Registered = s.now()
	}
	rec.Definition = append([]byte(nil), rec.Definition...)
	s.functions[rec.ID] = &rec
	return nil
}

// GetFunction fetches a function record.
func (s *Store) GetFunction(id protocol.UUID) (FunctionRecord, error) {
	s.fnMu.RLock()
	defer s.fnMu.RUnlock()
	rec, ok := s.functions[id]
	if !ok {
		return FunctionRecord{}, fmt.Errorf("%w: function %s", ErrNotFound, id)
	}
	return *rec, nil
}

// CountFunctions returns the number of registered functions.
func (s *Store) CountFunctions() int {
	s.fnMu.RLock()
	defer s.fnMu.RUnlock()
	return len(s.functions)
}

// --- endpoints ---

// UpsertEndpoint inserts or replaces an endpoint record.
func (s *Store) UpsertEndpoint(rec EndpointRecord) error {
	if !rec.ID.Valid() {
		return fmt.Errorf("statestore: invalid endpoint ID %q", rec.ID)
	}
	done, err := s.logMutation(Mutation{Op: OpUpsertEndpoint, Endpoint: &rec})
	if err != nil {
		return err
	}
	if done != nil {
		defer done()
	}
	s.epMu.Lock()
	defer s.epMu.Unlock()
	if rec.Registered.IsZero() {
		if old, ok := s.endpoints[rec.ID]; ok {
			rec.Registered = old.Registered
		} else {
			rec.Registered = s.now()
		}
	}
	s.endpoints[rec.ID] = &rec
	return nil
}

// GetEndpoint fetches an endpoint record.
func (s *Store) GetEndpoint(id protocol.UUID) (EndpointRecord, error) {
	s.epMu.RLock()
	defer s.epMu.RUnlock()
	rec, ok := s.endpoints[id]
	if !ok {
		return EndpointRecord{}, fmt.Errorf("%w: endpoint %s", ErrNotFound, id)
	}
	return *rec, nil
}

// SetEndpointStatus updates status and heartbeat time.
func (s *Store) SetEndpointStatus(id protocol.UUID, status EndpointStatus) error {
	done, err := s.logMutation(Mutation{Op: OpSetEndpointStatus, EndpointID: id, Status: status})
	if err != nil {
		return err
	}
	if done != nil {
		defer done()
	}
	s.epMu.Lock()
	defer s.epMu.Unlock()
	rec, ok := s.endpoints[id]
	if !ok {
		return fmt.Errorf("%w: endpoint %s", ErrNotFound, id)
	}
	rec.Status = status
	rec.LastHeartbeat = s.now()
	return nil
}

// SetEndpointLoad records an agent's self-reported load, stamped with the
// store clock so readers can tell a live report from a dead endpoint's last
// words.
func (s *Store) SetEndpointLoad(id protocol.UUID, load EndpointLoad) error {
	s.epMu.Lock()
	defer s.epMu.Unlock()
	rec, ok := s.endpoints[id]
	if !ok {
		return fmt.Errorf("%w: endpoint %s", ErrNotFound, id)
	}
	rec.Load = &load
	rec.LoadAt = s.now()
	return nil
}

// SetEndpointHeartbeat records one heartbeat — liveness plus (optionally) the
// agent's load report — under a single lock acquisition. At fleet scale the
// heartbeat stream is the endpoint table's hottest writer; taking the lock
// once per report instead of once per field keeps a 10k-endpoint fleet's
// heartbeats from starving the submit path's reads.
func (s *Store) SetEndpointHeartbeat(id protocol.UUID, status EndpointStatus, load *EndpointLoad) error {
	done, err := s.logMutation(Mutation{Op: OpSetEndpointStatus, EndpointID: id, Status: status})
	if err != nil {
		return err
	}
	if done != nil {
		defer done()
	}
	s.epMu.Lock()
	defer s.epMu.Unlock()
	rec, ok := s.endpoints[id]
	if !ok {
		return fmt.Errorf("%w: endpoint %s", ErrNotFound, id)
	}
	rec.Status = status
	rec.LastHeartbeat = s.now()
	if load != nil {
		l := *load
		rec.Load = &l
		rec.LoadAt = s.now()
	}
	return nil
}

// GetEndpoints fetches a batch of endpoint records under one read lock, in
// input order; missing IDs are skipped. The routing hot path snapshots a
// group's members through this instead of N GetEndpoint round trips.
func (s *Store) GetEndpoints(ids []protocol.UUID) []EndpointRecord {
	out := make([]EndpointRecord, 0, len(ids))
	s.epMu.RLock()
	defer s.epMu.RUnlock()
	for _, id := range ids {
		if rec, ok := s.endpoints[id]; ok {
			out = append(out, *rec)
		}
	}
	return out
}

// EndpointFilter selects endpoints in ListEndpoints.
type EndpointFilter struct {
	Owner     string
	MultiUser *bool
	Parent    protocol.UUID
	Status    EndpointStatus
}

// ListEndpoints returns endpoint records matching the filter.
func (s *Store) ListEndpoints(f EndpointFilter) []EndpointRecord {
	s.epMu.RLock()
	defer s.epMu.RUnlock()
	var out []EndpointRecord
	for _, rec := range s.endpoints {
		if f.Owner != "" && rec.Owner != f.Owner {
			continue
		}
		if f.MultiUser != nil && rec.MultiUser != *f.MultiUser {
			continue
		}
		if f.Parent != "" && rec.Parent != f.Parent {
			continue
		}
		if f.Status != "" && rec.Status != f.Status {
			continue
		}
		out = append(out, *rec)
	}
	return out
}

// CountEndpoints returns the number of registered endpoints.
func (s *Store) CountEndpoints() int {
	s.epMu.RLock()
	defer s.epMu.RUnlock()
	return len(s.endpoints)
}

// --- tasks ---

// legalNext defines the task state machine. A terminal state has no
// successors, guaranteeing exactly-one-terminal-state.
var legalNext = map[protocol.TaskState]map[protocol.TaskState]bool{
	protocol.StateReceived: {
		protocol.StateWaiting: true, protocol.StateDelivered: true,
		protocol.StateCancelled: true, protocol.StateFailed: true,
	},
	protocol.StateWaiting: {
		protocol.StateDelivered: true, protocol.StateCancelled: true,
		// Success/failure may land while the record still reads waiting: the
		// submitter publishes to the broker and only then acks Delivered, so
		// a fast agent's result can outrun the ack. The result is
		// authoritative — rejecting it here would drop it and strand the
		// task non-terminal forever.
		protocol.StateFailed: true, protocol.StateSuccess: true,
	},
	protocol.StateDelivered: {
		protocol.StateRunning: true, protocol.StateSuccess: true,
		protocol.StateFailed: true, protocol.StateCancelled: true,
	},
	protocol.StateRunning: {
		protocol.StateSuccess: true, protocol.StateFailed: true,
		protocol.StateCancelled: true,
	},
}

// CreateTask inserts a new task in StateReceived.
func (s *Store) CreateTask(task protocol.Task) error {
	if !task.ID.Valid() {
		return fmt.Errorf("statestore: invalid task ID %q", task.ID)
	}
	done, err := s.logMutation(Mutation{Op: OpCreateTask, Task: &task})
	if err != nil {
		return err
	}
	if done != nil {
		defer done()
	}
	sh := s.taskShard(task.ID)
	sh.mu.Lock()
	if _, ok := sh.m[task.ID]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: task %s", ErrAlreadyExists, task.ID)
	}
	now := s.now()
	sh.m[task.ID] = &TaskRecord{Task: task, State: protocol.StateReceived, Created: now, Updated: now}
	sh.counts[protocol.StateReceived]++
	sh.mu.Unlock()
	s.indexTask(task.EndpointID, task.ID)
	return nil
}

// CreateTasks inserts a batch of tasks in StateReceived, grouping by shard
// so each touched shard is locked once. Tasks that fail validation or
// collide with an existing ID are skipped; the first such error is
// returned, with all other tasks still created (the web service generates
// fresh UUIDs, so collisions indicate a caller bug, not a race to report
// precisely).
func (s *Store) CreateTasks(tasks []protocol.Task) error {
	done, jerr := s.logMutation(Mutation{Op: OpCreateTasks, Tasks: tasks})
	if jerr != nil {
		return jerr
	}
	if done != nil {
		defer done()
	}
	var firstErr error
	// Group indices by shard.
	var groups [taskShards][]int
	for i, t := range tasks {
		if !t.ID.Valid() {
			if firstErr == nil {
				firstErr = fmt.Errorf("statestore: invalid task ID %q", t.ID)
			}
			continue
		}
		groups[shardOf(t.ID)] = append(groups[shardOf(t.ID)], i)
	}
	now := s.now()
	created := make([]bool, len(tasks))
	for si := range groups {
		if len(groups[si]) == 0 {
			continue
		}
		sh := &s.tasks[si]
		sh.mu.Lock()
		for _, i := range groups[si] {
			t := tasks[i]
			if _, ok := sh.m[t.ID]; ok {
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: task %s", ErrAlreadyExists, t.ID)
				}
				continue
			}
			sh.m[t.ID] = &TaskRecord{Task: t, State: protocol.StateReceived, Created: now, Updated: now}
			sh.counts[protocol.StateReceived]++
			created[i] = true
		}
		sh.mu.Unlock()
	}
	// Index the created tasks, grouped by endpoint shard, preserving the
	// submit order within each endpoint.
	var idxGroups [taskShards][]int
	for i, ok := range created {
		if ok {
			g := shardOf(tasks[i].EndpointID)
			idxGroups[g] = append(idxGroups[g], i)
		}
	}
	for si := range idxGroups {
		if len(idxGroups[si]) == 0 {
			continue
		}
		ix := &s.byEp[si]
		ix.mu.Lock()
		for _, i := range idxGroups[si] {
			ix.m[tasks[i].EndpointID] = append(ix.m[tasks[i].EndpointID], tasks[i].ID)
		}
		ix.mu.Unlock()
	}
	return firstErr
}

func (s *Store) indexTask(ep, id protocol.UUID) {
	ix := s.idxShard(ep)
	ix.mu.Lock()
	ix.m[ep] = append(ix.m[ep], id)
	ix.mu.Unlock()
}

// GetTask fetches a task record.
func (s *Store) GetTask(id protocol.UUID) (TaskRecord, error) {
	sh := s.taskShard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.m[id]
	if !ok {
		return TaskRecord{}, fmt.Errorf("%w: task %s", ErrNotFound, id)
	}
	return *rec, nil
}

// GetTaskRecords fetches a batch of task records, grouping reads by shard
// (one RLock per touched shard). Missing IDs are simply absent from the
// returned map.
func (s *Store) GetTaskRecords(ids []protocol.UUID) map[protocol.UUID]TaskRecord {
	out := make(map[protocol.UUID]TaskRecord, len(ids))
	var groups [taskShards][]protocol.UUID
	for _, id := range ids {
		groups[shardOf(id)] = append(groups[shardOf(id)], id)
	}
	for si := range groups {
		if len(groups[si]) == 0 {
			continue
		}
		sh := &s.tasks[si]
		sh.mu.RLock()
		for _, id := range groups[si] {
			if rec, ok := sh.m[id]; ok {
				out[id] = *rec
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// TransitionTask moves a task to state, enforcing the state machine.
func (s *Store) TransitionTask(id protocol.UUID, state protocol.TaskState) error {
	done, err := s.logMutation(Mutation{Op: OpTransitionTask, TaskIDs: []protocol.UUID{id}, State: state})
	if err != nil {
		return err
	}
	if done != nil {
		defer done()
	}
	sh := s.taskShard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.transitionLocked(sh, id, state)
}

// TransitionTasks moves a batch of tasks to state, one lock round trip per
// touched shard. The first per-task error is returned; remaining tasks
// still transition.
func (s *Store) TransitionTasks(ids []protocol.UUID, state protocol.TaskState) error {
	done, jerr := s.logMutation(Mutation{Op: OpTransitionTasks, TaskIDs: ids, State: state})
	if jerr != nil {
		return jerr
	}
	if done != nil {
		defer done()
	}
	var firstErr error
	var groups [taskShards][]protocol.UUID
	for _, id := range ids {
		groups[shardOf(id)] = append(groups[shardOf(id)], id)
	}
	for si := range groups {
		if len(groups[si]) == 0 {
			continue
		}
		sh := &s.tasks[si]
		sh.mu.Lock()
		for _, id := range groups[si] {
			if err := s.transitionLocked(sh, id, state); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		sh.mu.Unlock()
	}
	return firstErr
}

func (s *Store) transitionLocked(sh *taskShard, id protocol.UUID, state protocol.TaskState) error {
	rec, ok := sh.m[id]
	if !ok {
		return fmt.Errorf("%w: task %s", ErrNotFound, id)
	}
	if !legalNext[rec.State][state] {
		return fmt.Errorf("%w: %s -> %s (task %s)", ErrIllegalTransition, rec.State, state, id)
	}
	sh.counts[rec.State]--
	sh.counts[state]++
	rec.State = state
	rec.Updated = s.now()
	if state.Terminal() {
		rec.Completed = rec.Updated
	}
	return nil
}

// CompleteTask records a result and moves the task to its terminal state in
// one step (the result processor path).
func (s *Store) CompleteTask(res protocol.Result) error {
	if !res.State.Terminal() {
		return fmt.Errorf("statestore: CompleteTask with non-terminal state %s", res.State)
	}
	done, err := s.logMutation(Mutation{Op: OpCompleteTask, Result: &res})
	if err != nil {
		return err
	}
	if done != nil {
		defer done()
	}
	sh := s.taskShard(res.TaskID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.completeLocked(sh, res)
}

// CompleteTasks applies a batch of results, one lock round trip per touched
// shard. The returned slice is parallel to results: errs[i] is nil when
// results[i] was applied, so the caller can ack or dead-letter each source
// message individually.
func (s *Store) CompleteTasks(results []protocol.Result) []error {
	errs := make([]error, len(results))
	done, jerr := s.logMutation(Mutation{Op: OpCompleteTasks, Results: results})
	if jerr != nil {
		for i := range errs {
			errs[i] = jerr
		}
		return errs
	}
	if done != nil {
		defer done()
	}
	var groups [taskShards][]int
	for i, res := range results {
		if !res.State.Terminal() {
			errs[i] = fmt.Errorf("statestore: CompleteTask with non-terminal state %s", res.State)
			continue
		}
		groups[shardOf(res.TaskID)] = append(groups[shardOf(res.TaskID)], i)
	}
	for si := range groups {
		if len(groups[si]) == 0 {
			continue
		}
		sh := &s.tasks[si]
		sh.mu.Lock()
		for _, i := range groups[si] {
			errs[i] = s.completeLocked(sh, results[i])
		}
		sh.mu.Unlock()
	}
	return errs
}

func (s *Store) completeLocked(sh *taskShard, res protocol.Result) error {
	rec, ok := sh.m[res.TaskID]
	if !ok {
		return fmt.Errorf("%w: task %s", ErrNotFound, res.TaskID)
	}
	if err := s.transitionLocked(sh, res.TaskID, res.State); err != nil {
		return err
	}
	rec.Result = append([]byte(nil), res.Output...)
	rec.ResultRef = res.OutputRef
	rec.Error = res.Error
	return nil
}

// ListTasksByEndpoint returns the task IDs submitted to an endpoint in
// creation order.
func (s *Store) ListTasksByEndpoint(ep protocol.UUID) []protocol.UUID {
	ix := s.idxShard(ep)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ids := ix.m[ep]
	return append([]protocol.UUID(nil), ids...)
}

// CountTasksByState tallies tasks per state from the shards' incremental
// counters — fixed cost regardless of table size, so drain loops and
// dashboards can poll it without scanning (a 5ms poll over a large table
// used to dominate whole benchmark runs and starve the submit path of the
// shard locks).
func (s *Store) CountTasksByState() map[protocol.TaskState]int {
	out := make(map[protocol.TaskState]int)
	for si := range s.tasks {
		sh := &s.tasks[si]
		sh.mu.RLock()
		for st, n := range sh.counts {
			if n != 0 {
				out[st] += n
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// CountTasks returns the total number of tasks.
func (s *Store) CountTasks() int {
	n := 0
	for si := range s.tasks {
		sh := &s.tasks[si]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// PurgeTasksBefore deletes terminal task records completed before cutoff,
// implementing the service's bounded result retention ("results are stored
// in the cloud for up to two weeks"). It returns the number purged.
func (s *Store) PurgeTasksBefore(cutoff time.Time) int {
	done, jerr := s.logMutation(Mutation{Op: OpPurgeBefore, Cutoff: cutoff})
	if jerr != nil {
		return 0
	}
	if done != nil {
		defer done()
	}
	purged := 0
	for si := range s.tasks {
		sh := &s.tasks[si]
		sh.mu.Lock()
		for id, rec := range sh.m {
			if rec.State.Terminal() && !rec.Completed.IsZero() && rec.Completed.Before(cutoff) {
				delete(sh.m, id)
				sh.counts[rec.State]--
				purged++
				s.unindexTask(rec.Task.EndpointID, id)
			}
		}
		sh.mu.Unlock()
	}
	return purged
}

func (s *Store) unindexTask(ep, id protocol.UUID) {
	ix := s.idxShard(ep)
	ix.mu.Lock()
	ids := ix.m[ep]
	for i, tid := range ids {
		if tid == id {
			ix.m[ep] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	ix.mu.Unlock()
}

// --- durability ---

// snapshot is the JSON image of the full store.
type snapshot struct {
	Functions   []FunctionRecord    `json:"functions"`
	Endpoints   []EndpointRecord    `json:"endpoints"`
	Tasks         []TaskRecord         `json:"tasks"`
	Idempotency   []IdempotencyRecord  `json:"idempotency,omitempty"`
	RoutingGroups []RoutingGroupRecord `json:"routing_groups,omitempty"`
}

// Snapshot serializes the store to JSON. Each table (and task shard) is
// read-locked in turn, so the image is per-table consistent; like any
// periodic database dump it is a point-in-time approximation under
// concurrent writes.
func (s *Store) Snapshot() ([]byte, error) {
	var snap snapshot
	s.fnMu.RLock()
	for _, f := range s.functions {
		snap.Functions = append(snap.Functions, *f)
	}
	s.fnMu.RUnlock()
	s.epMu.RLock()
	for _, e := range s.endpoints {
		snap.Endpoints = append(snap.Endpoints, *e)
	}
	s.epMu.RUnlock()
	for si := range s.tasks {
		sh := &s.tasks[si]
		sh.mu.RLock()
		for _, t := range sh.m {
			snap.Tasks = append(snap.Tasks, *t)
		}
		sh.mu.RUnlock()
	}
	s.idem.mu.RLock()
	for _, rec := range s.idem.m {
		snap.Idempotency = append(snap.Idempotency, *rec)
	}
	s.idem.mu.RUnlock()
	s.groups.mu.RLock()
	for _, rec := range s.groups.m {
		snap.RoutingGroups = append(snap.RoutingGroups, *rec)
	}
	s.groups.mu.RUnlock()
	return json.Marshal(snap)
}

// SaveFile writes a snapshot atomically to path (the RDS substitute's
// durability story: periodic snapshots). The temp file is fsynced before the
// rename and the parent directory after it, so a crash at any point leaves
// either the old snapshot or the complete new one — never a torn or missing
// file.
func (s *Store) SaveFile(path string) error {
	img, err := s.Snapshot()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("statestore: save: %w", err)
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		return fmt.Errorf("statestore: save: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("statestore: save: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("statestore: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("statestore: save: %w", err)
	}
	// Sync the directory so the rename itself is durable.
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("statestore: save: %w", err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("statestore: save: sync dir: %w", err)
	}
	return nil
}

// LoadFile restores the store from a SaveFile snapshot.
func (s *Store) LoadFile(path string) error {
	img, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("statestore: load: %w", err)
	}
	return s.Restore(img)
}

// Restore replaces the store contents from a Snapshot image.
func (s *Store) Restore(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("statestore: restore: %w", err)
	}
	s.fnMu.Lock()
	s.functions = make(map[protocol.UUID]*FunctionRecord, len(snap.Functions))
	for i := range snap.Functions {
		f := snap.Functions[i]
		s.functions[f.ID] = &f
	}
	s.fnMu.Unlock()
	s.epMu.Lock()
	s.endpoints = make(map[protocol.UUID]*EndpointRecord, len(snap.Endpoints))
	for i := range snap.Endpoints {
		e := snap.Endpoints[i]
		s.endpoints[e.ID] = &e
	}
	s.epMu.Unlock()
	for si := range s.tasks {
		sh := &s.tasks[si]
		sh.mu.Lock()
		sh.m = make(map[protocol.UUID]*TaskRecord)
		sh.counts = make(map[protocol.TaskState]int)
		sh.mu.Unlock()
	}
	for si := range s.byEp {
		ix := &s.byEp[si]
		ix.mu.Lock()
		ix.m = make(map[protocol.UUID][]protocol.UUID)
		ix.mu.Unlock()
	}
	for i := range snap.Tasks {
		t := snap.Tasks[i]
		sh := s.taskShard(t.Task.ID)
		sh.mu.Lock()
		sh.m[t.Task.ID] = &t
		sh.counts[t.State]++
		sh.mu.Unlock()
		s.indexTask(t.Task.EndpointID, t.Task.ID)
	}
	s.idem.mu.Lock()
	s.idem.m = make(map[string]*IdempotencyRecord, len(snap.Idempotency))
	for i := range snap.Idempotency {
		rec := snap.Idempotency[i]
		s.idem.m[idemKey(rec.Owner, rec.Key)] = &rec
	}
	s.idem.mu.Unlock()
	s.groups.mu.Lock()
	s.groups.m = make(map[protocol.UUID]*RoutingGroupRecord, len(snap.RoutingGroups))
	for i := range snap.RoutingGroups {
		rec := snap.RoutingGroups[i]
		s.groups.m[rec.ID] = &rec
	}
	s.groups.mu.Unlock()
	return nil
}
