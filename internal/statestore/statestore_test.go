package statestore

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"globuscompute/internal/protocol"
)

func newTask(ep protocol.UUID) protocol.Task {
	return protocol.Task{ID: protocol.NewUUID(), FunctionID: protocol.NewUUID(), EndpointID: ep, Kind: protocol.KindPython}
}

func TestFunctionImmutable(t *testing.T) {
	s := New()
	id := protocol.NewUUID()
	rec := FunctionRecord{ID: id, Owner: "alice", Kind: protocol.KindPython, Definition: []byte("def")}
	if err := s.PutFunction(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.PutFunction(rec); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("re-register = %v, want ErrAlreadyExists", err)
	}
	got, err := s.GetFunction(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner != "alice" || string(got.Definition) != "def" {
		t.Errorf("got %+v", got)
	}
	if s.CountFunctions() != 1 {
		t.Errorf("CountFunctions = %d", s.CountFunctions())
	}
}

func TestFunctionInvalidID(t *testing.T) {
	s := New()
	if err := s.PutFunction(FunctionRecord{ID: "nope"}); err == nil {
		t.Error("PutFunction with bad ID succeeded")
	}
}

func TestFunctionDefinitionCopied(t *testing.T) {
	s := New()
	id := protocol.NewUUID()
	def := []byte("orig")
	s.PutFunction(FunctionRecord{ID: id, Definition: def})
	copy(def, "XXXX")
	got, _ := s.GetFunction(id)
	if string(got.Definition) != "orig" {
		t.Error("definition aliased caller buffer")
	}
}

func TestEndpointLifecycle(t *testing.T) {
	s := New()
	id := protocol.NewUUID()
	if err := s.UpsertEndpoint(EndpointRecord{ID: id, Name: "hpc", Owner: "bob", Status: EndpointOffline}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetEndpointStatus(id, EndpointOnline); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetEndpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != EndpointOnline {
		t.Errorf("status = %s", got.Status)
	}
	if got.LastHeartbeat.IsZero() {
		t.Error("heartbeat not stamped")
	}
	if err := s.SetEndpointStatus(protocol.NewUUID(), EndpointOnline); !errors.Is(err, ErrNotFound) {
		t.Errorf("status of missing endpoint = %v", err)
	}
}

func TestEndpointRegisteredPreservedOnUpsert(t *testing.T) {
	s := New()
	base := time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)
	s.SetClock(func() time.Time { return base })
	id := protocol.NewUUID()
	s.UpsertEndpoint(EndpointRecord{ID: id, Name: "v1"})
	s.SetClock(func() time.Time { return base.Add(time.Hour) })
	s.UpsertEndpoint(EndpointRecord{ID: id, Name: "v2"})
	got, _ := s.GetEndpoint(id)
	if !got.Registered.Equal(base) {
		t.Errorf("Registered = %v, want original %v", got.Registered, base)
	}
	if got.Name != "v2" {
		t.Errorf("Name = %s, want v2", got.Name)
	}
}

func TestListEndpointsFilters(t *testing.T) {
	s := New()
	mep := protocol.NewUUID()
	s.UpsertEndpoint(EndpointRecord{ID: mep, Owner: "admin", MultiUser: true, Status: EndpointOnline})
	for i := 0; i < 3; i++ {
		s.UpsertEndpoint(EndpointRecord{ID: protocol.NewUUID(), Owner: "user", Parent: mep, Status: EndpointOnline})
	}
	s.UpsertEndpoint(EndpointRecord{ID: protocol.NewUUID(), Owner: "user", Status: EndpointOffline})

	tr := true
	if got := s.ListEndpoints(EndpointFilter{MultiUser: &tr}); len(got) != 1 {
		t.Errorf("multi-user endpoints = %d, want 1", len(got))
	}
	if got := s.ListEndpoints(EndpointFilter{Parent: mep}); len(got) != 3 {
		t.Errorf("children = %d, want 3", len(got))
	}
	if got := s.ListEndpoints(EndpointFilter{Status: EndpointOffline}); len(got) != 1 {
		t.Errorf("offline = %d, want 1", len(got))
	}
	if got := s.ListEndpoints(EndpointFilter{Owner: "admin"}); len(got) != 1 {
		t.Errorf("admin-owned = %d, want 1", len(got))
	}
	if s.CountEndpoints() != 5 {
		t.Errorf("CountEndpoints = %d", s.CountEndpoints())
	}
}

func TestTaskHappyPath(t *testing.T) {
	s := New()
	ep := protocol.NewUUID()
	task := newTask(ep)
	if err := s.CreateTask(task); err != nil {
		t.Fatal(err)
	}
	for _, st := range []protocol.TaskState{protocol.StateWaiting, protocol.StateDelivered, protocol.StateRunning} {
		if err := s.TransitionTask(task.ID, st); err != nil {
			t.Fatalf("to %s: %v", st, err)
		}
	}
	if err := s.CompleteTask(protocol.Result{TaskID: task.ID, State: protocol.StateSuccess, Output: []byte("42")}); err != nil {
		t.Fatal(err)
	}
	rec, _ := s.GetTask(task.ID)
	if rec.State != protocol.StateSuccess || string(rec.Result) != "42" {
		t.Errorf("record = %+v", rec)
	}
	if rec.Completed.IsZero() {
		t.Error("Completed not stamped")
	}
}

// TestResultOutrunsDeliveryAck covers the submit-path race: the submitter
// publishes to the broker before acking Delivered, so a fast agent's result
// can arrive while the record still reads waiting. The result must record
// (waiting -> success is legal), and the late Delivered ack must bounce off
// the terminal state instead of disturbing it.
func TestResultOutrunsDeliveryAck(t *testing.T) {
	s := New()
	task := newTask(protocol.NewUUID())
	if err := s.CreateTask(task); err != nil {
		t.Fatal(err)
	}
	if err := s.TransitionTask(task.ID, protocol.StateWaiting); err != nil {
		t.Fatal(err)
	}
	if err := s.CompleteTask(protocol.Result{TaskID: task.ID, State: protocol.StateSuccess, Output: []byte("42")}); err != nil {
		t.Fatalf("result while waiting = %v, want recorded", err)
	}
	if err := s.TransitionTask(task.ID, protocol.StateDelivered); !errors.Is(err, ErrIllegalTransition) {
		t.Fatalf("late delivery ack = %v, want ErrIllegalTransition", err)
	}
	rec, _ := s.GetTask(task.ID)
	if rec.State != protocol.StateSuccess || string(rec.Result) != "42" {
		t.Fatalf("record = %+v", rec)
	}
}

func TestTaskIllegalTransitions(t *testing.T) {
	s := New()
	task := newTask(protocol.NewUUID())
	s.CreateTask(task)
	// received -> running skips delivery
	if err := s.TransitionTask(task.ID, protocol.StateRunning); !errors.Is(err, ErrIllegalTransition) {
		t.Errorf("received->running = %v", err)
	}
	s.TransitionTask(task.ID, protocol.StateCancelled)
	// cancelled is terminal: nothing may follow
	for _, st := range []protocol.TaskState{protocol.StateRunning, protocol.StateSuccess, protocol.StateFailed, protocol.StateWaiting} {
		if err := s.TransitionTask(task.ID, st); !errors.Is(err, ErrIllegalTransition) {
			t.Errorf("cancelled->%s = %v, want ErrIllegalTransition", st, err)
		}
	}
}

func TestCompleteTaskRejectsNonTerminal(t *testing.T) {
	s := New()
	task := newTask(protocol.NewUUID())
	s.CreateTask(task)
	if err := s.CompleteTask(protocol.Result{TaskID: task.ID, State: protocol.StateRunning}); err == nil {
		t.Error("CompleteTask with running state succeeded")
	}
}

func TestCompleteTaskFromDeliveredDirectly(t *testing.T) {
	// Fast tasks may report success before the service ever saw "running".
	s := New()
	task := newTask(protocol.NewUUID())
	s.CreateTask(task)
	s.TransitionTask(task.ID, protocol.StateDelivered)
	if err := s.CompleteTask(protocol.Result{TaskID: task.ID, State: protocol.StateSuccess}); err != nil {
		t.Errorf("delivered->success = %v", err)
	}
}

func TestDuplicateTask(t *testing.T) {
	s := New()
	task := newTask(protocol.NewUUID())
	s.CreateTask(task)
	if err := s.CreateTask(task); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("duplicate = %v", err)
	}
}

func TestListTasksByEndpointOrdered(t *testing.T) {
	s := New()
	ep := protocol.NewUUID()
	var ids []protocol.UUID
	for i := 0; i < 5; i++ {
		task := newTask(ep)
		ids = append(ids, task.ID)
		s.CreateTask(task)
	}
	s.CreateTask(newTask(protocol.NewUUID())) // different endpoint
	got := s.ListTasksByEndpoint(ep)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Errorf("order mismatch at %d", i)
		}
	}
}

func TestCountTasksByState(t *testing.T) {
	s := New()
	for i := 0; i < 3; i++ {
		s.CreateTask(newTask(protocol.NewUUID()))
	}
	task := newTask(protocol.NewUUID())
	s.CreateTask(task)
	s.TransitionTask(task.ID, protocol.StateWaiting)
	counts := s.CountTasksByState()
	if counts[protocol.StateReceived] != 3 || counts[protocol.StateWaiting] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if s.CountTasks() != 4 {
		t.Errorf("CountTasks = %d", s.CountTasks())
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New()
	fid := protocol.NewUUID()
	s.PutFunction(FunctionRecord{ID: fid, Owner: "o", Definition: []byte("d")})
	ep := protocol.NewUUID()
	s.UpsertEndpoint(EndpointRecord{ID: ep, Name: "e"})
	task := newTask(ep)
	s.CreateTask(task)
	s.TransitionTask(task.ID, protocol.StateWaiting)

	img, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if err := s2.Restore(img); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.GetFunction(fid); err != nil {
		t.Errorf("function lost: %v", err)
	}
	if _, err := s2.GetEndpoint(ep); err != nil {
		t.Errorf("endpoint lost: %v", err)
	}
	rec, err := s2.GetTask(task.ID)
	if err != nil {
		t.Fatalf("task lost: %v", err)
	}
	if rec.State != protocol.StateWaiting {
		t.Errorf("state = %s", rec.State)
	}
	if got := s2.ListTasksByEndpoint(ep); len(got) != 1 {
		t.Errorf("index not rebuilt: %d", len(got))
	}
	// State machine still enforced after restore.
	if err := s2.TransitionTask(task.ID, protocol.StateRunning); !errors.Is(err, ErrIllegalTransition) {
		t.Errorf("restored store allowed illegal transition: %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	s := New()
	fid := protocol.NewUUID()
	s.PutFunction(FunctionRecord{ID: fid, Owner: "o", Definition: []byte("d")})
	path := t.TempDir() + "/state.json"
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.GetFunction(fid); err != nil {
		t.Errorf("function lost across save/load: %v", err)
	}
	if err := s2.LoadFile(path + ".missing"); err == nil {
		t.Error("LoadFile of missing path succeeded")
	}
}

func TestRestoreBadData(t *testing.T) {
	s := New()
	if err := s.Restore([]byte("{")); err == nil {
		t.Error("Restore of garbage succeeded")
	}
}

func TestConcurrentTransitions(t *testing.T) {
	// Racing completers: exactly one terminal transition must win.
	s := New()
	task := newTask(protocol.NewUUID())
	s.CreateTask(task)
	s.TransitionTask(task.ID, protocol.StateDelivered)
	var wg sync.WaitGroup
	wins := make(chan protocol.TaskState, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		st := protocol.StateSuccess
		if i%2 == 1 {
			st = protocol.StateFailed
		}
		go func(st protocol.TaskState) {
			defer wg.Done()
			if err := s.CompleteTask(protocol.Result{TaskID: task.ID, State: st}); err == nil {
				wins <- st
			}
		}(st)
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Errorf("%d terminal transitions succeeded, want exactly 1", n)
	}
}

func TestPropertyExactlyOneTerminal(t *testing.T) {
	// Random walks through the transition map never escape a terminal
	// state and always can reach one.
	states := []protocol.TaskState{
		protocol.StateWaiting, protocol.StateDelivered, protocol.StateRunning,
		protocol.StateSuccess, protocol.StateFailed, protocol.StateCancelled,
	}
	f := func(moves []uint8) bool {
		s := New()
		task := newTask(protocol.NewUUID())
		s.CreateTask(task)
		terminal := 0
		for _, m := range moves {
			st := states[int(m)%len(states)]
			if err := s.TransitionTask(task.ID, st); err == nil && st.Terminal() {
				terminal++
			}
		}
		rec, _ := s.GetTask(task.ID)
		if terminal > 1 {
			return false
		}
		if terminal == 1 && !rec.State.Terminal() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
