package statestore

import (
	"fmt"
	"sync"
	"time"

	"globuscompute/internal/protocol"
)

// Routing groups: a group UUID stands in for an endpoint UUID at submit
// time, and the web service fans each task across the group's members
// through a placement policy (see internal/placement). The table is
// journaled — group membership is control-plane state that must survive a
// -data-dir restart, unlike the ephemeral load reports the policies score
// on.

// RoutingGroupRecord is one registered routing group.
type RoutingGroupRecord struct {
	ID    protocol.UUID `json:"id"`
	Name  string        `json:"name"`
	Owner string        `json:"owner"`
	// Policy names the placement policy ("random", "round-robin",
	// "least-backlog", "p2c"); empty uses the service default.
	Policy  string          `json:"policy,omitempty"`
	Members []protocol.UUID `json:"members"`
	Created time.Time       `json:"created"`
}

// groupTable is the routing-group table; its own lock keeps group reads off
// the endpoint table's mutex.
type groupTable struct {
	mu sync.RWMutex
	m  map[protocol.UUID]*RoutingGroupRecord
}

func (t *groupTable) init() { t.m = make(map[protocol.UUID]*RoutingGroupRecord) }

// PutRoutingGroup inserts or replaces a routing group (replacement updates
// membership and policy; Created is preserved). The write is journaled.
func (s *Store) PutRoutingGroup(rec RoutingGroupRecord) error {
	if !rec.ID.Valid() {
		return fmt.Errorf("statestore: invalid routing group ID %q", rec.ID)
	}
	if len(rec.Members) == 0 {
		return fmt.Errorf("statestore: routing group %s has no members", rec.ID)
	}
	rec.Members = append([]protocol.UUID(nil), rec.Members...)
	// Resolve Created before journaling so the WAL carries the same record
	// the table keeps: a replay after crash must not re-stamp the group's
	// creation time with the replay-time clock.
	if rec.Created.IsZero() {
		s.groups.mu.RLock()
		old, ok := s.groups.m[rec.ID]
		s.groups.mu.RUnlock()
		if ok {
			rec.Created = old.Created
		} else {
			rec.Created = s.now()
		}
	}
	done, err := s.logMutation(Mutation{Op: OpPutRoutingGroup, RoutingGroup: &rec})
	if err != nil {
		return err
	}
	if done != nil {
		defer done()
	}
	s.groups.mu.Lock()
	defer s.groups.mu.Unlock()
	s.groups.m[rec.ID] = &rec
	return nil
}

// GetRoutingGroup fetches a routing group record.
func (s *Store) GetRoutingGroup(id protocol.UUID) (RoutingGroupRecord, error) {
	s.groups.mu.RLock()
	defer s.groups.mu.RUnlock()
	rec, ok := s.groups.m[id]
	if !ok {
		return RoutingGroupRecord{}, fmt.Errorf("%w: routing group %s", ErrNotFound, id)
	}
	out := *rec
	out.Members = append([]protocol.UUID(nil), rec.Members...)
	return out, nil
}

// ListRoutingGroups returns all routing groups, optionally filtered by
// owner.
func (s *Store) ListRoutingGroups(owner string) []RoutingGroupRecord {
	s.groups.mu.RLock()
	defer s.groups.mu.RUnlock()
	var out []RoutingGroupRecord
	for _, rec := range s.groups.m {
		if owner != "" && rec.Owner != owner {
			continue
		}
		cp := *rec
		cp.Members = append([]protocol.UUID(nil), rec.Members...)
		out = append(out, cp)
	}
	return out
}

// CountRoutingGroups returns the number of registered routing groups.
func (s *Store) CountRoutingGroups() int {
	s.groups.mu.RLock()
	defer s.groups.mu.RUnlock()
	return len(s.groups.m)
}
