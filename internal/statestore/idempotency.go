package statestore

import (
	"fmt"
	"sync"
	"time"

	"globuscompute/internal/protocol"
)

// Idempotent submit: a client may attach an idempotency key to a submit
// batch; the webservice records (owner, key) -> task IDs here after the
// batch is created, and a retried POST with the same key returns the
// original IDs instead of enqueueing duplicates. The table is journaled
// through the same write-ahead hook as every other mutation, so with
// -data-dir set the dedup map survives restarts — the retried POST after a
// crash still finds the original IDs. Keys are scoped per owner, so two
// tenants can't collide (or probe) each other's keys.

// IdempotencyRecord maps one client-supplied submit key to the task IDs the
// original request created.
type IdempotencyRecord struct {
	Owner   string          `json:"owner"`
	Key     string          `json:"key"`
	TaskIDs []protocol.UUID `json:"task_ids"`
	Created time.Time       `json:"created"`
}

// idemTable is the (owner, key) -> record map with its own lock; it is far
// colder than the task shards and never contends with them.
type idemTable struct {
	mu sync.RWMutex
	m  map[string]*IdempotencyRecord
}

func idemKey(owner, key string) string { return owner + "\x00" + key }

func (t *idemTable) init() {
	t.m = make(map[string]*IdempotencyRecord)
}

// PutIdempotency records the task IDs created for (owner, key). A second
// put for the same pair fails with ErrAlreadyExists — live callers check
// GetIdempotency first under their own key mutex, and recovery replay
// skips the duplicate exactly like a duplicate task create.
func (s *Store) PutIdempotency(owner, key string, taskIDs []protocol.UUID) error {
	if key == "" {
		return fmt.Errorf("statestore: empty idempotency key")
	}
	rec := IdempotencyRecord{
		Owner:   owner,
		Key:     key,
		TaskIDs: append([]protocol.UUID(nil), taskIDs...),
		Created: s.now(),
	}
	done, err := s.logMutation(Mutation{Op: OpPutIdempotency, Idempotency: &rec})
	if err != nil {
		return err
	}
	if done != nil {
		defer done()
	}
	k := idemKey(owner, key)
	s.idem.mu.Lock()
	defer s.idem.mu.Unlock()
	if _, ok := s.idem.m[k]; ok {
		return fmt.Errorf("%w: idempotency key %q", ErrAlreadyExists, key)
	}
	s.idem.m[k] = &rec
	return nil
}

// GetIdempotency returns the task IDs recorded for (owner, key), if any.
func (s *Store) GetIdempotency(owner, key string) ([]protocol.UUID, bool) {
	s.idem.mu.RLock()
	defer s.idem.mu.RUnlock()
	rec, ok := s.idem.m[idemKey(owner, key)]
	if !ok {
		return nil, false
	}
	return append([]protocol.UUID(nil), rec.TaskIDs...), true
}

// CountIdempotency returns the number of recorded keys.
func (s *Store) CountIdempotency() int {
	s.idem.mu.RLock()
	defer s.idem.mu.RUnlock()
	return len(s.idem.m)
}

// PurgeIdempotencyBefore deletes idempotency records created before cutoff
// (bounded retention, same policy shape as PurgeTasksBefore: a key only
// guards against retries within the retention window). Returns the number
// purged.
func (s *Store) PurgeIdempotencyBefore(cutoff time.Time) int {
	done, jerr := s.logMutation(Mutation{Op: OpPurgeIdempotency, Cutoff: cutoff})
	if jerr != nil {
		return 0
	}
	if done != nil {
		defer done()
	}
	s.idem.mu.Lock()
	defer s.idem.mu.Unlock()
	purged := 0
	for k, rec := range s.idem.m {
		if rec.Created.Before(cutoff) {
			delete(s.idem.m, k)
			purged++
		}
	}
	return purged
}
