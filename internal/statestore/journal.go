package statestore

import (
	"fmt"
	"time"

	"globuscompute/internal/protocol"
)

// Write-ahead journaling: when a Journal is attached, every mutating
// operation is logged — and must be durable — before it touches memory, so
// a crashed process can rebuild the store by replaying the log onto the
// last snapshot. The journal records logical operations, not row images;
// replay re-executes them through the same state machine, so an op that was
// rejected live (duplicate create, illegal transition) is rejected again on
// replay and the exactly-one-terminal-state guarantee survives recovery.
//
// SetEndpointLoad is deliberately not journaled: load reports are ephemeral
// telemetry refreshed by the next heartbeat, not state worth an fsync.

// MutationOp names a journaled statestore operation.
type MutationOp string

// Journaled operations.
const (
	OpPutFunction       MutationOp = "put_function"
	OpUpsertEndpoint    MutationOp = "upsert_endpoint"
	OpSetEndpointStatus MutationOp = "set_endpoint_status"
	OpCreateTask        MutationOp = "create_task"
	OpCreateTasks       MutationOp = "create_tasks"
	OpTransitionTask    MutationOp = "transition_task"
	OpTransitionTasks   MutationOp = "transition_tasks"
	OpCompleteTask      MutationOp = "complete_task"
	OpCompleteTasks     MutationOp = "complete_tasks"
	OpPurgeBefore       MutationOp = "purge_before"
	OpPutIdempotency    MutationOp = "put_idempotency"
	OpPurgeIdempotency  MutationOp = "purge_idempotency"
	OpPutRoutingGroup   MutationOp = "put_routing_group"
)

// Mutation is one journaled operation. Only the fields relevant to Op are
// populated; At carries the live operation's clock so replayed records keep
// their original timestamps.
type Mutation struct {
	Op MutationOp `json:"op"`
	At time.Time  `json:"at"`

	Function    *FunctionRecord    `json:"function,omitempty"`
	Endpoint    *EndpointRecord    `json:"endpoint,omitempty"`
	EndpointID  protocol.UUID      `json:"endpoint_id,omitempty"`
	Status      EndpointStatus     `json:"status,omitempty"`
	Task        *protocol.Task     `json:"task,omitempty"`
	Tasks       []protocol.Task    `json:"tasks,omitempty"`
	TaskIDs     []protocol.UUID    `json:"task_ids,omitempty"`
	State       protocol.TaskState `json:"state,omitempty"`
	Result      *protocol.Result   `json:"result,omitempty"`
	Results     []protocol.Result  `json:"results,omitempty"`
	Cutoff       time.Time           `json:"cutoff,omitempty"`
	Idempotency  *IdempotencyRecord  `json:"idempotency,omitempty"`
	RoutingGroup *RoutingGroupRecord `json:"routing_group,omitempty"`
}

// Journal is the write-ahead hook. LogMutation must make m durable before
// returning; the returned applied func is called (exactly once) after the
// mutation is visible in memory, which lets the journal track the safe
// snapshot horizon — the LSN below which every logged mutation is reflected
// in a Snapshot taken now.
type Journal interface {
	LogMutation(m Mutation) (applied func(), err error)
}

// SetJournal attaches the write-ahead journal. It must be called before the
// store serves traffic (typically right after recovery replay) and is not
// synchronized against in-flight mutations.
func (s *Store) SetJournal(j Journal) { s.jrnl = j }

// logMutation journals m (stamping At from the store clock) and returns the
// applied callback, or (nil, nil) when no journal is attached.
func (s *Store) logMutation(m Mutation) (func(), error) {
	j := s.jrnl
	if j == nil {
		return nil, nil
	}
	if m.At.IsZero() {
		m.At = s.now()
	}
	done, err := j.LogMutation(m)
	if err != nil {
		return nil, fmt.Errorf("statestore: journal: %w", err)
	}
	return done, nil
}

// ApplyMutation re-executes a journaled operation during recovery replay,
// with the store clock pinned to the record's original timestamp. It must
// only be called before the store serves traffic (replay is single
// threaded), and with no journal attached. Errors mirror the live
// operation's errors — a replayed duplicate or illegal transition fails
// exactly as it did live, and the caller skips it.
func (s *Store) ApplyMutation(m Mutation) error {
	if !m.At.IsZero() {
		saved := s.now
		at := m.At
		s.now = func() time.Time { return at }
		defer func() { s.now = saved }()
	}
	switch m.Op {
	case OpPutFunction:
		if m.Function == nil {
			return fmt.Errorf("statestore: replay %s: missing function", m.Op)
		}
		return s.PutFunction(*m.Function)
	case OpUpsertEndpoint:
		if m.Endpoint == nil {
			return fmt.Errorf("statestore: replay %s: missing endpoint", m.Op)
		}
		return s.UpsertEndpoint(*m.Endpoint)
	case OpSetEndpointStatus:
		return s.SetEndpointStatus(m.EndpointID, m.Status)
	case OpCreateTask:
		if m.Task == nil {
			return fmt.Errorf("statestore: replay %s: missing task", m.Op)
		}
		return s.CreateTask(*m.Task)
	case OpCreateTasks:
		return s.CreateTasks(m.Tasks)
	case OpTransitionTask:
		if len(m.TaskIDs) != 1 {
			return fmt.Errorf("statestore: replay %s: want 1 task ID, got %d", m.Op, len(m.TaskIDs))
		}
		return s.TransitionTask(m.TaskIDs[0], m.State)
	case OpTransitionTasks:
		return s.TransitionTasks(m.TaskIDs, m.State)
	case OpCompleteTask:
		if m.Result == nil {
			return fmt.Errorf("statestore: replay %s: missing result", m.Op)
		}
		return s.CompleteTask(*m.Result)
	case OpCompleteTasks:
		errs := s.CompleteTasks(m.Results)
		for _, err := range errs {
			if err != nil {
				return err // first error, matching the live batch contract
			}
		}
		return nil
	case OpPurgeBefore:
		s.PurgeTasksBefore(m.Cutoff)
		return nil
	case OpPutIdempotency:
		if m.Idempotency == nil {
			return fmt.Errorf("statestore: replay %s: missing record", m.Op)
		}
		return s.PutIdempotency(m.Idempotency.Owner, m.Idempotency.Key, m.Idempotency.TaskIDs)
	case OpPurgeIdempotency:
		s.PurgeIdempotencyBefore(m.Cutoff)
		return nil
	case OpPutRoutingGroup:
		if m.RoutingGroup == nil {
			return fmt.Errorf("statestore: replay %s: missing routing group", m.Op)
		}
		return s.PutRoutingGroup(*m.RoutingGroup)
	default:
		return fmt.Errorf("statestore: replay: unknown op %q", m.Op)
	}
}
