package statestore

import (
	"errors"
	"testing"
	"time"

	"globuscompute/internal/protocol"
)

func TestRoutingGroupCRUD(t *testing.T) {
	s := New()
	g := RoutingGroupRecord{
		ID: protocol.NewUUID(), Name: "fleet", Owner: "alice",
		Policy:  "p2c",
		Members: []protocol.UUID{protocol.NewUUID(), protocol.NewUUID()},
	}
	if err := s.PutRoutingGroup(g); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetRoutingGroup(g.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "fleet" || got.Policy != "p2c" || len(got.Members) != 2 || got.Created.IsZero() {
		t.Fatalf("bad record: %+v", got)
	}
	// Upsert updates membership, preserves Created.
	g2 := g
	g2.Members = append(g2.Members, protocol.NewUUID())
	if err := s.PutRoutingGroup(g2); err != nil {
		t.Fatal(err)
	}
	got2, _ := s.GetRoutingGroup(g.ID)
	if len(got2.Members) != 3 || !got2.Created.Equal(got.Created) {
		t.Fatalf("upsert: members=%d created %v vs %v", len(got2.Members), got2.Created, got.Created)
	}
	if n := s.CountRoutingGroups(); n != 1 {
		t.Fatalf("count = %d", n)
	}
	if l := s.ListRoutingGroups("alice"); len(l) != 1 {
		t.Fatalf("list alice = %d", len(l))
	}
	if l := s.ListRoutingGroups("bob"); len(l) != 0 {
		t.Fatalf("list bob = %d", len(l))
	}
	if _, err := s.GetRoutingGroup(protocol.NewUUID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing group err = %v", err)
	}
	if err := s.PutRoutingGroup(RoutingGroupRecord{ID: "bad"}); err == nil {
		t.Fatal("accepted invalid ID")
	}
	if err := s.PutRoutingGroup(RoutingGroupRecord{ID: protocol.NewUUID()}); err == nil {
		t.Fatal("accepted empty membership")
	}
}

func TestRoutingGroupSnapshotRestore(t *testing.T) {
	s := New()
	g := RoutingGroupRecord{
		ID: protocol.NewUUID(), Name: "fleet", Owner: "alice",
		Members: []protocol.UUID{protocol.NewUUID()},
	}
	if err := s.PutRoutingGroup(g); err != nil {
		t.Fatal(err)
	}
	img, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if err := s2.Restore(img); err != nil {
		t.Fatal(err)
	}
	got, err := s2.GetRoutingGroup(g.ID)
	if err != nil || got.Name != "fleet" || len(got.Members) != 1 {
		t.Fatalf("restored = %+v, %v", got, err)
	}
}

// journalRecorder captures mutations for replay assertions.
type journalRecorder struct{ muts []Mutation }

func (j *journalRecorder) LogMutation(m Mutation) (func(), error) {
	j.muts = append(j.muts, m)
	return nil, nil
}

func TestRoutingGroupJournalReplay(t *testing.T) {
	s := New()
	j := &journalRecorder{}
	s.SetJournal(j)
	created := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	g := RoutingGroupRecord{
		ID: protocol.NewUUID(), Name: "fleet", Owner: "alice",
		Members: []protocol.UUID{protocol.NewUUID()},
		Created: created,
	}
	if err := s.PutRoutingGroup(g); err != nil {
		t.Fatal(err)
	}
	if len(j.muts) != 1 || j.muts[0].Op != OpPutRoutingGroup {
		t.Fatalf("journaled %+v", j.muts)
	}
	// Replay onto a fresh store reproduces the record with its original
	// timestamp.
	s2 := New()
	for _, m := range j.muts {
		if err := s2.ApplyMutation(m); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s2.GetRoutingGroup(g.ID)
	if err != nil || got.Owner != "alice" {
		t.Fatalf("replayed = %+v, %v", got, err)
	}
	if !got.Created.Equal(created) {
		t.Fatalf("replayed Created %v != %v", got.Created, created)
	}
}

// TestRoutingGroupJournalStampsCreated covers the create path (no Created on
// the incoming record): the journaled mutation must already carry the stamped
// Created, so a replay at a later clock reproduces the original creation
// time instead of re-stamping it.
func TestRoutingGroupJournalStampsCreated(t *testing.T) {
	s := New()
	j := &journalRecorder{}
	s.SetJournal(j)
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	s.SetClock(func() time.Time { return t0 })
	g := RoutingGroupRecord{
		ID: protocol.NewUUID(), Name: "fleet", Owner: "alice",
		Members: []protocol.UUID{protocol.NewUUID()},
	}
	if err := s.PutRoutingGroup(g); err != nil {
		t.Fatal(err)
	}
	if len(j.muts) != 1 || j.muts[0].RoutingGroup == nil {
		t.Fatalf("journaled %+v", j.muts)
	}
	if !j.muts[0].RoutingGroup.Created.Equal(t0) {
		t.Fatalf("journaled Created = %v, want %v (stamped before logging)",
			j.muts[0].RoutingGroup.Created, t0)
	}
	s2 := New()
	s2.SetClock(func() time.Time { return t0.Add(time.Hour) })
	for _, m := range j.muts {
		if err := s2.ApplyMutation(m); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s2.GetRoutingGroup(g.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Created.Equal(t0) {
		t.Fatalf("replayed Created = %v, want %v", got.Created, t0)
	}
}

func TestSetEndpointLoadStampsLoadAt(t *testing.T) {
	s := New()
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	s.SetClock(func() time.Time { return t0 })
	ep := protocol.NewUUID()
	if err := s.UpsertEndpoint(EndpointRecord{ID: ep, Owner: "a", Status: EndpointOnline}); err != nil {
		t.Fatal(err)
	}
	rec, _ := s.GetEndpoint(ep)
	if age := rec.LoadAge(t0); age != -1 {
		t.Fatalf("LoadAge before any report = %v, want -1", age)
	}
	if err := s.SetEndpointLoad(ep, EndpointLoad{PendingTasks: 3}); err != nil {
		t.Fatal(err)
	}
	rec, _ = s.GetEndpoint(ep)
	if !rec.LoadAt.Equal(t0) {
		t.Fatalf("LoadAt = %v, want %v", rec.LoadAt, t0)
	}
	if age := rec.LoadAge(t0.Add(5 * time.Second)); age != 5*time.Second {
		t.Fatalf("LoadAge = %v, want 5s", age)
	}
}

func TestGetEndpointsBatch(t *testing.T) {
	s := New()
	var ids []protocol.UUID
	for i := 0; i < 5; i++ {
		id := protocol.NewUUID()
		ids = append(ids, id)
		if err := s.UpsertEndpoint(EndpointRecord{ID: id, Owner: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	got := s.GetEndpoints(append(ids[:3:3], protocol.NewUUID()))
	if len(got) != 3 {
		t.Fatalf("got %d records, want 3 (missing skipped)", len(got))
	}
	for i, rec := range got {
		if rec.ID != ids[i] {
			t.Fatalf("order not preserved: %v", got)
		}
	}
}
