package statestore

import (
	"errors"
	"testing"
	"time"

	"globuscompute/internal/protocol"
)

func TestIdempotencyPutGet(t *testing.T) {
	s := New()
	ids := []protocol.UUID{protocol.NewUUID(), protocol.NewUUID()}
	if err := s.PutIdempotency("alice", "k1", ids); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetIdempotency("alice", "k1")
	if !ok || len(got) != 2 || got[0] != ids[0] || got[1] != ids[1] {
		t.Fatalf("get = %v, %v", got, ok)
	}
	// Duplicate put is rejected (replay-skip semantics).
	if err := s.PutIdempotency("alice", "k1", ids); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("duplicate put err = %v", err)
	}
	// Keys are owner-scoped: bob can't see or collide with alice's key.
	if _, ok := s.GetIdempotency("bob", "k1"); ok {
		t.Fatal("cross-owner key leak")
	}
	if err := s.PutIdempotency("bob", "k1", ids[:1]); err != nil {
		t.Fatal(err)
	}
	// Empty keys are invalid.
	if err := s.PutIdempotency("alice", "", ids); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestIdempotencySnapshotRoundtrip(t *testing.T) {
	s := New()
	ids := []protocol.UUID{protocol.NewUUID()}
	if err := s.PutIdempotency("alice", "k1", ids); err != nil {
		t.Fatal(err)
	}
	img, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if err := s2.Restore(img); err != nil {
		t.Fatal(err)
	}
	got, ok := s2.GetIdempotency("alice", "k1")
	if !ok || len(got) != 1 || got[0] != ids[0] {
		t.Fatalf("restored get = %v, %v", got, ok)
	}
	if s2.CountIdempotency() != 1 {
		t.Fatalf("count = %d", s2.CountIdempotency())
	}
}

func TestIdempotencyPurge(t *testing.T) {
	s := New()
	base := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return base })
	s.PutIdempotency("a", "old", nil)
	s.SetClock(func() time.Time { return base.Add(time.Hour) })
	s.PutIdempotency("a", "new", nil)
	if n := s.PurgeIdempotencyBefore(base.Add(time.Minute)); n != 1 {
		t.Fatalf("purged %d, want 1", n)
	}
	if _, ok := s.GetIdempotency("a", "old"); ok {
		t.Fatal("old key survived purge")
	}
	if _, ok := s.GetIdempotency("a", "new"); !ok {
		t.Fatal("new key purged")
	}
}

func TestIdempotencyReplay(t *testing.T) {
	s := New()
	rec := IdempotencyRecord{Owner: "a", Key: "k", TaskIDs: []protocol.UUID{protocol.NewUUID()}}
	m := Mutation{Op: OpPutIdempotency, At: time.Unix(2000, 0), Idempotency: &rec}
	if err := s.ApplyMutation(m); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetIdempotency("a", "k")
	if !ok || len(got) != 1 {
		t.Fatalf("replayed get = %v, %v", got, ok)
	}
	// Replaying the same record again rejects, like a duplicate create.
	if err := s.ApplyMutation(m); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("duplicate replay err = %v", err)
	}
}
