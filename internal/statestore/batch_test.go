package statestore

import (
	"errors"
	"fmt"
	"testing"

	"globuscompute/internal/protocol"
)

func makeTasks(n int, ep protocol.UUID) []protocol.Task {
	tasks := make([]protocol.Task, n)
	for i := range tasks {
		tasks[i] = protocol.Task{ID: protocol.NewUUID(), EndpointID: ep, Kind: protocol.KindPython}
	}
	return tasks
}

func TestCreateTasksBatchLifecycle(t *testing.T) {
	s := New()
	ep := protocol.NewUUID()
	tasks := makeTasks(50, ep)
	if err := s.CreateTasks(tasks); err != nil {
		t.Fatal(err)
	}
	if got := s.CountTasks(); got != 50 {
		t.Fatalf("CountTasks = %d, want 50", got)
	}
	// Creation order must be preserved in the per-endpoint index.
	ids := s.ListTasksByEndpoint(ep)
	if len(ids) != 50 {
		t.Fatalf("ListTasksByEndpoint = %d ids, want 50", len(ids))
	}
	for i, id := range ids {
		if id != tasks[i].ID {
			t.Fatalf("index[%d] = %s, want %s (creation order)", i, id, tasks[i].ID)
		}
	}

	allIDs := make([]protocol.UUID, len(tasks))
	for i, task := range tasks {
		allIDs[i] = task.ID
	}
	if err := s.TransitionTasks(allIDs, protocol.StateWaiting); err != nil {
		t.Fatal(err)
	}
	if err := s.TransitionTasks(allIDs, protocol.StateDelivered); err != nil {
		t.Fatal(err)
	}
	results := make([]protocol.Result, len(tasks))
	for i, task := range tasks {
		results[i] = protocol.Result{TaskID: task.ID, State: protocol.StateSuccess, Output: []byte(fmt.Sprintf("out-%d", i))}
	}
	for i, err := range s.CompleteTasks(results) {
		if err != nil {
			t.Fatalf("CompleteTasks[%d]: %v", i, err)
		}
	}
	recs := s.GetTaskRecords(allIDs)
	if len(recs) != 50 {
		t.Fatalf("GetTaskRecords = %d records, want 50", len(recs))
	}
	for i, task := range tasks {
		rec, ok := recs[task.ID]
		if !ok {
			t.Fatalf("task %s missing from batch read", task.ID)
		}
		if rec.State != protocol.StateSuccess {
			t.Fatalf("task %s state = %s", task.ID, rec.State)
		}
		if string(rec.Result) != fmt.Sprintf("out-%d", i) {
			t.Fatalf("task %s result = %q", task.ID, rec.Result)
		}
	}
}

func TestCreateTasksDuplicateReported(t *testing.T) {
	s := New()
	ep := protocol.NewUUID()
	tasks := makeTasks(3, ep)
	if err := s.CreateTask(tasks[1]); err != nil {
		t.Fatal(err)
	}
	err := s.CreateTasks(tasks)
	if !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("CreateTasks with duplicate = %v, want ErrAlreadyExists", err)
	}
	// The non-colliding tasks were still created.
	if got := s.CountTasks(); got != 3 {
		t.Fatalf("CountTasks = %d, want 3", got)
	}
	// The duplicate must not be double-indexed.
	if got := len(s.ListTasksByEndpoint(ep)); got != 3 {
		t.Fatalf("index size = %d, want 3", got)
	}
}

func TestTransitionTasksPartialError(t *testing.T) {
	s := New()
	ep := protocol.NewUUID()
	tasks := makeTasks(2, ep)
	if err := s.CreateTasks(tasks); err != nil {
		t.Fatal(err)
	}
	ids := []protocol.UUID{tasks[0].ID, protocol.NewUUID(), tasks[1].ID}
	err := s.TransitionTasks(ids, protocol.StateWaiting)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("TransitionTasks = %v, want ErrNotFound for the unknown ID", err)
	}
	for _, task := range tasks {
		rec, err := s.GetTask(task.ID)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State != protocol.StateWaiting {
			t.Fatalf("task %s state = %s, want waiting despite the batch error", task.ID, rec.State)
		}
	}
}

func TestCompleteTasksPerResultErrors(t *testing.T) {
	s := New()
	ep := protocol.NewUUID()
	tasks := makeTasks(2, ep)
	if err := s.CreateTasks(tasks); err != nil {
		t.Fatal(err)
	}
	ids := []protocol.UUID{tasks[0].ID, tasks[1].ID}
	if err := s.TransitionTasks(ids, protocol.StateWaiting); err != nil {
		t.Fatal(err)
	}
	if err := s.TransitionTasks(ids, protocol.StateDelivered); err != nil {
		t.Fatal(err)
	}
	errs := s.CompleteTasks([]protocol.Result{
		{TaskID: tasks[0].ID, State: protocol.StateSuccess},
		{TaskID: protocol.NewUUID(), State: protocol.StateSuccess},
		{TaskID: tasks[1].ID, State: protocol.StateRunning}, // non-terminal
	})
	if errs[0] != nil {
		t.Fatalf("errs[0] = %v", errs[0])
	}
	if !errors.Is(errs[1], ErrNotFound) {
		t.Fatalf("errs[1] = %v, want ErrNotFound", errs[1])
	}
	if errs[2] == nil {
		t.Fatal("errs[2] = nil, want non-terminal-state error")
	}
}

func TestGetTaskRecordsMissingOmitted(t *testing.T) {
	s := New()
	task := protocol.Task{ID: protocol.NewUUID(), EndpointID: protocol.NewUUID(), Kind: protocol.KindPython}
	if err := s.CreateTask(task); err != nil {
		t.Fatal(err)
	}
	missing := protocol.NewUUID()
	recs := s.GetTaskRecords([]protocol.UUID{task.ID, missing})
	if len(recs) != 1 {
		t.Fatalf("GetTaskRecords = %d records, want 1", len(recs))
	}
	if _, ok := recs[missing]; ok {
		t.Fatal("missing ID present in batch read")
	}
}
