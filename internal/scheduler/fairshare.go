package scheduler

import (
	"math"
	"sync"
	"time"
)

// Fairshare tracking: when enabled, each user's historical consumption
// (node-seconds, exponentially decayed) lowers the effective priority of
// their pending jobs, as with Slurm's fairshare factor. Heavy users fall
// behind light users at equal nominal priority.

// fairshare holds decayed per-user usage.
type fairshare struct {
	mu sync.Mutex
	// usage is decayed node-seconds per user.
	usage map[string]float64
	last  map[string]time.Time
	// halflife controls the decay rate.
	halflife time.Duration
	now      func() time.Time
}

func newFairshare(halflife time.Duration) *fairshare {
	if halflife <= 0 {
		halflife = 10 * time.Minute
	}
	return &fairshare{
		usage:    make(map[string]float64),
		last:     make(map[string]time.Time),
		halflife: halflife,
		now:      time.Now,
	}
}

// decayLocked brings a user's usage up to date.
func (f *fairshare) decayLocked(user string) {
	now := f.now()
	if prev, ok := f.last[user]; ok {
		dt := now.Sub(prev)
		if dt > 0 {
			f.usage[user] *= math.Pow(0.5, float64(dt)/float64(f.halflife))
		}
	}
	f.last[user] = now
}

// charge records consumption for a finished (or cancelled) job.
func (f *fairshare) charge(user string, nodes int, elapsed time.Duration) {
	if user == "" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.decayLocked(user)
	f.usage[user] += float64(nodes) * elapsed.Seconds()
}

// current returns a user's decayed usage.
func (f *fairshare) current(user string) float64 {
	if user == "" {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.decayLocked(user)
	return f.usage[user]
}

// EnableFairshare turns on usage-weighted scheduling with the given decay
// halflife (<=0 selects 10 minutes) and usage weight: effective priority is
// Priority - weight*log1p(decayed node-seconds). Call before submitting.
func (s *Scheduler) EnableFairshare(halflife time.Duration, weight float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if weight <= 0 {
		weight = 1
	}
	s.fair = newFairshare(halflife)
	s.fairWeight = weight
}

// UserUsage reports a user's current decayed node-seconds (0 when
// fairshare is disabled).
func (s *Scheduler) UserUsage(user string) float64 {
	s.mu.Lock()
	fair := s.fair
	s.mu.Unlock()
	if fair == nil {
		return 0
	}
	return fair.current(user)
}

// effectivePriorityLocked computes a job's queue rank under fairshare.
func (s *Scheduler) effectivePriorityLocked(j *job) float64 {
	p := float64(j.info.Spec.Priority)
	if s.fair == nil {
		return p
	}
	return p - s.fairWeight*math.Log1p(s.fair.current(j.info.Spec.User))
}
