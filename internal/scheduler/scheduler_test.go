package scheduler

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"globuscompute/internal/protocol"
)

// waitTerminal polls until the job reaches a terminal state or the deadline.
func waitTerminal(t *testing.T, s *Scheduler, id protocol.UUID, timeout time.Duration) JobInfo {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		info, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State.Terminal() {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", info.ID, info.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSimpleJobRuns(t *testing.T) {
	s := SimpleCluster(2)
	defer s.Close()
	ran := make(chan Allocation, 1)
	id, err := s.Submit(JobSpec{Nodes: 2, Script: func(_ context.Context, a Allocation) error {
		ran <- a
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-ran:
		if len(a.Nodes) != 2 {
			t.Errorf("allocated %v", a.Nodes)
		}
		if a.Env["SLURM_NNODES"] != "2" {
			t.Errorf("env = %v", a.Env)
		}
		if !strings.Contains(a.Env["SLURM_JOB_NODELIST"], ",") {
			t.Errorf("nodelist = %q", a.Env["SLURM_JOB_NODELIST"])
		}
	case <-time.After(2 * time.Second):
		t.Fatal("script never ran")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		info, _ := s.Status(id)
		if info.State == JobCompleted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("state = %s, want COMPLETED", info.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobFailure(t *testing.T) {
	s := SimpleCluster(1)
	defer s.Close()
	id, _ := s.Submit(JobSpec{Script: func(context.Context, Allocation) error {
		return errors.New("segfault")
	}})
	info := waitTerminal(t, s, id, 2*time.Second)
	if info.State != JobFailed || info.Reason != "segfault" {
		t.Errorf("info = %+v", info)
	}
}

func TestWalltimeTimeout(t *testing.T) {
	s := SimpleCluster(1)
	defer s.Close()
	id, _ := s.Submit(JobSpec{Walltime: 50 * time.Millisecond, Script: func(ctx context.Context, _ Allocation) error {
		<-ctx.Done()
		return ctx.Err()
	}})
	info := waitTerminal(t, s, id, 2*time.Second)
	if info.State != JobTimeout {
		t.Errorf("state = %s, want TIMEOUT", info.State)
	}
}

func TestCancelPending(t *testing.T) {
	s := SimpleCluster(1)
	defer s.Close()
	block := make(chan struct{})
	s.Submit(JobSpec{Script: func(ctx context.Context, _ Allocation) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	}})
	id2, _ := s.Submit(JobSpec{Script: func(context.Context, Allocation) error { return nil }})
	info, _ := s.Status(id2)
	if info.State != JobPending {
		t.Fatalf("second job state = %s, want PENDING", info.State)
	}
	if err := s.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	info, _ = s.Status(id2)
	if info.State != JobCancelled {
		t.Errorf("state = %s", info.State)
	}
	close(block)
}

func TestCancelRunning(t *testing.T) {
	s := SimpleCluster(1)
	defer s.Close()
	started := make(chan struct{})
	id, _ := s.Submit(JobSpec{Script: func(ctx context.Context, _ Allocation) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	<-started
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		info, _ := s.Status(id)
		if info.State == JobCancelled && !info.Ended.IsZero() {
			// Node must return to the free pool.
			if free, _ := s.FreeNodes("default"); free != 1 {
				t.Errorf("free = %d after cancel", free)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("state = %s", info.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCancelFinishedNoop(t *testing.T) {
	s := SimpleCluster(1)
	defer s.Close()
	id, _ := s.Submit(JobSpec{Script: func(context.Context, Allocation) error { return nil }})
	deadline := time.Now().Add(2 * time.Second)
	for {
		info, _ := s.Status(id)
		if info.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Cancel(id); err != nil {
		t.Errorf("cancel finished = %v", err)
	}
	info, _ := s.Status(id)
	if info.State != JobCompleted {
		t.Errorf("state mutated to %s", info.State)
	}
}

func TestNoNodeOversubscription(t *testing.T) {
	// With 4 nodes and many 2-node jobs, at most 2 run concurrently and
	// no node is ever double-allocated.
	s := SimpleCluster(4)
	defer s.Close()
	var mu sync.Mutex
	inUse := make(map[string]int)
	maxConc := 0
	conc := 0
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		s.Submit(JobSpec{Nodes: 2, Script: func(_ context.Context, a Allocation) error {
			mu.Lock()
			conc++
			if conc > maxConc {
				maxConc = conc
			}
			for _, n := range a.Nodes {
				inUse[n]++
				if inUse[n] > 1 {
					t.Errorf("node %s double-allocated", n)
				}
			}
			mu.Unlock()
			time.Sleep(10 * time.Millisecond)
			mu.Lock()
			for _, n := range a.Nodes {
				inUse[n]--
			}
			conc--
			mu.Unlock()
			wg.Done()
			return nil
		}})
	}
	wg.Wait()
	if maxConc > 2 {
		t.Errorf("max concurrency %d, want <= 2", maxConc)
	}
	if maxConc < 2 {
		t.Errorf("max concurrency %d, want 2 (parallelism wasted)", maxConc)
	}
}

func TestBackfillOvertakesBlockedJob(t *testing.T) {
	s := SimpleCluster(2)
	defer s.Close()
	release := make(chan struct{})
	// Occupy one node indefinitely.
	s.Submit(JobSpec{Nodes: 1, Script: func(ctx context.Context, _ Allocation) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}})
	// This job needs 2 nodes: blocked.
	bigID, _ := s.Submit(JobSpec{Nodes: 2, Script: func(context.Context, Allocation) error { return nil }})
	// A 1-node job should backfill around it.
	smallRan := make(chan struct{})
	s.Submit(JobSpec{Nodes: 1, Script: func(context.Context, Allocation) error {
		close(smallRan)
		return nil
	}})
	select {
	case <-smallRan:
	case <-time.After(2 * time.Second):
		t.Fatal("backfill job never ran while blocked job waited")
	}
	if info, _ := s.Status(bigID); info.State != JobPending {
		t.Errorf("big job state = %s, want PENDING", info.State)
	}
	close(release)
}

func TestStrictFIFOWithoutBackfill(t *testing.T) {
	nodes := []string{"a", "b"}
	s, err := New(Config{Partitions: []Partition{{Name: "p", Nodes: nodes}}, Backfill: false})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	release := make(chan struct{})
	s.Submit(JobSpec{Partition: "p", Nodes: 1, Script: func(ctx context.Context, _ Allocation) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}})
	s.Submit(JobSpec{Partition: "p", Nodes: 2, Script: func(context.Context, Allocation) error { return nil }})
	smallRan := make(chan struct{}, 1)
	smallID, _ := s.Submit(JobSpec{Partition: "p", Nodes: 1, Script: func(context.Context, Allocation) error {
		smallRan <- struct{}{}
		return nil
	}})
	select {
	case <-smallRan:
		t.Error("small job overtook blocked job without backfill")
	case <-time.After(100 * time.Millisecond):
	}
	if info, _ := s.Status(smallID); info.State != JobPending {
		t.Errorf("small job state = %s", info.State)
	}
	close(release)
}

func TestPartitionLimits(t *testing.T) {
	s, err := New(Config{Partitions: []Partition{{
		Name: "cpu", Nodes: []string{"n1", "n2"}, MaxWalltime: time.Minute, MaxNodesPerJob: 1,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	noop := func(context.Context, Allocation) error { return nil }
	if _, err := s.Submit(JobSpec{Partition: "cpu", Nodes: 2, Script: noop}); !errors.Is(err, ErrTooManyNodes) {
		t.Errorf("2-node submit = %v", err)
	}
	if _, err := s.Submit(JobSpec{Partition: "cpu", Walltime: time.Hour, Script: noop}); !errors.Is(err, ErrWalltimeExceeded) {
		t.Errorf("long walltime = %v", err)
	}
	if _, err := s.Submit(JobSpec{Partition: "gpu", Script: noop}); !errors.Is(err, ErrUnknownPartition) {
		t.Errorf("unknown partition = %v", err)
	}
	if _, err := s.Submit(JobSpec{Partition: "cpu", Script: nil}); err == nil {
		t.Error("nil script accepted")
	}
}

func TestMultiPartitionRequiresName(t *testing.T) {
	s, err := New(Config{Partitions: []Partition{
		{Name: "a", Nodes: []string{"a1"}},
		{Name: "b", Nodes: []string{"b1"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(JobSpec{Script: func(context.Context, Allocation) error { return nil }}); !errors.Is(err, ErrUnknownPartition) {
		t.Errorf("unqualified submit = %v", err)
	}
}

func TestPBSFlavorEnv(t *testing.T) {
	s, err := New(Config{
		Partitions: []Partition{{Name: "q", Nodes: []string{"p1", "p2"}}},
		Flavor:     "pbs",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	env := make(chan map[string]string, 1)
	s.Submit(JobSpec{Partition: "q", Nodes: 2, Script: func(_ context.Context, a Allocation) error {
		env <- a.Env
		return nil
	}})
	select {
	case e := <-env:
		if e["PBS_NUM_NODES"] != "2" || e["PBS_NODEFILE_DATA"] == "" {
			t.Errorf("pbs env = %v", e)
		}
		if _, hasSlurm := e["SLURM_JOB_ID"]; hasSlurm {
			t.Error("slurm vars in pbs flavor")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("job never ran")
	}
}

func TestStatusUnknownJob(t *testing.T) {
	s := SimpleCluster(1)
	defer s.Close()
	if _, err := s.Status("00000000-0000-4000-8000-000000000000"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("err = %v", err)
	}
	if err := s.Cancel("00000000-0000-4000-8000-000000000000"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("cancel err = %v", err)
	}
}

func TestQueueListing(t *testing.T) {
	s := SimpleCluster(1)
	defer s.Close()
	block := make(chan struct{})
	defer close(block)
	s.Submit(JobSpec{Name: "one", Script: func(ctx context.Context, _ Allocation) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	}})
	s.Submit(JobSpec{Name: "two", Script: func(context.Context, Allocation) error { return nil }})
	q := s.Queue()
	if len(q) != 2 {
		t.Fatalf("queue = %d entries", len(q))
	}
	if q[0].Spec.Name != "one" || q[1].Spec.Name != "two" {
		t.Errorf("order: %s, %s", q[0].Spec.Name, q[1].Spec.Name)
	}
	if q[0].State != JobRunning || q[1].State != JobPending {
		t.Errorf("states: %s, %s", q[0].State, q[1].State)
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	s := SimpleCluster(1)
	started := make(chan struct{})
	id1, _ := s.Submit(JobSpec{Script: func(ctx context.Context, _ Allocation) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	id2, _ := s.Submit(JobSpec{Script: func(context.Context, Allocation) error { return nil }})
	<-started
	s.Close()
	i1, _ := s.Status(id1)
	i2, _ := s.Status(id2)
	if i1.State != JobCancelled || i2.State != JobCancelled {
		t.Errorf("states after close: %s, %s", i1.State, i2.State)
	}
	if _, err := s.Submit(JobSpec{Script: func(context.Context, Allocation) error { return nil }}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v", err)
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	s := SimpleCluster(1)
	defer s.Close()
	release := make(chan struct{})
	// Occupy the node.
	s.Submit(JobSpec{Script: func(ctx context.Context, _ Allocation) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}})
	order := make(chan string, 3)
	mk := func(name string, prio int) {
		s.Submit(JobSpec{Name: name, Priority: prio, Script: func(context.Context, Allocation) error {
			order <- name
			return nil
		}})
	}
	mk("low", 1)
	mk("high", 10)
	mk("mid", 5)
	close(release)
	var got []string
	for i := 0; i < 3; i++ {
		select {
		case n := <-order:
			got = append(got, n)
		case <-time.After(5 * time.Second):
			t.Fatalf("only %v ran", got)
		}
	}
	want := []string{"high", "mid", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestPriorityTiesAreFIFO(t *testing.T) {
	s := SimpleCluster(1)
	defer s.Close()
	release := make(chan struct{})
	s.Submit(JobSpec{Script: func(ctx context.Context, _ Allocation) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}})
	order := make(chan int, 4)
	for i := 0; i < 4; i++ {
		i := i
		s.Submit(JobSpec{Priority: 3, Script: func(context.Context, Allocation) error {
			order <- i
			return nil
		}})
	}
	close(release)
	for want := 0; want < 4; want++ {
		select {
		case got := <-order:
			if got != want {
				t.Fatalf("position %d ran job %d", want, got)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queue stalled")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Partitions: []Partition{{Name: "", Nodes: []string{"a"}}}}); err == nil {
		t.Error("unnamed partition accepted")
	}
	if _, err := New(Config{Partitions: []Partition{{Name: "p"}}}); err == nil {
		t.Error("nodeless partition accepted")
	}
	if _, err := New(Config{Partitions: []Partition{
		{Name: "p", Nodes: []string{"a"}}, {Name: "p", Nodes: []string{"b"}},
	}}); err == nil {
		t.Error("duplicate partition accepted")
	}
	if _, err := New(Config{Partitions: []Partition{{Name: "p", Nodes: []string{"a", "a"}}}}); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestManyJobsDrainCompletely(t *testing.T) {
	s := SimpleCluster(8)
	defer s.Close()
	const n = 100
	var done sync.WaitGroup
	done.Add(n)
	var mu sync.Mutex
	completed := 0
	for i := 0; i < n; i++ {
		nodes := 1 + i%4
		_, err := s.Submit(JobSpec{Nodes: nodes, Script: func(context.Context, Allocation) error {
			mu.Lock()
			completed++
			mu.Unlock()
			done.Done()
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	waitDone := make(chan struct{})
	go func() { done.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		mu.Lock()
		t.Fatalf("only %d of %d jobs ran", completed, n)
	}
	if free, _ := s.FreeNodes("default"); free != 8 {
		// Completion frees nodes asynchronously; wait briefly.
		deadline := time.Now().Add(2 * time.Second)
		for {
			f, _ := s.FreeNodes("default")
			if f == 8 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("free nodes = %d, want 8", f)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if total, _ := s.TotalNodes("default"); total != 8 {
		t.Errorf("TotalNodes = %d", total)
	}
}
