package scheduler

import (
	"math"
	"sync"
	"time"
)

// Admission is the front-door overload controller: per-user token-bucket
// rate limiting plus per-user in-flight caps, with the fairshare decayed
// usage (fairshare.go) modulating each user's effective refill rate so a
// tenant with heavy recent consumption refills slower than a light one at
// the same nominal rate. It is the live promotion of the fairshare seed:
// the same exponentially-decayed node-second accounting that ranks batch
// jobs now also prices webservice admission.
//
// The controller is deliberately webservice-agnostic: it speaks users and
// task counts, returns Decisions, and leaves HTTP status codes and metrics
// to the caller.

// Admission reasons reported in Decision.Reason and usable as metric labels.
const (
	// ReasonRate marks a token-bucket rejection (refill deficit).
	ReasonRate = "rate"
	// ReasonInFlight marks an in-flight-cap rejection.
	ReasonInFlight = "inflight"
)

// AdmissionConfig tunes the controller. The zero value of any field selects
// its default.
type AdmissionConfig struct {
	// FillRate is the steady-state admission rate per user in tasks/second
	// (default 500).
	FillRate float64
	// Burst is the token-bucket capacity per user in tasks (default
	// 2*FillRate): the largest batch a quiet user can submit at once.
	Burst float64
	// MaxInFlight caps tasks a user may have admitted-but-not-terminal
	// (default 4*Burst; <0 disables the cap).
	MaxInFlight int
	// FairshareHalflife is the decay halflife for historical usage
	// (default 10 minutes, as in EnableFairshare).
	FairshareHalflife time.Duration
	// FairWeight scales how strongly decayed usage shrinks a user's
	// effective fill rate: effective = FillRate / (1 +
	// FairWeight*log1p(usage)). 0 selects 0.25; <0 disables fairshare
	// modulation entirely.
	FairWeight float64
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c *AdmissionConfig) fill() {
	if c.FillRate <= 0 {
		c.FillRate = 500
	}
	if c.Burst <= 0 {
		c.Burst = 2 * c.FillRate
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = int(4 * c.Burst)
	}
	if c.FairWeight == 0 {
		c.FairWeight = 0.25
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Decision is the outcome of one Admit call.
type Decision struct {
	// OK reports whether the batch was admitted. When true the caller owns
	// n in-flight slots and must Release them as tasks reach terminal
	// states (or on submit failure).
	OK bool
	// RetryAfter, on rejection, is the earliest duration after which a
	// retry of the same batch could succeed. Always >= 1s so it survives
	// whole-second Retry-After headers.
	RetryAfter time.Duration
	// Reason is ReasonRate or ReasonInFlight on rejection, "" on success.
	Reason string
}

// userBucket is one tenant's admission state.
type userBucket struct {
	tokens   float64
	last     time.Time
	inflight int
}

// Admission implements fair-share admission control. Safe for concurrent
// use.
type Admission struct {
	mu    sync.Mutex
	cfg   AdmissionConfig
	users map[string]*userBucket
	fair  *fairshare
}

// NewAdmission builds a controller from cfg (zero fields take defaults).
func NewAdmission(cfg AdmissionConfig) *Admission {
	cfg.fill()
	a := &Admission{
		cfg:   cfg,
		users: make(map[string]*userBucket),
	}
	if cfg.FairWeight > 0 {
		a.fair = newFairshare(cfg.FairshareHalflife)
		a.fair.now = cfg.Now
	}
	return a
}

// effectiveRate is a user's current refill rate: the nominal FillRate
// shrunk by decayed historical usage, mirroring effectivePriorityLocked's
// log1p shape. A user with zero history refills at full rate.
func (a *Admission) effectiveRate(user string) float64 {
	if a.fair == nil {
		return a.cfg.FillRate
	}
	return a.cfg.FillRate / (1 + a.cfg.FairWeight*math.Log1p(a.fair.current(user)))
}

// bucketLocked returns (creating if needed) the user's bucket with tokens
// refilled to now at the user's effective rate. Caller holds a.mu.
func (a *Admission) bucketLocked(user string, now time.Time, rate float64) *userBucket {
	b := a.users[user]
	if b == nil {
		b = &userBucket{tokens: a.cfg.Burst, last: now}
		a.users[user] = b
		return b
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens = math.Min(a.cfg.Burst, b.tokens+rate*dt.Seconds())
	}
	b.last = now
	return b
}

// Admit asks to admit a batch of n tasks for user. On success the caller
// owns n in-flight slots (Release them at terminal states); on rejection
// the Decision carries the reason and a Retry-After hint. n <= 0 is
// admitted unconditionally.
func (a *Admission) Admit(user string, n int) Decision {
	if n <= 0 {
		return Decision{OK: true}
	}
	// Compute the fairshare-modulated rate outside a.mu: fairshare has its
	// own lock and the two orders (Admit vs Charge) must not deadlock.
	rate := a.effectiveRate(user)
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.cfg.Now()
	b := a.bucketLocked(user, now, rate)
	if a.cfg.MaxInFlight > 0 && b.inflight+n > a.cfg.MaxInFlight {
		// In-flight caps clear as results land; the bucket's refill time
		// for the batch is the best available lower bound on that.
		return Decision{RetryAfter: retryAfterFor(float64(n), rate), Reason: ReasonInFlight}
	}
	if b.tokens < float64(n) {
		deficit := float64(n) - b.tokens
		return Decision{RetryAfter: retryAfterFor(deficit, rate), Reason: ReasonRate}
	}
	b.tokens -= float64(n)
	b.inflight += n
	return Decision{OK: true}
}

// Release returns n in-flight slots for user: call it once per admitted
// task reaching a terminal state, or for the whole batch when a submit
// fails after admission.
func (a *Admission) Release(user string, n int) {
	if n <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if b := a.users[user]; b != nil {
		b.inflight -= n
		if b.inflight < 0 {
			b.inflight = 0
		}
	}
}

// Charge records completed consumption against the user's decayed
// fairshare usage, shrinking their future effective rate. nodes*elapsed is
// the node-seconds price; the webservice charges task roundtrips with
// nodes=1.
func (a *Admission) Charge(user string, nodes int, elapsed time.Duration) {
	if a.fair != nil {
		a.fair.charge(user, nodes, elapsed)
	}
}

// InFlight reports the user's currently-admitted, not-yet-released task
// count.
func (a *Admission) InFlight(user string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if b := a.users[user]; b != nil {
		return b.inflight
	}
	return 0
}

// Usage reports the user's decayed node-second usage (0 when fairshare
// modulation is disabled).
func (a *Admission) Usage(user string) float64 {
	if a.fair == nil {
		return 0
	}
	return a.fair.current(user)
}

// retryAfterFor converts a token deficit at a refill rate into a
// Retry-After hint, clamped to [1s, 60s] so it is meaningful after
// whole-second header truncation and never tells a client to go away for
// minutes.
func retryAfterFor(deficit, rate float64) time.Duration {
	if rate <= 0 {
		return 60 * time.Second
	}
	d := time.Duration(deficit / rate * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 60*time.Second {
		d = 60 * time.Second
	}
	return d
}
