package scheduler

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock safe for concurrent Admit
// calls.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestAdmissionTokenBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := NewAdmission(AdmissionConfig{FillRate: 10, Burst: 20, MaxInFlight: -1, Now: clk.now})

	// A full bucket admits up to Burst at once.
	if d := a.Admit("u", 20); !d.OK {
		t.Fatalf("burst admit rejected: %+v", d)
	}
	// Empty bucket: the next task is rejected with a rate Retry-After.
	d := a.Admit("u", 1)
	if d.OK || d.Reason != ReasonRate {
		t.Fatalf("want rate rejection, got %+v", d)
	}
	if d.RetryAfter < time.Second {
		t.Fatalf("RetryAfter %v < 1s floor", d.RetryAfter)
	}
	// Refill at 10/s: after 1s, 10 tokens are back.
	clk.advance(time.Second)
	if d := a.Admit("u", 10); !d.OK {
		t.Fatalf("refilled admit rejected: %+v", d)
	}
	if d := a.Admit("u", 1); d.OK {
		t.Fatal("over-refill admitted")
	}
	// Tokens cap at Burst, not beyond.
	clk.advance(time.Hour)
	if d := a.Admit("u", 21); d.OK {
		t.Fatal("admitted beyond Burst after long idle")
	}
	if d := a.Admit("u", 20); !d.OK {
		t.Fatalf("full-burst admit rejected: %+v", d)
	}
}

func TestAdmissionInFlightCap(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := NewAdmission(AdmissionConfig{FillRate: 1000, Burst: 1000, MaxInFlight: 10, Now: clk.now})

	if d := a.Admit("u", 10); !d.OK {
		t.Fatalf("admit to cap rejected: %+v", d)
	}
	d := a.Admit("u", 1)
	if d.OK || d.Reason != ReasonInFlight {
		t.Fatalf("want inflight rejection, got %+v", d)
	}
	if d.RetryAfter < time.Second {
		t.Fatalf("RetryAfter %v < 1s floor", d.RetryAfter)
	}
	// Releasing slots re-opens admission; tokens refill with the clock.
	a.Release("u", 4)
	clk.advance(time.Second)
	if d := a.Admit("u", 4); !d.OK {
		t.Fatalf("admit after release rejected: %+v", d)
	}
	if got := a.InFlight("u"); got != 10 {
		t.Fatalf("InFlight = %d, want 10", got)
	}
	// Release never goes negative.
	a.Release("u", 1000)
	if got := a.InFlight("u"); got != 0 {
		t.Fatalf("InFlight after over-release = %d", got)
	}
}

func TestAdmissionFairshareShrinksHeavyUserRate(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := NewAdmission(AdmissionConfig{
		FillRate: 100, Burst: 100, MaxInFlight: -1,
		FairshareHalflife: time.Hour, FairWeight: 1, Now: clk.now,
	})

	// Heavy burns 10k node-seconds of history; light has none.
	a.Charge("heavy", 10, 1000*time.Second)
	if a.Usage("heavy") <= 0 {
		t.Fatal("usage not charged")
	}
	heavyRate := a.effectiveRate("heavy")
	lightRate := a.effectiveRate("light")
	if heavyRate >= lightRate {
		t.Fatalf("heavy rate %f >= light rate %f", heavyRate, lightRate)
	}
	// Both drain their bucket; after the same wall-clock refill window the
	// light user gets more tokens back than the heavy one.
	a.Admit("heavy", 100)
	a.Admit("light", 100)
	clk.advance(time.Second)
	lightD := a.Admit("light", 60)
	heavyD := a.Admit("heavy", 60)
	if !lightD.OK {
		t.Fatalf("light user rejected after refill: %+v", lightD)
	}
	if heavyD.OK {
		t.Fatal("heavy user refilled as fast as light user")
	}
}

func TestAdmissionZeroAndNegativeCounts(t *testing.T) {
	a := NewAdmission(AdmissionConfig{FillRate: 1, Burst: 1})
	if d := a.Admit("u", 0); !d.OK {
		t.Fatalf("n=0 rejected: %+v", d)
	}
	if d := a.Admit("u", -3); !d.OK {
		t.Fatalf("n<0 rejected: %+v", d)
	}
	a.Release("u", 0)
	a.Release("u", -1)
	if got := a.InFlight("u"); got != 0 {
		t.Fatalf("InFlight = %d", got)
	}
}

// TestAdmissionConcurrentMultiTenant hammers Admit/Release/Charge/Usage
// from many goroutines across many tenants — the satellite's -race
// exercise for the fairshare seed and the admission layer on top of it.
// Invariants: admitted-minus-released in-flight never exceeds the cap, and
// the controller's own accounting matches the test's.
func TestAdmissionConcurrentMultiTenant(t *testing.T) {
	const (
		tenants    = 8
		goroutines = 4 // per tenant
		iters      = 300
		cap        = 64
	)
	a := NewAdmission(AdmissionConfig{
		FillRate: 1e6, Burst: 1e6, MaxInFlight: cap,
		FairshareHalflife: time.Minute, FairWeight: 1,
	})
	users := make([]string, tenants)
	for i := range users {
		users[i] = string(rune('a' + i))
	}
	var wg sync.WaitGroup
	for _, u := range users {
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					d := a.Admit(u, 2)
					if d.OK {
						a.Charge(u, 1, time.Millisecond)
						a.Release(u, 2)
					} else if d.Reason != ReasonRate && d.Reason != ReasonInFlight {
						t.Errorf("bad reason %q", d.Reason)
						return
					}
					_ = a.Usage(u)
					if inf := a.InFlight(u); inf > cap {
						t.Errorf("inflight %d > cap %d", inf, cap)
						return
					}
				}
			}(u)
		}
	}
	wg.Wait()
	for _, u := range users {
		if got := a.InFlight(u); got != 0 {
			t.Errorf("user %s leaked %d in-flight slots", u, got)
		}
	}
}

// TestFairshareConcurrent drives charge/current on the raw fairshare seed
// from many goroutines (it had never been exercised concurrently).
func TestFairshareConcurrent(t *testing.T) {
	f := newFairshare(time.Minute)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u := string(rune('a' + g%4))
			for i := 0; i < 500; i++ {
				f.charge(u, 1, time.Millisecond)
				if f.current(u) < 0 {
					t.Error("negative usage")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
