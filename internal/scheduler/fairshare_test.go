package scheduler

import (
	"context"
	"testing"
	"time"
)

func TestFairshareDemotesHeavyUser(t *testing.T) {
	s := SimpleCluster(1)
	defer s.Close()
	s.EnableFairshare(time.Hour, 5)

	// The heavy user burns node-seconds first.
	burnDone := make(chan struct{})
	s.Submit(JobSpec{User: "heavy", Script: func(context.Context, Allocation) error {
		time.Sleep(80 * time.Millisecond)
		close(burnDone)
		return nil
	}})
	<-burnDone
	// Wait until the usage charge lands (completion goroutine).
	deadline := time.Now().Add(2 * time.Second)
	for s.UserUsage("heavy") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("usage never charged")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Occupy the node, then queue heavy before light at equal priority.
	release := make(chan struct{})
	s.Submit(JobSpec{User: "blocker", Script: func(ctx context.Context, _ Allocation) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}})
	order := make(chan string, 2)
	s.Submit(JobSpec{User: "heavy", Script: func(context.Context, Allocation) error {
		order <- "heavy"
		return nil
	}})
	s.Submit(JobSpec{User: "light", Script: func(context.Context, Allocation) error {
		order <- "light"
		return nil
	}})
	close(release)
	first := <-order
	second := <-order
	if first != "light" || second != "heavy" {
		t.Errorf("order = %s, %s; fairshare should favor the light user", first, second)
	}
}

func TestFairshareDecay(t *testing.T) {
	f := newFairshare(50 * time.Millisecond)
	base := time.Now()
	f.now = func() time.Time { return base }
	f.charge("u", 2, 10*time.Second) // 20 node-seconds
	if got := f.current("u"); got < 19.9 || got > 20.1 {
		t.Fatalf("usage = %f", got)
	}
	// One halflife later: half the usage.
	f.now = func() time.Time { return base.Add(50 * time.Millisecond) }
	if got := f.current("u"); got < 9.9 || got > 10.1 {
		t.Errorf("decayed usage = %f, want ~10", got)
	}
	// Unknown users and empty names are free.
	if f.current("stranger") != 0 || f.current("") != 0 {
		t.Error("phantom usage")
	}
}

func TestFairshareDisabledIsNeutral(t *testing.T) {
	s := SimpleCluster(1)
	defer s.Close()
	if s.UserUsage("anyone") != 0 {
		t.Error("usage tracked without fairshare")
	}
	// Priority ordering still works without fairshare (regression).
	release := make(chan struct{})
	s.Submit(JobSpec{Script: func(ctx context.Context, _ Allocation) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}})
	order := make(chan string, 2)
	s.Submit(JobSpec{Name: "lo", Priority: 1, Script: func(context.Context, Allocation) error {
		order <- "lo"
		return nil
	}})
	s.Submit(JobSpec{Name: "hi", Priority: 9, Script: func(context.Context, Allocation) error {
		order <- "hi"
		return nil
	}})
	close(release)
	if first := <-order; first != "hi" {
		t.Errorf("first = %s", first)
	}
}
