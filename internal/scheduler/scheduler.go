// Package scheduler simulates an HPC batch scheduler (Slurm/PBS semantics):
// a cluster of named nodes organized into partitions, a FIFO job queue with
// optional backfill, exclusive node allocation, and walltime enforcement.
//
// Jobs carry a Script callback that runs when the job starts, with the
// allocation (node list and scheduler-style environment variables such as
// SLURM_JOB_NODELIST / PBS_NODEFILE contents) available — exactly what the
// endpoint's pilot-job engine reads to discover its resources. The Globus
// Compute Provider abstraction (internal/provider) submits pilot jobs here
// the way the real agent submits to sbatch/qsub.
package scheduler

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"globuscompute/internal/protocol"
)

// Common errors.
var (
	ErrUnknownJob       = errors.New("scheduler: unknown job")
	ErrUnknownPartition = errors.New("scheduler: unknown partition")
	ErrTooManyNodes     = errors.New("scheduler: request exceeds partition limit")
	ErrWalltimeExceeded = errors.New("scheduler: requested walltime exceeds partition limit")
	ErrClosed           = errors.New("scheduler: shut down")
)

// JobState is the scheduler's view of a job.
type JobState string

const (
	JobPending   JobState = "PENDING"
	JobRunning   JobState = "RUNNING"
	JobCompleted JobState = "COMPLETED"
	JobFailed    JobState = "FAILED"
	JobCancelled JobState = "CANCELLED"
	JobTimeout   JobState = "TIMEOUT"
)

// Terminal reports whether s is final.
func (s JobState) Terminal() bool {
	switch s {
	case JobCompleted, JobFailed, JobCancelled, JobTimeout:
		return true
	}
	return false
}

// Partition groups nodes under limits, like a Slurm partition or PBS queue.
type Partition struct {
	Name string
	// Nodes lists member node names.
	Nodes []string
	// MaxWalltime bounds per-job walltime (0 = unlimited).
	MaxWalltime time.Duration
	// MaxNodesPerJob bounds per-job node counts (0 = partition size).
	MaxNodesPerJob int
}

// Allocation describes the resources granted to a running job.
type Allocation struct {
	JobID protocol.UUID
	// Nodes are the granted node names, in stable order.
	Nodes []string
	// Env carries scheduler-style environment: SLURM_JOB_ID,
	// SLURM_JOB_NODELIST, SLURM_NNODES, PBS_NODEFILE-equivalent contents.
	Env map[string]string
}

// Script is the job body: it runs when the job starts and the job completes
// when it returns. ctx is cancelled at walltime or scancel.
type Script func(ctx context.Context, alloc Allocation) error

// JobSpec is a batch submission.
type JobSpec struct {
	Partition string
	Nodes     int
	Walltime  time.Duration
	User      string
	Name      string
	// Priority orders the pending queue (higher first; ties by submission
	// order), like Slurm's priority factor.
	Priority int
	Script   Script
}

// JobInfo is a point-in-time job status snapshot.
type JobInfo struct {
	ID        protocol.UUID
	Spec      JobSpec
	State     JobState
	Nodes     []string
	Submitted time.Time
	Started   time.Time
	Ended     time.Time
	// Reason is set for failures and cancellations.
	Reason string
}

type job struct {
	info   JobInfo
	cancel context.CancelFunc
}

// Scheduler is a simulated batch system. Safe for concurrent use.
type Scheduler struct {
	mu         sync.Mutex
	partitions map[string]*Partition
	// free tracks unallocated nodes per partition (set semantics).
	free   map[string]map[string]bool
	jobs   map[protocol.UUID]*job
	queue  []protocol.UUID // pending jobs in submit order
	closed bool
	// Backfill allows later pending jobs to start ahead of blocked earlier
	// ones when they fit (simple, non-reserving backfill).
	Backfill bool
	// Flavor controls the environment variables exposed to scripts:
	// "slurm" (default) or "pbs".
	Flavor string
	// fair tracks decayed per-user usage when fairshare is enabled.
	fair       *fairshare
	fairWeight float64

	wg sync.WaitGroup
}

// Config describes the simulated cluster.
type Config struct {
	Partitions []Partition
	Backfill   bool
	Flavor     string
}

// New builds a scheduler from config. Node names must be unique within a
// partition.
func New(cfg Config) (*Scheduler, error) {
	if len(cfg.Partitions) == 0 {
		return nil, errors.New("scheduler: no partitions configured")
	}
	s := &Scheduler{
		partitions: make(map[string]*Partition),
		free:       make(map[string]map[string]bool),
		jobs:       make(map[protocol.UUID]*job),
		Backfill:   cfg.Backfill,
		Flavor:     cfg.Flavor,
	}
	if s.Flavor == "" {
		s.Flavor = "slurm"
	}
	for i := range cfg.Partitions {
		p := cfg.Partitions[i]
		if p.Name == "" {
			return nil, errors.New("scheduler: partition without a name")
		}
		if len(p.Nodes) == 0 {
			return nil, fmt.Errorf("scheduler: partition %q has no nodes", p.Name)
		}
		if _, dup := s.partitions[p.Name]; dup {
			return nil, fmt.Errorf("scheduler: duplicate partition %q", p.Name)
		}
		freeSet := make(map[string]bool, len(p.Nodes))
		for _, n := range p.Nodes {
			if freeSet[n] {
				return nil, fmt.Errorf("scheduler: duplicate node %q in partition %q", n, p.Name)
			}
			freeSet[n] = true
		}
		s.partitions[p.Name] = &p
		s.free[p.Name] = freeSet
	}
	return s, nil
}

// SimpleCluster builds a single-partition cluster with n nodes named
// node-000..node-(n-1) and no limits.
func SimpleCluster(n int) *Scheduler {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node-%03d", i)
	}
	s, err := New(Config{Partitions: []Partition{{Name: "default", Nodes: nodes}}, Backfill: true})
	if err != nil {
		panic(err)
	}
	return s
}

// Submit enqueues a job and returns its ID. The scheduling pass runs
// immediately, so a fitting job on an idle cluster starts before Submit
// returns.
func (s *Scheduler) Submit(spec JobSpec) (protocol.UUID, error) {
	if spec.Script == nil {
		return "", errors.New("scheduler: job without script")
	}
	if spec.Nodes <= 0 {
		spec.Nodes = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	if spec.Partition == "" {
		// Single-partition clusters accept unqualified submissions.
		if len(s.partitions) == 1 {
			for name := range s.partitions {
				spec.Partition = name
			}
		} else {
			return "", fmt.Errorf("%w: partition required", ErrUnknownPartition)
		}
	}
	p, ok := s.partitions[spec.Partition]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownPartition, spec.Partition)
	}
	maxNodes := p.MaxNodesPerJob
	if maxNodes == 0 {
		maxNodes = len(p.Nodes)
	}
	if spec.Nodes > maxNodes {
		return "", fmt.Errorf("%w: %d > %d in partition %q", ErrTooManyNodes, spec.Nodes, maxNodes, spec.Partition)
	}
	if p.MaxWalltime > 0 && spec.Walltime > p.MaxWalltime {
		return "", fmt.Errorf("%w: %s > %s", ErrWalltimeExceeded, spec.Walltime, p.MaxWalltime)
	}
	id := protocol.NewUUID()
	s.jobs[id] = &job{info: JobInfo{ID: id, Spec: spec, State: JobPending, Submitted: time.Now()}}
	s.queue = append(s.queue, id)
	s.scheduleLocked()
	return id, nil
}

// scheduleLocked starts pending jobs in priority order (ties FIFO); with
// Backfill, jobs that fit may overtake blocked ones.
func (s *Scheduler) scheduleLocked() {
	// Stable sort keeps submission order within a priority level;
	// fairshare (when enabled) folds decayed usage into the rank.
	sort.SliceStable(s.queue, func(a, b int) bool {
		return s.effectivePriorityLocked(s.jobs[s.queue[a]]) > s.effectivePriorityLocked(s.jobs[s.queue[b]])
	})
	remaining := s.queue[:0]
	blocked := false
	for _, id := range s.queue {
		j := s.jobs[id]
		if j.info.State != JobPending {
			continue
		}
		if blocked && !s.Backfill {
			remaining = append(remaining, id)
			continue
		}
		if s.tryStartLocked(j) {
			continue
		}
		blocked = true
		remaining = append(remaining, id)
	}
	s.queue = remaining
}

func (s *Scheduler) tryStartLocked(j *job) bool {
	part := j.info.Spec.Partition
	freeSet := s.free[part]
	if len(freeSet) < j.info.Spec.Nodes {
		return false
	}
	nodes := make([]string, 0, j.info.Spec.Nodes)
	for n := range freeSet {
		nodes = append(nodes, n)
		if len(nodes) == j.info.Spec.Nodes {
			break
		}
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		delete(freeSet, n)
	}
	j.info.State = JobRunning
	j.info.Nodes = nodes
	j.info.Started = time.Now()

	ctx := context.Background()
	var cancel context.CancelFunc
	if wt := j.info.Spec.Walltime; wt > 0 {
		ctx, cancel = context.WithTimeout(ctx, wt)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.cancel = cancel

	alloc := Allocation{JobID: j.info.ID, Nodes: nodes, Env: s.envFor(j.info.ID, nodes)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		err := j.info.Spec.Script(ctx, alloc)
		s.mu.Lock()
		defer s.mu.Unlock()
		if j.info.State == JobRunning {
			switch {
			case ctx.Err() == context.DeadlineExceeded:
				j.info.State = JobTimeout
				j.info.Reason = "walltime exceeded"
			case err != nil:
				j.info.State = JobFailed
				j.info.Reason = err.Error()
			default:
				j.info.State = JobCompleted
			}
		}
		j.info.Ended = time.Now()
		for _, n := range j.info.Nodes {
			s.free[part][n] = true
		}
		if s.fair != nil {
			s.fair.charge(j.info.Spec.User, len(j.info.Nodes), j.info.Ended.Sub(j.info.Started))
		}
		s.scheduleLocked()
	}()
	return true
}

// envFor builds the scheduler environment scripts see.
func (s *Scheduler) envFor(id protocol.UUID, nodes []string) map[string]string {
	nodelist := strings.Join(nodes, ",")
	switch s.Flavor {
	case "pbs":
		return map[string]string{
			"PBS_JOBID":         string(id),
			"PBS_NODEFILE_DATA": nodelist, // contents of $PBS_NODEFILE
			"PBS_NUM_NODES":     fmt.Sprint(len(nodes)),
		}
	default:
		return map[string]string{
			"SLURM_JOB_ID":       string(id),
			"SLURM_JOB_NODELIST": nodelist,
			"SLURM_NNODES":       fmt.Sprint(len(nodes)),
		}
	}
}

// Cancel terminates a pending or running job (scancel/qdel).
func (s *Scheduler) Cancel(id protocol.UUID) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch j.info.State {
	case JobPending:
		j.info.State = JobCancelled
		j.info.Reason = "cancelled while pending"
		j.info.Ended = time.Now()
		s.mu.Unlock()
		return nil
	case JobRunning:
		j.info.State = JobCancelled
		j.info.Reason = "cancelled"
		cancel := j.cancel
		s.mu.Unlock()
		cancel() // script sees ctx.Done; completion path frees nodes
		return nil
	default:
		s.mu.Unlock()
		return nil // cancelling a finished job is a no-op
	}
}

// Status returns a snapshot of one job.
func (s *Scheduler) Status(id protocol.UUID) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	info := j.info
	info.Nodes = append([]string(nil), j.info.Nodes...)
	return info, nil
}

// Queue lists all jobs (squeue-style), pending and running first by
// submission order, then finished.
func (s *Scheduler) Queue() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobInfo, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.info)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Submitted.Before(out[b].Submitted) })
	return out
}

// FreeNodes reports currently idle nodes in a partition.
func (s *Scheduler) FreeNodes(partition string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.free[partition]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownPartition, partition)
	}
	return len(f), nil
}

// TotalNodes reports the size of a partition.
func (s *Scheduler) TotalNodes(partition string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.partitions[partition]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownPartition, partition)
	}
	return len(p.Nodes), nil
}

// Close cancels all jobs and waits for scripts to finish.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var cancels []context.CancelFunc
	for _, j := range s.jobs {
		if j.info.State == JobPending {
			j.info.State = JobCancelled
			j.info.Reason = "scheduler shutdown"
			j.info.Ended = time.Now()
		}
		if j.info.State == JobRunning && j.cancel != nil {
			j.info.State = JobCancelled
			j.info.Reason = "scheduler shutdown"
			cancels = append(cancels, j.cancel)
		}
	}
	s.queue = nil
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	s.wg.Wait()
}
