# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

.PHONY: all build vet test race trace-race trace-bench bench bench-smoke bench-compare chaos crash overload overload-race obs-smoke route-smoke scenario scenario-full examples experiments fuzz fuzz-codec clean

all: build vet test trace-race chaos crash overload obs-smoke route-smoke fuzz-codec bench-smoke bench-compare scenario

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The tracing subsystem and the packages it instruments, under the race
# detector: the trace hot paths run concurrently in every component.
trace-race:
	$(GO) test -race ./internal/trace/ ./internal/broker/ ./internal/webservice/ \
		./internal/endpoint/ ./internal/engine/ ./internal/sdk/

# Fault-injection suite under the race detector: seeded chaos (connection
# drops, worker kills, publish failures) against the full stack, plus the
# chaos/reconnect/lease/retry unit tests. Fixed seeds make failures
# reproducible (see docs/ROBUSTNESS.md).
chaos:
	$(GO) test -race ./internal/chaos/
	$(GO) test -race -run 'TestChaos|TestReconnecting|TestWatchdog|TestHeartbeats|TestLease|TestPoison|TestWorkerCrash|TestDo' \
		./internal/core/ ./internal/broker/ \
		./internal/webservice/ ./internal/engine/ ./internal/sdk/ \
		./internal/experiments/

# Crash-recovery suite: builds the real gc-webservice binary, runs it with
# -data-dir, SIGKILLs it 3 times in the middle of a task storm, and asserts
# every acknowledged task reaches exactly one terminal state after WAL
# replay (see docs/DURABILITY.md). Gated on GC_CRASH so plain `go test
# ./...` stays fast.
crash:
	GC_CRASH=1 $(GO) test -count=1 -timeout 300s -v -run TestCrashRecovery ./internal/crash/

# Overload-protection suite: seeded tenant floods against the full
# in-process stack. Asserts a noisy tenant at 10x cannot move a well-behaved
# tenant's p99 beyond 2x its solo baseline, every shed carries Retry-After,
# every admitted task reaches exactly one terminal state, and idempotent
# retries replay the original task IDs across a -data-dir restart (see
# docs/ROBUSTNESS.md). Gated on GC_OVERLOAD so plain `go test ./...` stays
# fast; also runs the admission/fairshare/webservice packages under the race
# detector via overload-race.
overload: overload-race
	GC_OVERLOAD=1 $(GO) test -race -count=1 -timeout 300s -v -run TestOverload ./internal/overload/

# The overload-protection hot paths (token buckets, in-flight accounting,
# idempotency stripes, priority queues) under the race detector.
overload-race:
	$(GO) test -race ./internal/scheduler/... ./internal/webservice/... ./internal/broker/... ./internal/statestore/...

# Observability smoke: boots the in-process testbed, scrapes and lints the
# /metrics/fleet federation format, then kills an endpoint under load and
# asserts the staleness and failure-rate SLOs fire on /debug/fleet and
# recover after a restart (see docs/OBSERVABILITY.md).
obs-smoke:
	$(GO) test -race -run TestObsSmoke -v ./internal/core/

# Span creation/collection overhead (the per-task cost of tracing).
trace-bench:
	$(GO) test -bench=. -benchmem ./internal/trace/

# Regenerates every table/figure as testing.B measurements.
bench:
	$(GO) test -bench=. -benchmem ./...

# Routing placement smoke: 1000 simulated endpoints (2% of them 10x slower)
# under the race detector, routed by random vs power-of-two-choices at the
# same offered load. Asserts p2c holds p99 task latency to <= 0.5x random's
# without losing throughput (see docs/PERFORMANCE.md "Load-aware placement").
# Gated on GC_ROUTE so plain `go test ./...` stays fast.
route-smoke:
	GC_ROUTE=1 $(GO) test -race -count=1 -timeout 600s -v -run TestRouteSmoke ./internal/experiments/

# Fast saturation run recording the current task-path numbers (now with the
# route-random/route-p2c placement arms over a 10k-endpoint simulated fleet)
# into BENCH_pr9.json — see docs/PERFORMANCE.md for how to read it.
bench-smoke:
	$(GO) run ./cmd/gc-bench -exp saturation -n 3000 -fleet 10000 -json BENCH_pr9.json

# Regression gate: diff the fresh run against the recorded PR-8 baseline and
# fail on a >10% tasks/s drop (or p50/p99 rise) in any arm present in both,
# a >10% drop in the codec-speedup / dedup-reduction headline ratios, or a
# route-p2c p99 improvement below its 2x floor.
bench-compare:
	$(GO) run ./cmd/gc-bench -compare BENCH_pr8.json,BENCH_pr9.json

# Scenario harness: builds the real gc-webservice (with -pprof), stands up a
# 16-endpoint simulated fleet behind a p2c routing group, and drives the
# built-in steady + burst profiles through the loadgen/sampler/gate pipeline
# (see docs/SCENARIOS.md). Passes only when every run-validity gate holds,
# the burst backlog p95 recovers within its window, and burst-peak pprof
# captures land on disk. Records both summaries in SCENARIO_pr10.json; run
# outputs (samples.csv, summary.json, *.pb.gz) land under scenario-runs/.
# Gated on GC_SCENARIO so plain `go test ./...` stays fast.
scenario:
	GC_SCENARIO=1 GC_SCENARIO_OUT=$(CURDIR)/SCENARIO_pr10.json \
		$(GO) test -count=1 -timeout 300s -v -run TestScenarioHarness ./internal/scenario/

# Long-form soak: the multi-minute steady-full + burst-full profiles
# (repeated bursts, every recovery gated). Not part of `make all`.
scenario-full:
	GC_SCENARIO=1 GC_SCENARIO_FULL=1 GC_SCENARIO_OUT=$(CURDIR)/SCENARIO_full.json \
		$(GO) test -count=1 -timeout 900s -v -run TestScenarioHarness ./internal/scenario/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/shellmpi
	$(GO) run ./examples/multiuser
	$(GO) run ./examples/proxystore
	$(GO) run ./examples/realtime

# Prints every paper experiment as a report (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/gc-bench -exp all

fuzz:
	$(GO) test -fuzz FuzzFrameReader -fuzztime 30s ./internal/protocol/
	$(GO) test -fuzz FuzzRender -fuzztime 30s ./internal/template/
	$(GO) test -fuzz FuzzParseRules -fuzztime 30s ./internal/idmap/

# Short codec fuzz pass run as part of `make all`: binary<->JSON equivalence
# and binary-decode hardening (see docs/PROTOCOL.md "Binary encoding").
fuzz-codec:
	$(GO) test -fuzz FuzzCodecEquivalence -fuzztime 10s ./internal/protocol/
	$(GO) test -fuzz FuzzBinaryDecode -fuzztime 10s ./internal/protocol/

clean:
	$(GO) clean ./...
