module globuscompute

go 1.22
