// ShellFunction and MPIFunction walkthrough: the paper's Listings 2, 3,
// and 6/7 — wrapping external commands, walltime enforcement, and MPI
// applications with resource specifications on a simulated cluster.
//
//	go run ./examples/shellmpi
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/sdk"
)

func main() {
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	tok, err := tb.IssueToken("hpc-user@example.edu", "example")
	if err != nil {
		log.Fatal(err)
	}
	endpointID, err := tb.StartEndpoint(core.EndpointOptions{
		Name: "hpc-endpoint", Owner: "hpc-user@example.edu",
		WithMPI: true, MPIBlockNodes: 2, Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	client := sdk.NewClient(tb.ServiceAddr(), tok.Value)
	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer bc.Close()
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: client, EndpointID: endpointID, Conn: bc.AsConn(),
		Objects: objectstore.NewClient(tb.ObjectsSrv.Addr()),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Listing 2: ShellFunction with invocation-time formatting.
	fmt.Println("-- Listing 2: ShellFunction('echo {message}') --")
	sf := sdk.NewShellFunction("echo '{message}'")
	for _, msg := range []string{"hello", "hola", "bonjour"} {
		fut, err := ex.SubmitShell(sf, map[string]string{"message": msg})
		if err != nil {
			log.Fatal(err)
		}
		sr, err := fut.ShellResult(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(sr.Stdout)
	}

	// Listing 3: walltime -> return code 124.
	fmt.Println("-- Listing 3: walltime enforcement --")
	bf := sdk.NewShellFunction("sleep 2")
	bf.WalltimeSec = 1
	fut, err := ex.SubmitShell(bf, nil)
	if err != nil {
		log.Fatal(err)
	}
	sr, err := fut.ShellResult(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("returncode: %d\n", sr.ReturnCode)

	// Listings 6/7: MPIFunction with a resource specification. GC_NODE is
	// the simulated launcher's hostname equivalent.
	fmt.Println("-- Listing 6/7: MPIFunction hostname --")
	mpiFn := sdk.NewMPIFunction("echo $GC_NODE")
	for n := 1; n <= 2; n++ {
		fmt.Printf("n=%d\n", n)
		ex.ResourceSpec = protocol.ResourceSpec{NumNodes: 2, RanksPerNode: n}
		fut, err := ex.SubmitMPI(mpiFn, nil)
		if err != nil {
			log.Fatal(err)
		}
		sr, err := fut.ShellResult(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(sr.Stdout)
	}
}
