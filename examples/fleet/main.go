// Fleet scheduling walkthrough: the paper's §VI Delta and GreenFaaS
// patterns — route tasks across heterogeneous endpoints using online
// runtime profiles (fastest) or an energy model (greenest).
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/fleet"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/sdk"
)

func main() {
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	tok, err := tb.IssueToken("scheduler@example.edu", "example")
	if err != nil {
		log.Fatal(err)
	}
	client := sdk.NewClient(tb.ServiceAddr(), tok.Value)
	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer bc.Close()
	objects := objectstore.NewClient(tb.ObjectsSrv.Addr())

	// Two endpoints with very different capacity and power draw: a big
	// HPC allocation and a small edge box.
	makeTarget := func(name string, workers int, watts float64) *fleet.Target {
		epID, err := tb.StartEndpoint(core.EndpointOptions{
			Name: name, Owner: "scheduler@example.edu",
			Workers: workers, MaxBlocks: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
			Client: client, EndpointID: epID, Conn: bc.AsConn(), Objects: objects,
		})
		if err != nil {
			log.Fatal(err)
		}
		return &fleet.Target{Name: name, Endpoint: epID, Executor: ex, PowerWatts: watts}
	}
	hpc := makeTarget("hpc-allocation", 8, 400)
	edge := makeTarget("edge-box", 1, 40)
	defer hpc.Executor.Close()
	defer edge.Executor.Close()

	work := sdk.NewShellFunction("sleep 0.04")
	runPolicy := func(policy fleet.Policy) {
		sched, err := fleet.NewScheduler(policy, []*fleet.Target{hpc, edge})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for round := 0; round < 8; round++ {
			var futs []*sdk.Future
			for j := 0; j < 4; j++ {
				fut, _, err := sched.SubmitShell(work, nil)
				if err != nil {
					log.Fatal(err)
				}
				futs = append(futs, fut)
			}
			for _, fut := range futs {
				if _, err := fut.ResultWithin(time.Minute); err != nil {
					log.Fatal(err)
				}
			}
		}
		routed := sched.Routed()
		fmt.Printf("%-12s %6dms  routed hpc=%d edge=%d", policy,
			time.Since(start).Milliseconds(), routed["hpc-allocation"], routed["edge-box"])
		if energy := sched.EstimatedEnergy(work.Command); len(energy) > 0 {
			fmt.Printf("  est. J/task hpc=%.2f edge=%.2f", energy["hpc-allocation"], energy["edge-box"])
		}
		fmt.Println()
	}

	fmt.Println("policy       makespan  routing")
	runPolicy(fleet.RoundRobin)
	runPolicy(fleet.Fastest)  // Delta: runtime-predictive routing
	runPolicy(fleet.Greenest) // GreenFaaS: energy-predictive routing
}
