// Quickstart: the paper's Listing 1 — submit a function through the
// future-based Executor and print its result.
//
// The whole stack (web service, broker, object store, an endpoint with a
// local worker pool) boots inside this process, so it runs offline:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/sdk"
)

func main() {
	// Boot the deployment: cloud services plus a simulated cluster.
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	// Authenticate (Globus Auth substitute) and start an endpoint.
	tok, err := tb.IssueToken("demo@example.edu", "example")
	if err != nil {
		log.Fatal(err)
	}
	endpointID, err := tb.StartEndpoint(core.EndpointOptions{
		Name: "quickstart-endpoint", Owner: "demo@example.edu", Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("endpoint online: %s\n", endpointID)

	// Listing 1:
	//
	//	with Executor(endpoint_id="...") as ex:
	//	    fut = ex.submit(some_task)
	//	    print("Result:", fut.result())
	client := sdk.NewClient(tb.ServiceAddr(), tok.Value)
	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer bc.Close()
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client:     client,
		EndpointID: endpointID,
		Conn:       bc.AsConn(), // streamed results, no polling
		Objects:    objectstore.NewClient(tb.ObjectsSrv.Addr()),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()

	someTask := &sdk.PythonFunction{Entrypoint: "identity"}
	fut, err := ex.Submit(someTask, 1)
	if err != nil {
		log.Fatal(err)
	}
	result, err := fut.ResultWithin(30 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Result: %s\n", result)

	// Futures compose: fan out a batch and gather.
	add := &sdk.PythonFunction{Entrypoint: "add"}
	var futs []*sdk.Future
	for i := 1; i <= 5; i++ {
		f, err := ex.Submit(add, i, i*10)
		if err != nil {
			log.Fatal(err)
		}
		futs = append(futs, f)
	}
	for i, f := range futs {
		out, err := f.ResultWithin(30 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("add(%d, %d) = %s\n", i+1, (i+1)*10, out)
	}
}
