// Multi-user endpoint walkthrough: the paper's §IV and Listings 8-10 — an
// administrator deploys a MEP with an identity mapping and a configuration
// template; two users submit with their own configurations; user endpoints
// spawn under mapped local accounts and are reaped when idle.
//
//	go run ./examples/multiuser
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/idmap"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/sdk"
)

func main() {
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	// Listing 8: identities from uchicago.edu map to their local part;
	// a guest account is mapped through a second rule.
	mapper, err := idmap.NewExpressionMapper([]idmap.Rule{
		{Source: "{username}", Match: `(.*)@uchicago\.edu`, Output: "{0}"},
		{Source: "{username}", Match: `(.*)@partner\.org`, Output: "guest_{0}"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Listing 9 (JSON rendering of the admin template): fixed engine and
	// partition, user-configurable block size, account, and walltime.
	mepID, mgr, err := tb.StartMEP(core.MEPOptions{
		Name: "SlurmHPC", Owner: "admin@uchicago.edu",
		Mapper:      mapper,
		IdleTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-user endpoint deployed: %s\n", mepID)

	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer bc.Close()
	objects := objectstore.NewClient(tb.ObjectsSrv.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Listing 10: each user supplies a configuration matching the
	// template's variables; the same config hash reuses one UEP.
	runAs := func(username string, conf map[string]any) {
		tok, err := tb.IssueToken(username, "uchicago")
		if err != nil {
			log.Fatal(err)
		}
		client := sdk.NewClient(tb.ServiceAddr(), tok.Value)
		ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
			Client: client, EndpointID: mepID, Conn: bc.AsConn(), Objects: objects,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer ex.Close()
		ex.UserEndpointConfig = conf

		fut, err := ex.SubmitShell(sdk.NewShellFunction("echo running as $GC_LOCAL_USER"), nil)
		if err != nil {
			log.Fatal(err)
		}
		sr, err := fut.ShellResult(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s -> %s\n", username, sr.Stdout)
	}

	runAs("alice@uchicago.edu", map[string]any{
		"NODES_PER_BLOCK": 2, "ACCOUNT_ID": "314159265", "WALLTIME": "00:20:00",
	})
	runAs("bob@uchicago.edu", map[string]any{
		"NODES_PER_BLOCK": 1, "ACCOUNT_ID": "271828182",
	})
	// Same config as alice's -> the service routes to her existing UEP.
	runAs("alice@uchicago.edu", map[string]any{
		"NODES_PER_BLOCK": 2, "ACCOUNT_ID": "314159265", "WALLTIME": "00:20:00",
	})

	stats := mgr.Stats()
	fmt.Printf("user endpoints spawned: %d (by local account: %v)\n",
		stats.ChildrenSpawned, stats.ByLocalUser)

	// Idle reaping: "once the submitted tasks are completed, the user
	// endpoint is destroyed".
	deadline := time.Now().Add(30 * time.Second)
	for mgr.Stats().ActiveChildren > 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("idle user endpoints reaped: %d active remain\n", mgr.Stats().ActiveChildren)

	// An unmapped identity is refused access (no SSH account needed, no
	// endpoint spawned).
	tok, _ := tb.IssueToken("stranger@elsewhere.net", "elsewhere")
	client := sdk.NewClient(tb.ServiceAddr(), tok.Value)
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: client, EndpointID: mepID, Conn: bc.AsConn(), Objects: objects,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()
	ex.UserEndpointConfig = map[string]any{"NODES_PER_BLOCK": 1, "ACCOUNT_ID": "0"}
	if _, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, 1); err == nil {
		time.Sleep(300 * time.Millisecond) // let the MEP log the rejection
	}
	fmt.Printf("unauthorized identities rejected: %d\n", mgr.Stats().IdentityRejected)
}
