// Data movement walkthrough: the paper's §V — the 10 MB payload limit,
// ProxyStore pass-by-reference for large objects, and Globus Transfer for
// file-based datasets.
//
//	go run ./examples/proxystore
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/proxyexec"
	"globuscompute/internal/proxystore"
	"globuscompute/internal/sdk"
	"globuscompute/internal/serialize"
	"globuscompute/internal/transfer"
)

func main() {
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	tok, err := tb.IssueToken("data@example.edu", "example")
	if err != nil {
		log.Fatal(err)
	}
	// One in-site store shared by the client and the endpoint's workers;
	// the endpoint resolves proxied arguments transparently and proxies
	// large results back (§V-B).
	siteStore, err := proxystore.NewStore("site",
		proxystore.ObjectStoreConnector{Backend: tb.Objects}, 16)
	if err != nil {
		log.Fatal(err)
	}
	endpointID, err := tb.StartEndpoint(core.EndpointOptions{
		Name: "data-ep", Owner: "data@example.edu",
		ProxyStore: siteStore, ProxyPolicy: proxystore.Policy{MinSize: 64 << 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	client := sdk.NewClient(tb.ServiceAddr(), tok.Value)
	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer bc.Close()
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: client, EndpointID: endpointID, Conn: bc.AsConn(),
		Objects: objectstore.NewClient(tb.ObjectsSrv.Addr()),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()

	// 1. The payload limit: a 16 MB argument is refused by the service.
	fmt.Println("-- payload limit --")
	big := strings.Repeat("x", serialize.MaxPayload+1)
	fut, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, big)
	if err == nil {
		_, err = fut.ResultWithin(time.Minute)
	}
	fmt.Printf("16 MB pass-by-value: %v\n", err)

	// 2. ProxyStore: put the object in the shared store and pass only the
	// reference through the cloud.
	fmt.Println("-- proxystore pass-by-reference --")
	store := siteStore
	reg := proxystore.NewRegistry()
	reg.Register(store)
	proxy, err := store.Put(big)
	if err != nil {
		log.Fatal(err)
	}
	ref := proxy.Reference()
	fmt.Printf("proxied %d bytes as reference {store=%s key=%s...}\n",
		ref.Size, ref.Store, ref.Key[:12])
	fut2, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"},
		map[string]any{"ps_store": ref.Store, "ps_key": ref.Key, "ps_size": ref.Size})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fut2.ResultWithin(time.Minute); err != nil {
		log.Fatal(err)
	}
	var resolved string
	if err := proxy.ResolveInto(&resolved); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference passed through the cloud; resolved %d bytes from the store\n", len(resolved))

	// 2b. The executor wrapper automates this: arguments above the policy
	// size are proxied on submit, and results resolve transparently.
	fmt.Println("-- proxystore executor wrapper --")
	wrapReg := proxystore.NewRegistry()
	wrapReg.Register(store)
	wrapped, err := proxyexec.Wrap(ex, store, wrapReg, proxystore.Policy{MinSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	futW, err := wrapped.Submit(&sdk.PythonFunction{Entrypoint: "identity"},
		strings.Repeat("auto", 100_000)) // 400 kB: proxied automatically
	if err != nil {
		log.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), time.Minute)
	defer wcancel()
	outW, err := wrapped.Result(wctx, futW)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrapper round-tripped %d bytes with only references through the cloud\n", len(outW))

	// 3. Globus Transfer: move files between Connect endpoints,
	// fire-and-forget with status polling.
	fmt.Println("-- globus transfer --")
	ts := transfer.NewService()
	defer ts.Close()
	lab, err := ts.CreateEndpoint("lab-storage", filepath.Join(tbDir(), "lab"))
	if err != nil {
		log.Fatal(err)
	}
	hpc, err := ts.CreateEndpoint("hpc-scratch", filepath.Join(tbDir(), "hpc"))
	if err != nil {
		log.Fatal(err)
	}
	if err := writeDataset(lab, "dataset.bin", 1<<20); err != nil {
		log.Fatal(err)
	}
	taskID, err := ts.Submit(transfer.Spec{
		Source: lab.ID, Destination: hpc.ID,
		Items: []transfer.Item{{SourcePath: "dataset.bin", DestPath: "in/dataset.bin"}},
		Label: "stage input data",
	})
	if err != nil {
		log.Fatal(err)
	}
	info, err := ts.Wait(taskID, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transfer %s: %s, %d files, %d bytes\n",
		taskID[:8], info.Status, info.FilesTransferred, info.BytesTransferred)

	// The staged file is now visible to ShellFunctions on the endpoint.
	sf := sdk.NewShellFunction("wc -c < {file}")
	fut3, err := ex.SubmitShell(sf, map[string]string{
		"file": filepath.Join(hpc.Root, "in/dataset.bin"),
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sr, err := fut3.ShellResult(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task sees staged file: %s bytes\n", strings.TrimSpace(sr.Stdout))
}

// tbDir returns a scratch directory for the transfer endpoints.
func tbDir() string {
	dir, err := os.MkdirTemp("", "gc-transfer-*")
	if err != nil {
		log.Fatal(err)
	}
	return dir
}

// writeDataset creates a synthetic input file on an endpoint.
func writeDataset(ep transfer.Endpoint, rel string, size int) error {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	return os.WriteFile(filepath.Join(ep.Root, rel), data, 0o644)
}
