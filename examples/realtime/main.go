// Real-time analysis pipeline: the paper's §VI APS pattern — Globus
// Flows orchestrating data transfer, Globus Compute analysis, metadata
// extraction, and result publication, as beamline data arrives.
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/flows"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/sdk"
	"globuscompute/internal/transfer"
)

func main() {
	// The computing facility: full Globus Compute stack + an endpoint.
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	tok, err := tb.IssueToken("beamline@aps.anl.gov", "anl")
	if err != nil {
		log.Fatal(err)
	}
	endpointID, err := tb.StartEndpoint(core.EndpointOptions{
		Name: "alcf-endpoint", Owner: "beamline@aps.anl.gov", Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	client := sdk.NewClient(tb.ServiceAddr(), tok.Value)
	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer bc.Close()
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: client, EndpointID: endpointID, Conn: bc.AsConn(),
		Objects: objectstore.NewClient(tb.ObjectsSrv.Addr()),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()

	// The data fabric: instrument storage, compute scratch, and the
	// publication portal, as Globus Connect endpoints.
	ts := transfer.NewService()
	defer ts.Close()
	scratchBase, err := os.MkdirTemp("", "aps-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(scratchBase)
	instrument, _ := ts.CreateEndpoint("aps-detector", filepath.Join(scratchBase, "detector"))
	scratch, _ := ts.CreateEndpoint("alcf-scratch", filepath.Join(scratchBase, "scratch"))
	portal, _ := ts.CreateEndpoint("data-portal", filepath.Join(scratchBase, "portal"))

	// The per-acquisition flow: stage in -> analyze -> extract metadata ->
	// publish.
	analyze := sdk.NewShellFunction(
		"wc -c < {input} > {output} && echo analyzed $(cat {output}) bytes")
	pipeline := flows.Flow{
		Name: "aps-analysis",
		Actions: []flows.Action{
			flows.TransferAction("stage-in", ts, func(s flows.State) (transfer.Spec, error) {
				return transfer.Spec{
					Source: instrument.ID, Destination: scratch.ID,
					Items: []transfer.Item{{
						SourcePath: s["acquisition"].(string),
						DestPath:   s["acquisition"].(string),
					}},
				}, nil
			}, "stage_in_task"),
			flows.ShellAction("analyze", ex, analyze, func(s flows.State) map[string]string {
				name := s["acquisition"].(string)
				return map[string]string{
					"input":  filepath.Join(scratch.Root, name),
					"output": filepath.Join(scratch.Root, name+".result"),
				}
			}, "analysis_log"),
			flows.ComputeAction("extract-metadata", ex,
				&sdk.PythonFunction{Entrypoint: "echo_kwargs"}, nil, ""),
			flows.TransferAction("publish", ts, func(s flows.State) (transfer.Spec, error) {
				name := s["acquisition"].(string)
				return transfer.Spec{
					Source: scratch.ID, Destination: portal.ID,
					Items: []transfer.Item{{SourcePath: name + ".result", DestPath: name + ".result"}},
				}, nil
			}, ""),
		},
	}

	// Acquisitions arrive; each fires a flow (fire and forget, as the
	// beamline does with Globus Flows).
	runner := flows.NewRunner()
	defer runner.Close()
	type started struct {
		name string
		id   protocol.UUID
	}
	var runs []started
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("scan-%03d.raw", i)
		data := make([]byte, 1024*i)
		if err := os.WriteFile(filepath.Join(instrument.Root, name), data, 0o644); err != nil {
			log.Fatal(err)
		}
		id, err := runner.Start(pipeline, flows.State{"acquisition": name})
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, started{name: name, id: id})
		fmt.Printf("acquisition %s -> flow run %s\n", name, id[:8])
	}

	// Watch the runs complete.
	for _, r := range runs {
		info, err := runner.Wait(r.id, 2*time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s in %d actions (%s)\n", r.name, info.Status, len(info.Log),
			info.Completed.Sub(info.Started).Round(time.Millisecond))
		for _, a := range info.Log {
			fmt.Printf("    %-18s %s\n", a.Name, a.Elapsed.Round(time.Millisecond))
		}
	}

	// The portal now holds the published results.
	entries, _ := os.ReadDir(portal.Root)
	fmt.Printf("published artifacts: %d\n", len(entries))
	for _, ent := range entries {
		fmt.Printf("    %s\n", ent.Name())
	}
}
