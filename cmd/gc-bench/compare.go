package main

import (
	"encoding/json"
	"fmt"
	"os"

	"globuscompute/internal/experiments"
)

// compareTolerance is the relative regression budget: a shared arm may lose
// up to this fraction of tasks/s (or gain this fraction of p50/p99 latency)
// before the comparison fails.
const compareTolerance = 0.10

// latencySlackUS is the absolute latency floor below which percentile
// movement is treated as noise: a p50 going 80us -> 120us is a scheduler
// wobble, not a regression, so the rise must clear both the relative
// tolerance and this many microseconds. The floor is sized to the sampling
// error of the smoke run: p99 over a paced arm is its ~20 worst samples,
// and back-to-back runs of identical code on a shared machine move the
// full-agent (ep-*) and fsync-bound (wal-on) paced tails by 1.3-2.9ms —
// engine scheduling, GC, and disk contention, not code. The floor sits
// just above that measured identical-code wobble.
const latencySlackUS = 3000

// compareSaturation diffs two saturation JSON artifacts (old, new), prints a
// per-arm table, and returns an error if any arm present in both files
// regressed: tasks/s down more than the tolerance, or p50/p99 up more than
// the tolerance by more than the slack floor.
func compareSaturation(oldPath, newPath string) error {
	oldRes, err := readSaturation(oldPath)
	if err != nil {
		return err
	}
	newRes, err := readSaturation(newPath)
	if err != nil {
		return err
	}

	type key struct {
		transport, mode string
		batch, offered  int
	}
	index := make(map[key]experiments.SaturationPoint, len(oldRes.Points))
	for _, p := range oldRes.Points {
		index[key{p.Transport, p.Mode, p.Batch, p.OfferedPerS}] = p
	}

	// Saturation tasks/s is only comparable within one measurement
	// methodology: version 0 recorded short bursts, version 1+ records
	// calibrated sustained rates. Across a version bump, gate only the
	// paced arms (whose methodology never changed) and let the new file
	// become the baseline for the next compare.
	skipSaturation := oldRes.MeasureVersion != newRes.MeasureVersion

	fmt.Printf("# saturation compare: %s -> %s (tolerance %.0f%%)\n", oldPath, newPath, compareTolerance*100)
	if skipSaturation {
		fmt.Printf("# measure_version %d -> %d: saturation (offered=max) arms re-baselined, paced arms still gated\n",
			oldRes.MeasureVersion, newRes.MeasureVersion)
	}
	fmt.Printf("%-8s %-12s %6s %10s | %12s %10s %10s | %s\n",
		"transport", "mode", "batch", "offered/s", "tasks/s", "p50", "p99", "verdict")
	shared, failures := 0, 0
	for _, np := range newRes.Points {
		op, ok := index[key{np.Transport, np.Mode, np.Batch, np.OfferedPerS}]
		if !ok {
			continue // new arm with no baseline: informational only
		}
		if skipSaturation && np.OfferedPerS == 0 {
			continue
		}
		shared++
		var bad []string
		if op.AchievedPerS > 0 && np.AchievedPerS < op.AchievedPerS*(1-compareTolerance) {
			bad = append(bad, fmt.Sprintf("tasks/s %.0f -> %.0f", op.AchievedPerS, np.AchievedPerS))
		}
		// Latency percentiles are only a service-time signal on rate-limited
		// arms. At saturation (offered = max) they measure queue depth at
		// whatever rate the machine sustained that day — tasks/s already
		// gates that arm, and its percentiles swing wildly between runs of
		// identical code. Fleet route arms are gated on the p2c-vs-random
		// ratio below instead: their absolute percentiles are queue dynamics
		// over thousands of simulated endpoints, noisy run to run.
		if np.OfferedPerS > 0 && np.Transport != "fleet" {
			for _, lat := range []struct {
				name     string
				old, new float64
			}{{"p50", op.P50US, np.P50US}, {"p99", op.P99US, np.P99US}} {
				if lat.new > lat.old*(1+compareTolerance) && lat.new-lat.old > latencySlackUS {
					bad = append(bad, fmt.Sprintf("%s %.0fus -> %.0fus", lat.name, lat.old, lat.new))
				}
			}
		}
		verdict := "ok"
		if len(bad) > 0 {
			failures++
			verdict = "REGRESSED"
			for _, b := range bad {
				verdict += " [" + b + "]"
			}
		}
		offered := "max"
		if np.OfferedPerS > 0 {
			offered = fmt.Sprintf("%d", np.OfferedPerS)
		}
		fmt.Printf("%-8s %-12s %6d %10s | %5.0f->%-6.0f %4.0f->%-5.0f %4.0f->%-5.0f | %s\n",
			np.Transport, np.Mode, np.Batch, offered,
			op.AchievedPerS, np.AchievedPerS, op.P50US, np.P50US, op.P99US, np.P99US, verdict)
	}
	// Headline ratio fields gate like arms when both files record them: the
	// codec speedup is saturation-derived (so it re-baselines across a
	// measure_version bump), the dedup byte reduction is deterministic byte
	// accounting and always gates. Ratios with a floor must also clear it
	// absolutely in the new file — the route p99 improvement, for example,
	// must stay >= 2x (p2c p99 <= 0.5x random p99) no matter what the
	// baseline recorded.
	for _, r := range []struct {
		name         string
		old, new     float64
		saturational bool
		floor        float64
	}{
		{"codec_on_vs_off_at_saturation", oldRes.CodecSpeedup, newRes.CodecSpeedup, true, 0},
		{"dedup_byte_reduction_fanout16", oldRes.DedupByteReduction, newRes.DedupByteReduction, false, 0},
		// Queue dynamics over thousands of simulated endpoints make the p99
		// ratio noisy run to run, so it gates on its absolute floor only.
		{"route_p2c_p99_improvement", 0, newRes.RouteP2CImprovement, false, 2.0},
		{"route_p2c_throughput_ratio", 0, newRes.RouteP2CThroughput, false, 0.95},
	} {
		if r.new <= 0 || (r.saturational && skipSaturation) {
			continue
		}
		if r.old <= 0 && r.floor <= 0 {
			continue
		}
		shared++
		verdict := "ok"
		if r.old > 0 && r.new < r.old*(1-compareTolerance) {
			failures++
			verdict = fmt.Sprintf("REGRESSED [%.2fx -> %.2fx]", r.old, r.new)
		} else if r.floor > 0 && r.new < r.floor {
			failures++
			verdict = fmt.Sprintf("REGRESSED [%.2fx < floor %.2fx]", r.new, r.floor)
		}
		fmt.Printf("%-38s %.2fx -> %.2fx | %s\n", r.name, r.old, r.new, verdict)
	}
	if shared == 0 {
		return fmt.Errorf("no shared arms between %s and %s", oldPath, newPath)
	}
	fmt.Printf("# %d shared arm(s), %d regressed\n", shared, failures)
	if failures > 0 {
		return fmt.Errorf("%d of %d shared arm(s) regressed beyond %.0f%%", failures, shared, compareTolerance*100)
	}
	return nil
}

func readSaturation(path string) (*experiments.SaturationResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res experiments.SaturationResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(res.Points) == 0 {
		return nil, fmt.Errorf("%s: no points", path)
	}
	return &res, nil
}
