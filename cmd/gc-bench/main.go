// Command gc-bench regenerates the paper's figures, listings, and
// quantitative claims (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for recorded outputs).
//
// Usage:
//
//	gc-bench -exp fig2            # one experiment
//	gc-bench -exp all             # everything
//	gc-bench -list                # list experiment IDs
//	gc-bench -compare old.json,new.json   # regression-gate two saturation runs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"globuscompute/internal/experiments"
)

type runner struct {
	id, desc string
	run      func() (experiments.Report, error)
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID (or 'all')")
		list    = flag.Bool("list", false, "list experiment IDs")
		n       = flag.Int("n", 200, "task count for load experiments")
		seed    = flag.Int64("seed", 42, "workload seed")
		full    = flag.Bool("full", false, "print full per-day series for fig2")
		csvDir  = flag.String("csv", "", "also write each report's rows to <dir>/<id>.csv")
		jsonOut = flag.String("json", "", "write the saturation experiment's structured result to this file")
		fleetN  = flag.Int("fleet", 10000, "simulated endpoint count for the saturation route arms")
		compare = flag.String("compare", "", "old.json,new.json: diff two saturation results and fail on >10% regression in shared arms")
	)
	flag.Parse()

	if *compare != "" {
		parts := strings.SplitN(*compare, ",", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "gc-bench: -compare wants old.json,new.json")
			os.Exit(2)
		}
		if err := compareSaturation(parts[0], parts[1]); err != nil {
			fmt.Fprintf(os.Stderr, "gc-bench: compare: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var satResult *experiments.SaturationResult

	runners := []runner{
		{"fig2", "task invocations per day (Fig. 2)", func() (experiments.Report, error) {
			return experiments.Fig2(*seed, *full), nil
		}},
		{"fig1", "multi-user endpoint flow trace (Fig. 1)", experiments.Fig1},
		{"usage", "deployment statistics (§VI)", func() (experiments.Report, error) {
			return experiments.Usage(*seed)
		}},
		{"streaming", "executor streaming vs polling (T1)", func() (experiments.Report, error) {
			return experiments.Streaming(*n)
		}},
		{"batching", "request batching (T2)", func() (experiments.Report, error) {
			return experiments.Batching(*n)
		}},
		{"walltime", "ShellFunction walltime, Listing 3 (T3)", experiments.Walltime},
		{"sandbox", "sandbox isolation (T4)", func() (experiments.Report, error) {
			return experiments.Sandbox(8)
		}},
		{"mpi-hostname", "MPIFunction hostname, Listings 6/7", experiments.MPIHostname},
		{"mpi-prefix", "launcher prefix resolution", func() (experiments.Report, error) {
			return experiments.BuildPrefixDemo(), nil
		}},
		{"mpi-packing", "concurrent MPI apps in one batch job (T5)", func() (experiments.Report, error) {
			return experiments.MPIPacking(24, 8, *seed)
		}},
		{"mpi-strategies", "partitioner strategy ablation (A2)", func() (experiments.Report, error) {
			return experiments.MPIStrategies(24, 8, *seed)
		}},
		{"mep-reuse", "user endpoint reuse by config hash (T6)", func() (experiments.Report, error) {
			return experiments.MEPReuse(3)
		}},
		{"elasticity", "provider elasticity (A3)", func() (experiments.Report, error) {
			return experiments.Elasticity(48)
		}},
		{"proxystore", "pass-by-reference vs cloud payloads (T8)", func() (experiments.Report, error) {
			return experiments.ProxyStore(nil)
		}},
		{"fleet", "Delta/GreenFaaS routing over a heterogeneous fleet (§VI)", func() (experiments.Report, error) {
			return experiments.Fleet(10)
		}},
		{"containers", "containerized execution: cold pull vs warm reuse", func() (experiments.Report, error) {
			return experiments.Containers(6)
		}},
		{"latency", "end-to-end task latency breakdown", func() (experiments.Report, error) {
			return experiments.Latency(*n)
		}},
		{"fairshare", "batch fairshare ablation on the scheduler substrate", func() (experiments.Report, error) {
			return experiments.Fairshare(12)
		}},
		{"saturation", "broker saturation: wire batching vs per-task round trips (PR 3)", func() (experiments.Report, error) {
			rep, data, err := experiments.Saturation(*n, *fleetN)
			satResult = data
			return rep, err
		}},
	}

	if *list {
		for _, r := range runners {
			fmt.Printf("%-15s %s\n", r.id, r.desc)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "gc-bench: -exp required (use -list to see experiments)")
		os.Exit(2)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "gc-bench: %v\n", err)
			os.Exit(1)
		}
	}
	failed := 0
	for _, r := range runners {
		if *exp != "all" && *exp != r.id {
			continue
		}
		report, err := r.run()
		fmt.Print(report.String())
		if err != nil {
			fmt.Fprintf(os.Stderr, "gc-bench: %s: %v\n", r.id, err)
			failed++
		}
		if *csvDir != "" && err == nil {
			if werr := writeCSV(*csvDir, report); werr != nil {
				fmt.Fprintf(os.Stderr, "gc-bench: csv %s: %v\n", r.id, werr)
			}
		}
		if *jsonOut != "" && err == nil && satResult != nil {
			if werr := writeJSON(*jsonOut, satResult); werr != nil {
				fmt.Fprintf(os.Stderr, "gc-bench: json %s: %v\n", r.id, werr)
				failed++
			} else {
				fmt.Printf("# wrote %s\n", *jsonOut)
			}
			satResult = nil
		}
		fmt.Println()
		if *exp == r.id {
			if failed > 0 {
				os.Exit(1)
			}
			return
		}
	}
	if *exp != "all" {
		fmt.Fprintf(os.Stderr, "gc-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// writeJSON stores a structured experiment result.
func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// writeCSV stores a report's header and rows as <dir>/<id>.csv.
func writeCSV(dir string, r experiments.Report) error {
	var b strings.Builder
	if r.Header != "" {
		b.WriteString(r.Header)
		b.WriteByte('\n')
	}
	for _, row := range r.Rows {
		b.WriteString(row)
		b.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(dir, r.ID+".csv"), []byte(b.String()), 0o644)
}
