// Command gc-top is `top` for a Globus Compute fleet: it polls the web
// service's GET /debug/fleet endpoint and renders one line per endpoint —
// liveness, worker utilization, backlog, task throughput, and any SLO alerts
// that are pending or firing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"globuscompute/internal/obs"
)

type fleetReport struct {
	Fleet  obs.FleetHealth `json:"fleet"`
	Alerts []obs.Alert     `json:"alerts"`
}

func main() {
	var (
		service  = flag.String("service", "127.0.0.1:8080", "web service address")
		token    = flag.String("token", "", "bearer token (from gc-webservice output)")
		interval = flag.Duration("interval", 2*time.Second, "poll period")
		iters    = flag.Int("n", 0, "number of polls (0 = run until interrupted)")
	)
	flag.Parse()
	if *token == "" {
		log.Fatal("gc-top: -token required")
	}
	url := fmt.Sprintf("http://%s/debug/fleet?token=%s", *service, *token)

	// prevRes tracks results_published per endpoint between polls so the
	// tasks/s column is a live rate, not a lifetime average.
	prevRes := map[string]int64{}
	prevAt := time.Now()
	for i := 0; *iters == 0 || i < *iters; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		rep, err := fetch(url)
		if err != nil {
			log.Printf("gc-top: %v", err)
			continue
		}
		now := time.Now()
		render(os.Stdout, rep, prevRes, now.Sub(prevAt))
		for _, ep := range rep.Fleet.Endpoints {
			prevRes[ep.EndpointID] = ep.ResultsPublished
		}
		prevAt = now
	}
}

func fetch(url string) (fleetReport, error) {
	var rep fleetReport
	resp, err := http.Get(url)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return rep, err
	}
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("GET /debug/fleet: %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return rep, json.Unmarshal(body, &rep)
}

func render(w io.Writer, rep fleetReport, prevRes map[string]int64, since time.Duration) {
	// Alerts indexed by endpoint for the rightmost column.
	byEp := map[string][]string{}
	for _, a := range rep.Alerts {
		byEp[a.EndpointID] = append(byEp[a.EndpointID], fmt.Sprintf("%s(%s)", a.Rule, a.State))
	}
	fmt.Fprintf(w, "\n%s  fleet: %d endpoints, %d online\n",
		rep.Fleet.Time.Format("15:04:05"), rep.Fleet.EndpointsTotal, rep.Fleet.EndpointsOnline)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ENDPOINT\tSTATE\tWORKERS\tUTIL\tPENDING\tBACKLOG\tROUTED\tRT%\tTASKS/S\tSVC/S\tP99\tFAIL%\tALERTS")
	eps := append([]obs.EndpointHealth(nil), rep.Fleet.Endpoints...)
	sort.Slice(eps, func(i, j int) bool { return eps[i].EndpointID < eps[j].EndpointID })
	for _, ep := range eps {
		state := "DOWN"
		switch {
		case ep.Online:
			state = "up"
		case ep.Stopped:
			state = "stopped"
		}
		backlog := "-"
		if ep.EgressBacklog != nil {
			backlog = fmt.Sprintf("%d", *ep.EgressBacklog)
		}
		rate := "-"
		if prev, ok := prevRes[ep.EndpointID]; ok && since > 0 && ep.ResultsPublished >= prev {
			rate = fmt.Sprintf("%.1f", float64(ep.ResultsPublished-prev)/since.Seconds())
		}
		// Routing-group placement columns: how many submissions the placement
		// layer resolved onto this endpoint, and its share of the fleet's
		// routed total. "-" for endpoints no policy has ever picked.
		routed, share := "-", "-"
		if ep.Routed > 0 {
			routed = fmt.Sprintf("%d", ep.Routed)
			share = fmt.Sprintf("%.1f", 100*ep.RoutedShare)
		}
		// SVC/S is the server-side service-rate EWMA (smoothed completion
		// tasks/s from heartbeat deltas) — steadier than the poll-to-poll
		// TASKS/S rate, and available even between gc-top polls.
		svcRate := "-"
		if ep.ServiceRatePerS > 0 {
			svcRate = fmt.Sprintf("%.1f", ep.ServiceRatePerS)
		}
		alerts := strings.Join(byEp[ep.EndpointID], " ")
		if alerts == "" {
			alerts = "ok"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d/%d\t%.0f%%\t%d\t%s\t%s\t%s\t%s\t%s\t%.3fs\t%.1f\t%s\n",
			ep.EndpointID, state, ep.FreeWorkers, ep.TotalWorkers,
			100*ep.WorkerUtilization, ep.PendingTasks, backlog, routed, share, rate,
			svcRate, ep.P99LatencySeconds, 100*ep.FailureRatio, alerts)
	}
	tw.Flush()
}
