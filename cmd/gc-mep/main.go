// Command gc-mep runs a multi-user endpoint against a running
// gc-webservice: administrators configure an identity-mapping file and a
// configuration template; the MEP then spawns user endpoints on request,
// backed by a simulated batch cluster in this process.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/idmap"
	"globuscompute/internal/mep"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/scheduler"
	"globuscompute/internal/sdk"
	"globuscompute/internal/webservice"
)

func main() {
	var (
		service     = flag.String("service", "127.0.0.1:8080", "web service address")
		token       = flag.String("token", "", "bearer token with the manage scope")
		name        = flag.String("name", "go-mep", "endpoint display name")
		mapFile     = flag.String("idmap", "", "identity mapping JSON file (Listing 8 format); default maps any user@domain to user")
		tmplFile    = flag.String("template", "", "configuration template file; default is the Listing 9 equivalent")
		nodes       = flag.Int("nodes", 16, "simulated cluster size backing spawned endpoints")
		idleTimeout = flag.Duration("idle-timeout", time.Minute, "reap user endpoints idle this long (0 = never)")
		sandbox     = flag.String("sandbox-root", os.TempDir(), "ShellFunction sandbox root")
	)
	flag.Parse()
	if *token == "" {
		log.Fatal("gc-mep: -token required")
	}

	var mapper idmap.Mapper
	if *mapFile != "" {
		data, err := os.ReadFile(*mapFile)
		if err != nil {
			log.Fatalf("gc-mep: idmap: %v", err)
		}
		rules, err := idmap.ParseRules(data)
		if err != nil {
			log.Fatalf("gc-mep: idmap: %v", err)
		}
		mapper, err = idmap.NewExpressionMapper(rules)
		if err != nil {
			log.Fatalf("gc-mep: idmap: %v", err)
		}
	} else {
		m, err := idmap.NewExpressionMapper([]idmap.Rule{{
			Match: `(.*)@.*`, Output: "{0}",
		}})
		if err != nil {
			log.Fatal(err)
		}
		mapper = m
	}

	tmpl := core.DefaultMEPTemplate
	if *tmplFile != "" {
		data, err := os.ReadFile(*tmplFile)
		if err != nil {
			log.Fatalf("gc-mep: template: %v", err)
		}
		tmpl = string(data)
	}

	client := sdk.NewClient(*service, *token)
	reg, err := client.RegisterEndpoint(webservice.RegisterEndpointRequest{Name: *name, MultiUser: true})
	if err != nil {
		log.Fatalf("gc-mep: register: %v", err)
	}
	fmt.Printf("gc-mep registered: %s\n", reg.EndpointID)
	fmt.Printf("  command queue: %s\n", reg.CommandQueue)

	bc, err := broker.Dial(reg.BrokerAddr)
	if err != nil {
		log.Fatalf("gc-mep: broker: %v", err)
	}
	defer bc.Close()
	objects := objectstore.NewClient(reg.ObjectsAddr)
	sched := scheduler.SimpleCluster(*nodes)
	defer sched.Close()

	mgr, err := mep.New(mep.Config{
		EndpointID:  reg.EndpointID,
		Conn:        bc.AsConn(),
		Mapper:      mapper,
		Template:    tmpl,
		Schema:      core.DefaultMEPSchema(),
		IdleTimeout: *idleTimeout,
		Spawn: mep.NewAgentSpawner(mep.SpawnerDeps{
			Scheduler:   sched,
			Conn:        bc.AsConn(),
			Objects:     objects,
			SandboxRoot: *sandbox,
			Heartbeat: func(child protocol.UUID, online bool) {
				if err := client.Heartbeat(child, online); err != nil {
					log.Printf("gc-mep: child heartbeat: %v", err)
				}
			},
		}),
		Heartbeat: func(online bool) {
			if err := client.Heartbeat(reg.EndpointID, online); err != nil {
				log.Printf("gc-mep: heartbeat: %v", err)
			}
		},
	})
	if err != nil {
		log.Fatalf("gc-mep: %v", err)
	}
	if err := mgr.Start(); err != nil {
		log.Fatalf("gc-mep: start: %v", err)
	}
	fmt.Printf("gc-mep online; %d simulated nodes; waiting for start-endpoint requests\n", *nodes)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("gc-mep: shutting down")
	mgr.Stop()
}
