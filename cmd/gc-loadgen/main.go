// Command gc-loadgen drives a declarative scenario profile against a
// running gc-webservice: paced multi-tenant submissions with burst windows,
// a KPI sampler scraping /metrics, /metrics/fleet and /debug/fleet, and
// pass/fail gates over the recorded series. Each run writes samples.csv +
// summary.json (plus burst-peak pprof captures when the service runs with
// -pprof) under -out, and exits non-zero when a gate fails.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"globuscompute/internal/protocol"
	"globuscompute/internal/scenario"
)

func main() {
	var (
		service = flag.String("service", "127.0.0.1:8080", "web service address")
		token   = flag.String("token", "", "bearer token (from gc-webservice output)")
		target  = flag.String("target", "", "endpoint or routing-group UUID submissions name")
		profile = flag.String("profile", "steady", "built-in profile name, or @path/to/profile.json")
		out     = flag.String("out", "scenario-out", "output directory for samples.csv + summary.json")
		list    = flag.Bool("list", false, "list built-in profiles and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range scenario.BuiltinNames() {
			p, _ := scenario.Builtin(name)
			fmt.Printf("%-12s %s\n", name, p.Description)
		}
		return
	}
	if *token == "" || *target == "" {
		log.Fatal("gc-loadgen: -token and -target required")
	}

	var p scenario.Profile
	if strings.HasPrefix(*profile, "@") {
		var err error
		if p, err = scenario.LoadProfile(strings.TrimPrefix(*profile, "@")); err != nil {
			log.Fatalf("gc-loadgen: %v", err)
		}
	} else {
		var ok bool
		if p, ok = scenario.Builtin(*profile); !ok {
			log.Fatalf("gc-loadgen: unknown profile %q (builtins: %s; or @file.json)",
				*profile, strings.Join(scenario.BuiltinNames(), ", "))
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	res, err := scenario.Run(ctx, scenario.RunConfig{
		Service: *service, Token: *token, Target: protocol.UUID(*target),
		Profile: p, OutDir: *out, Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("gc-loadgen: %v", err)
	}

	s := res.Summary
	fmt.Printf("\nprofile %s: %d samples over %.1fs\n", s.Profile, s.Samples, s.DurationSec)
	fmt.Printf("  tasks: submitted=%d accepted=%d shed=%d errors=%d succeeded=%d failed=%d (completeness %.4f)\n",
		s.Totals.Submitted, s.Totals.Accepted, s.Totals.Shed, s.Totals.Errors,
		s.Totals.Succeeded, s.Totals.Failed, s.Completeness)
	fmt.Printf("  backlog: steady p50/p95 %.0f/%.0f, burst p95 %.0f, max %.0f\n",
		s.SteadyBacklogP50, s.SteadyBacklogP95, s.BurstBacklogP95, s.BacklogMax)
	fmt.Printf("  client:  submit p50/p95 %.1f/%.1f ms, rtt p50/p95/p99 %.1f/%.1f/%.1f ms, %.0f tasks/s\n",
		s.SubmitP50MS, s.SubmitP95MS, s.RTTP50MS, s.RTTP95MS, s.RTTP99MS, s.ThroughputPerSec)
	for _, g := range s.Gates {
		mark := "PASS"
		if !g.Pass {
			mark = "FAIL"
		}
		fmt.Printf("  gate %-20s %s value=%.2f threshold=%.2f %s\n", g.Name, mark, g.Value, g.Threshold, g.Reason)
	}
	if len(s.PprofFiles) > 0 {
		fmt.Printf("  pprof: %s (in %s)\n", strings.Join(s.PprofFiles, ", "), *out)
	}
	fmt.Printf("  wrote %s, %s\n", res.SamplesCSV, res.SummaryJSON)
	if !s.Pass {
		os.Exit(1)
	}
}
