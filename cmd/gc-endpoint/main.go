// Command gc-endpoint runs a single-user endpoint agent against a running
// gc-webservice: it registers the endpoint, connects to the broker, and
// executes python-kind (builtin registry), shell, and optionally MPI tasks
// on a local worker pool or a simulated batch cluster.
package main

import (
	"crypto/x509"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/endpoint"
	"globuscompute/internal/engine"
	"globuscompute/internal/metrics"
	"globuscompute/internal/mpiengine"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/provider"
	"globuscompute/internal/registry"
	"globuscompute/internal/scheduler"
	"globuscompute/internal/sdk"
	"globuscompute/internal/shellfn"
	"globuscompute/internal/statestore"
	"globuscompute/internal/webservice"
)

func main() {
	var (
		service   = flag.String("service", "127.0.0.1:8080", "web service address")
		token     = flag.String("token", "", "bearer token (from gc-webservice output)")
		name      = flag.String("name", "go-endpoint", "endpoint display name")
		workers   = flag.Int("workers", 4, "worker pool size")
		withMPI   = flag.Bool("mpi", false, "attach a GlobusMPIEngine over a simulated cluster")
		mpiNodes  = flag.Int("mpi-nodes", 4, "simulated cluster nodes for the MPI engine")
		sandbox   = flag.String("sandbox-root", os.TempDir(), "ShellFunction sandbox root")
		transport   = flag.String("transport", "channel", "engine interchange transport: channel or tcp")
		brokerCA    = flag.String("broker-ca", "", "CA PEM for a TLS broker (from gc-webservice -broker-tls)")
		metricsAddr = flag.String("metrics-addr", "", "serve GET /metrics (agent + engine registries, Prometheus text) on this address")
		spillAt     = flag.Int("spill-threshold", 64<<10, "result bytes above which outputs spill to the object store as references (0 = always inline)")
		dedupCache  = flag.Int64("dedup-cache", 64<<20, "bytes of fetched payloads cached for fan-out dedup (0 = no cache)")
		pprofOn     = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the -metrics-addr mux (off by default)")
	)
	flag.Parse()
	if *token == "" {
		log.Fatal("gc-endpoint: -token required")
	}
	if *pprofOn && *metricsAddr == "" {
		log.Fatal("gc-endpoint: -pprof requires -metrics-addr (pprof serves on the metrics mux)")
	}

	client := sdk.NewClient(*service, *token)
	reg, err := client.RegisterEndpoint(webservice.RegisterEndpointRequest{Name: *name})
	if err != nil {
		log.Fatalf("gc-endpoint: register: %v", err)
	}
	fmt.Printf("gc-endpoint registered: %s\n", reg.EndpointID)
	fmt.Printf("  task queue:   %s\n", reg.TaskQueue)
	fmt.Printf("  result queue: %s\n", reg.ResultQueue)

	// The broker connection auto-reconnects with backoff so a webservice
	// restart or network blip does not take the endpoint down; consumers
	// resubscribe and unacked deliveries are redelivered (at-least-once).
	conn, err := broker.NewReconnecting(broker.ReconnectConfig{
		Dial: func() (broker.Conn, error) {
			bc, err := dialBroker(reg.BrokerAddr, *brokerCA)
			if err != nil {
				return nil, err
			}
			return bc.AsConn(), nil
		},
	})
	if err != nil {
		log.Fatalf("gc-endpoint: broker: %v", err)
	}
	defer conn.Close()
	objects := objectstore.NewClient(reg.ObjectsAddr)
	// A bounded LRU in front of the store client: a fan-out of tasks sharing
	// one large content-addressed payload fetches it over the wire once.
	fetcher := endpoint.ObjectFetcher(objects)
	var dedup *objectstore.DedupCache
	if *dedupCache > 0 {
		dedup = objectstore.NewDedupCache(objects, *dedupCache)
		fetcher = dedup
	}

	runner := endpoint.NewRunner(registry.Builtins(), shellfn.Options{SandboxRoot: *sandbox}, fetcher)
	eng, err := engine.New(engine.Config{
		Provider: provider.NewLocal(*workers), Run: runner,
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
		Transport: *transport,
	})
	if err != nil {
		log.Fatalf("gc-endpoint: engine: %v", err)
	}
	var agentRef *endpoint.Agent
	cfg := endpoint.Config{
		EndpointID: reg.EndpointID,
		Conn:       conn,
		Engine:     eng,
		Objects:    fetcher,
		Spill:      objects, SpillThreshold: *spillAt,
		Heartbeat: func(online bool) {
			var err error
			if agentRef != nil {
				l := agentRef.SnapshotLoad()
				backlog := l.EgressBacklog
				load := &statestore.EndpointLoad{
					PendingTasks: l.PendingTasks, TotalWorkers: l.TotalWorkers,
					FreeWorkers: l.FreeWorkers, TasksReceived: l.TasksReceived,
					ResultsPublished: l.ResultsPublished, EgressBacklog: &backlog,
				}
				var snap *metrics.Snapshot
				if d, ok := agentRef.SnapshotMetrics(time.Now()); ok {
					snap = &d
				}
				err = client.HeartbeatReport(reg.EndpointID, online, load, snap)
			} else {
				err = client.Heartbeat(reg.EndpointID, online)
			}
			if err != nil {
				log.Printf("gc-endpoint: heartbeat: %v", err)
			}
		},
		HeartbeatInterval: 5 * time.Second,
	}
	var sched *scheduler.Scheduler
	if *withMPI {
		sched = scheduler.SimpleCluster(*mpiNodes)
		prov, err := provider.NewBatch(provider.BatchConfig{
			Scheduler: sched, Partition: "default", NodesPerBlock: *mpiNodes,
		})
		if err != nil {
			log.Fatalf("gc-endpoint: mpi provider: %v", err)
		}
		mpi, err := mpiengine.New(mpiengine.Config{Provider: prov})
		if err != nil {
			log.Fatalf("gc-endpoint: mpi engine: %v", err)
		}
		cfg.MPI = mpi
		fmt.Printf("  MPI engine:   %d simulated nodes\n", *mpiNodes)
	}

	agent, err := endpoint.New(cfg)
	if err != nil {
		log.Fatalf("gc-endpoint: %v", err)
	}
	agentRef = agent
	if dedup != nil {
		// Report cache hits/misses/evictions through the agent registry so
		// they ride /metrics and the heartbeat federation snapshots.
		dedup.Metrics = agent.Metrics
	}
	if err := agent.Start(); err != nil {
		log.Fatalf("gc-endpoint: start: %v", err)
	}
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = agent.WriteMetrics(w)
		})
		if *pprofOn {
			// Agent-side continuous-profiling hook: the scenario harness (and
			// ad-hoc `go tool pprof`) capture CPU/heap profiles at burst peak.
			mux.HandleFunc("GET /debug/pprof/", pprof.Index)
			mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
			fmt.Printf("  pprof:        http://%s/debug/pprof/\n", *metricsAddr)
		}
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("gc-endpoint: metrics server: %v", err)
			}
		}()
		fmt.Printf("  metrics:      http://%s/metrics\n", *metricsAddr)
	}
	fmt.Println("gc-endpoint online; waiting for tasks")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("gc-endpoint: draining")
	// Agent.Stop is the graceful drain: it cancels the task subscription
	// (stop intake; unacked deliveries redeliver elsewhere), stops the
	// engines after in-flight tasks finish, flushes the egress tail so no
	// computed result is dropped, and sends a final offline heartbeat so the
	// service marks the endpoint stopped instead of waiting for the
	// watchdog. Only then is the broker connection torn down (deferred).
	agent.Stop()
	if sched != nil {
		sched.Close()
	}
	fmt.Println("gc-endpoint: drained cleanly")
}

// dialBroker connects plain or over TLS when a CA file is supplied. Wire
// batching and the binary hot-path codec are enabled either way: batch
// frames replace per-message round trips, and the codec kicks in when the
// server confirms it (old servers leave the connection on JSON).
func dialBroker(addr, caPath string) (*broker.Client, error) {
	var bc *broker.Client
	var err error
	if caPath == "" {
		bc, err = broker.Dial(addr)
	} else {
		var pemData []byte
		if pemData, err = os.ReadFile(caPath); err != nil {
			return nil, err
		}
		var pool *x509.CertPool
		if pool, err = broker.PoolFromPEM(pemData); err != nil {
			return nil, err
		}
		bc, err = broker.DialTLS(addr, pool)
	}
	if err != nil {
		return nil, err
	}
	bc.EnableBatching(broker.BatchConfig{})
	bc.EnableBinary()
	return bc, nil
}
