// Command gc-webservice runs the cloud side of the stack in one process:
// auth service, state store, message broker, object store, and the REST web
// service, plus a simulated batch cluster for endpoints started in-process.
// It prints connection details and a bootstrap bearer token for the demo
// identity, then serves until interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/durable"
	"globuscompute/internal/metrics"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/scheduler"
	"globuscompute/internal/statestore"
	"globuscompute/internal/trace"
	"globuscompute/internal/webservice"
)

func main() {
	var (
		httpAddr    = flag.String("http", "127.0.0.1:8080", "REST API listen address")
		brokerAddr  = flag.String("broker", "127.0.0.1:8081", "broker listen address")
		objectsAddr = flag.String("objects", "127.0.0.1:8082", "object store listen address")
		user        = flag.String("bootstrap-user", "demo@example.edu", "identity to mint a bootstrap token for")
		tokenTTL    = flag.Duration("token-ttl", 24*time.Hour, "bootstrap token lifetime")
		brokerTLS   = flag.Bool("broker-tls", false, "serve the broker over TLS (AMQPS equivalent)")
		caOut       = flag.String("broker-ca-out", "broker-ca.pem", "where to write the broker CA certificate with -broker-tls")
		taskLease   = flag.Duration("task-lease", 0, "fail non-terminal tasks stuck this long on offline endpoints (0 = buffer forever)")
		dataDir     = flag.String("data-dir", "", "directory for the durable control plane (WAL + snapshots); empty = in-memory only")
		snapEvery   = flag.Duration("snapshot-every", durable.DefaultSnapshotEvery, "snapshot + log compaction cadence with -data-dir")
		admitRate   = flag.Float64("admit-rate", 0, "per-tenant admitted tasks/sec before 429 sheds (0 = admission off)")
		admitBurst  = flag.Float64("admit-burst", 0, "per-tenant burst allowance in tasks (0 = 2x -admit-rate)")
		maxInFlight = flag.Int("max-inflight", 0, "per-tenant in-flight task cap (0 = 4x burst, requires -admit-rate)")
		queueLimit  = flag.Int("queue-limit", 0, "per-endpoint broker queue depth bound (0 = unbounded)")
		backlogShed = flag.Int("backlog-shed", 0, "shed batch submits when an endpoint reports this much egress backlog (0 = off)")
		drainWait   = flag.Duration("drain-timeout", 15*time.Second, "max wait for in-flight HTTP requests on SIGTERM")
		spillAt     = flag.Int("spill-threshold", 0, "payload/result bytes above which data spills to the object store as a content-addressed reference (0 = default 64KiB)")
		pprofOn     = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (token-authenticated; off by default)")
	)
	flag.Parse()

	authSvc := auth.NewService()
	// With -data-dir the object store is file-backed under it, so spilled
	// payload/result references recorded in the durable WAL stay resolvable
	// across a crash/restart.
	var objects *objectstore.Store
	if *dataDir != "" {
		var err error
		objects, err = objectstore.OpenDir(*dataDir + "/objects")
		if err != nil {
			log.Fatalf("gc-webservice: object store: %v", err)
		}
	} else {
		objects = objectstore.New()
	}

	// Cloud-side task tracing: the service and broker share one collector,
	// browsable at /debug/traces. Agent-side spans live in the agent
	// processes; merge their JSONL exports for full-lifecycle traces.
	traces := trace.NewCollector(0)
	tracer := trace.NewTracer("webservice", traces)

	// With -data-dir, the statestore and broker recover from their WALs and
	// journal every mutation; without it, both are purely in-memory (the
	// original behavior).
	var (
		store          *statestore.Store
		brk            *broker.Broker
		durableMetrics *metrics.Registry
		durStore       *durable.Store
		durBroker      *durable.BrokerLog
	)
	if *dataDir != "" {
		durableMetrics = metrics.NewRegistry()
		var err error
		durStore, err = durable.OpenStore(durable.StoreOptions{
			Dir:           *dataDir + "/state",
			SnapshotEvery: *snapEvery,
			Metrics:       durableMetrics,
			Tracer:        tracer,
		})
		if err != nil {
			log.Fatalf("gc-webservice: durable store: %v", err)
		}
		durBroker, err = durable.OpenBroker(durable.BrokerOptions{
			Dir:           *dataDir + "/broker",
			SnapshotEvery: *snapEvery,
			Metrics:       durableMetrics,
			Tracer:        tracer,
		})
		if err != nil {
			log.Fatalf("gc-webservice: durable broker: %v", err)
		}
		store, brk = durStore.State, durBroker.B
	} else {
		store, brk = statestore.New(), broker.New()
	}
	brk.Tracer = trace.NewTracer("broker", traces)

	// Overload protection: per-tenant token-bucket admission at the front
	// door, bounded per-endpoint broker queues, and backlog-driven sheds.
	var admission *scheduler.Admission
	if *admitRate > 0 {
		admission = scheduler.NewAdmission(scheduler.AdmissionConfig{
			FillRate:    *admitRate,
			Burst:       *admitBurst,
			MaxInFlight: *maxInFlight,
		})
	}
	svc, err := webservice.New(webservice.Config{
		Store: store, Broker: brk, Objects: objects, Auth: authSvc,
		Tracer:               tracer,
		DurableMetrics:       durableMetrics,
		Admission:            admission,
		QueueLimit:           *queueLimit,
		BacklogShedThreshold: *backlogShed,
		InlineThreshold:      *spillAt,
		Pprof:                *pprofOn,
	})
	if err != nil {
		log.Fatalf("gc-webservice: %v", err)
	}
	if *dataDir != "" {
		// Re-attach result processors for every recovered endpoint so
		// buffered results drain without waiting for agents to re-register.
		if err := svc.ResumeEndpoints(); err != nil {
			log.Fatalf("gc-webservice: resume endpoints: %v", err)
		}
	}
	var brokerSrv *broker.Server
	if *brokerTLS {
		cert, _, err := broker.GenerateIdentity()
		if err != nil {
			log.Fatalf("gc-webservice: broker identity: %v", err)
		}
		pemData, err := broker.CertPEM(cert)
		if err != nil {
			log.Fatalf("gc-webservice: broker ca: %v", err)
		}
		if err := os.WriteFile(*caOut, pemData, 0o644); err != nil {
			log.Fatalf("gc-webservice: write ca: %v", err)
		}
		brokerSrv, err = broker.ServeTLS(brk, *brokerAddr, cert)
		if err != nil {
			log.Fatalf("gc-webservice: broker: %v", err)
		}
		fmt.Printf("  broker CA written to %s (pass to agents via -broker-ca)\n", *caOut)
	} else {
		var err error
		brokerSrv, err = broker.Serve(brk, *brokerAddr)
		if err != nil {
			log.Fatalf("gc-webservice: broker: %v", err)
		}
	}
	objectsSrv, err := objectstore.ServeHTTP(objects, *objectsAddr)
	if err != nil {
		log.Fatalf("gc-webservice: objects: %v", err)
	}
	httpSrv, err := webservice.ServeHTTP(svc, *httpAddr, brokerSrv.Addr(), objectsSrv.Addr())
	if err != nil {
		log.Fatalf("gc-webservice: http: %v", err)
	}
	// Production housekeeping: two-week result retention, offline detection
	// for silent endpoints, and (when -task-lease is set) bounded in-flight
	// leases so tasks on dead endpoints fail instead of pending forever.
	stopSweeper := svc.StartRetentionSweeper(webservice.ResultRetention, time.Hour)
	stopWatchdog := svc.StartWatchdog(webservice.WatchdogConfig{
		HeartbeatTimeout: 30 * time.Second,
		Interval:         10 * time.Second,
		TaskLease:        *taskLease,
	})
	// Fleet SLO evaluation on a timer, not just on /debug/fleet scrapes, so
	// alert transitions (and their notifier/log hooks) happen even when no
	// one is watching.
	stopSLO := svc.StartSLOEvaluator(15 * time.Second)

	tok, err := authSvc.Issue(
		auth.Identity{Username: *user, Provider: "bootstrap"},
		[]string{auth.ScopeCompute, auth.ScopeManage}, *tokenTTL, time.Time{})
	if err != nil {
		log.Fatalf("gc-webservice: token: %v", err)
	}

	fmt.Printf("gc-webservice up\n")
	if *dataDir != "" {
		fmt.Printf("  data dir:     %s (durable control plane)\n", *dataDir)
	}
	fmt.Printf("  REST API:     http://%s\n", httpSrv.Addr())
	fmt.Printf("  broker:       %s\n", brokerSrv.Addr())
	fmt.Printf("  object store: %s\n", objectsSrv.Addr())
	fmt.Printf("  bootstrap token (%s): %s\n", *user, tok.Value)
	fmt.Printf("  dashboard:    http://%s/dashboard?token=%s\n", httpSrv.Addr(), tok.Value)
	fmt.Printf("  traces:       http://%s/debug/traces?token=%s\n", httpSrv.Addr(), tok.Value)
	fmt.Printf("  metrics:      http://%s/metrics?token=%s\n", httpSrv.Addr(), tok.Value)
	fmt.Printf("  fleet:        http://%s/debug/fleet?token=%s\n", httpSrv.Addr(), tok.Value)
	fmt.Printf("  federation:   http://%s/metrics/fleet?token=%s\n", httpSrv.Addr(), tok.Value)
	fmt.Printf("  logs:         http://%s/debug/logs?token=%s\n", httpSrv.Addr(), tok.Value)
	if *pprofOn {
		fmt.Printf("  pprof:        http://%s/debug/pprof/?token=%s\n", httpSrv.Addr(), tok.Value)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("gc-webservice: draining")
	// Drain order matters: (1) stop intake gracefully so accepted submits
	// finish journaling instead of being torn off mid-handler; (2) stop the
	// background mutators (watchdog lease expiry, retention sweeps) BEFORE
	// the durable layer closes — they journal through the same WAL and must
	// not write to a closed log; (3) drain the service's result processors;
	// (4) close the wire servers and broker; (5) final WAL fsync + close.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("gc-webservice: http drain: %v (closing)", err)
		httpSrv.Close()
	}
	cancel()
	stopSLO()
	stopWatchdog()
	stopSweeper()
	svc.Close()
	brokerSrv.Close()
	objectsSrv.Close()
	brk.Close()
	if durStore != nil {
		if err := durStore.Close(); err != nil {
			log.Printf("gc-webservice: durable store close: %v", err)
		}
	}
	if durBroker != nil {
		if err := durBroker.Close(); err != nil {
			log.Printf("gc-webservice: durable broker close: %v", err)
		}
	}
	fmt.Println("gc-webservice: drained cleanly")
}
