// Command gc-webservice runs the cloud side of the stack in one process:
// auth service, state store, message broker, object store, and the REST web
// service, plus a simulated batch cluster for endpoints started in-process.
// It prints connection details and a bootstrap bearer token for the demo
// identity, then serves until interrupted.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/statestore"
	"globuscompute/internal/trace"
	"globuscompute/internal/webservice"
)

func main() {
	var (
		httpAddr    = flag.String("http", "127.0.0.1:8080", "REST API listen address")
		brokerAddr  = flag.String("broker", "127.0.0.1:8081", "broker listen address")
		objectsAddr = flag.String("objects", "127.0.0.1:8082", "object store listen address")
		user        = flag.String("bootstrap-user", "demo@example.edu", "identity to mint a bootstrap token for")
		tokenTTL    = flag.Duration("token-ttl", 24*time.Hour, "bootstrap token lifetime")
		brokerTLS   = flag.Bool("broker-tls", false, "serve the broker over TLS (AMQPS equivalent)")
		caOut       = flag.String("broker-ca-out", "broker-ca.pem", "where to write the broker CA certificate with -broker-tls")
		taskLease   = flag.Duration("task-lease", 0, "fail non-terminal tasks stuck this long on offline endpoints (0 = buffer forever)")
	)
	flag.Parse()

	authSvc := auth.NewService()
	store := statestore.New()
	brk := broker.New()
	objects := objectstore.New()

	// Cloud-side task tracing: the service and broker share one collector,
	// browsable at /debug/traces. Agent-side spans live in the agent
	// processes; merge their JSONL exports for full-lifecycle traces.
	traces := trace.NewCollector(0)
	brk.Tracer = trace.NewTracer("broker", traces)

	svc, err := webservice.New(webservice.Config{
		Store: store, Broker: brk, Objects: objects, Auth: authSvc,
		Tracer: trace.NewTracer("webservice", traces),
	})
	if err != nil {
		log.Fatalf("gc-webservice: %v", err)
	}
	var brokerSrv *broker.Server
	if *brokerTLS {
		cert, _, err := broker.GenerateIdentity()
		if err != nil {
			log.Fatalf("gc-webservice: broker identity: %v", err)
		}
		pemData, err := broker.CertPEM(cert)
		if err != nil {
			log.Fatalf("gc-webservice: broker ca: %v", err)
		}
		if err := os.WriteFile(*caOut, pemData, 0o644); err != nil {
			log.Fatalf("gc-webservice: write ca: %v", err)
		}
		brokerSrv, err = broker.ServeTLS(brk, *brokerAddr, cert)
		if err != nil {
			log.Fatalf("gc-webservice: broker: %v", err)
		}
		fmt.Printf("  broker CA written to %s (pass to agents via -broker-ca)\n", *caOut)
	} else {
		var err error
		brokerSrv, err = broker.Serve(brk, *brokerAddr)
		if err != nil {
			log.Fatalf("gc-webservice: broker: %v", err)
		}
	}
	objectsSrv, err := objectstore.ServeHTTP(objects, *objectsAddr)
	if err != nil {
		log.Fatalf("gc-webservice: objects: %v", err)
	}
	httpSrv, err := webservice.ServeHTTP(svc, *httpAddr, brokerSrv.Addr(), objectsSrv.Addr())
	if err != nil {
		log.Fatalf("gc-webservice: http: %v", err)
	}
	// Production housekeeping: two-week result retention, offline detection
	// for silent endpoints, and (when -task-lease is set) bounded in-flight
	// leases so tasks on dead endpoints fail instead of pending forever.
	stopSweeper := svc.StartRetentionSweeper(webservice.ResultRetention, time.Hour)
	defer stopSweeper()
	stopWatchdog := svc.StartWatchdog(webservice.WatchdogConfig{
		HeartbeatTimeout: 30 * time.Second,
		Interval:         10 * time.Second,
		TaskLease:        *taskLease,
	})
	defer stopWatchdog()
	// Fleet SLO evaluation on a timer, not just on /debug/fleet scrapes, so
	// alert transitions (and their notifier/log hooks) happen even when no
	// one is watching.
	stopSLO := svc.StartSLOEvaluator(15 * time.Second)
	defer stopSLO()

	tok, err := authSvc.Issue(
		auth.Identity{Username: *user, Provider: "bootstrap"},
		[]string{auth.ScopeCompute, auth.ScopeManage}, *tokenTTL, time.Time{})
	if err != nil {
		log.Fatalf("gc-webservice: token: %v", err)
	}

	fmt.Printf("gc-webservice up\n")
	fmt.Printf("  REST API:     http://%s\n", httpSrv.Addr())
	fmt.Printf("  broker:       %s\n", brokerSrv.Addr())
	fmt.Printf("  object store: %s\n", objectsSrv.Addr())
	fmt.Printf("  bootstrap token (%s): %s\n", *user, tok.Value)
	fmt.Printf("  dashboard:    http://%s/dashboard?token=%s\n", httpSrv.Addr(), tok.Value)
	fmt.Printf("  traces:       http://%s/debug/traces?token=%s\n", httpSrv.Addr(), tok.Value)
	fmt.Printf("  metrics:      http://%s/metrics?token=%s\n", httpSrv.Addr(), tok.Value)
	fmt.Printf("  fleet:        http://%s/debug/fleet?token=%s\n", httpSrv.Addr(), tok.Value)
	fmt.Printf("  federation:   http://%s/metrics/fleet?token=%s\n", httpSrv.Addr(), tok.Value)
	fmt.Printf("  logs:         http://%s/debug/logs?token=%s\n", httpSrv.Addr(), tok.Value)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("gc-webservice: shutting down")
	httpSrv.Close()
	svc.Close()
	brokerSrv.Close()
	objectsSrv.Close()
	brk.Close()
}
