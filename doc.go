// Package globuscompute is a Go reimplementation of the Globus Compute
// federated function-as-a-service platform as described in "Establishing a
// High-Performance and Productive Ecosystem for Distributed Execution of
// Python Functions Using Globus Compute" (SC 2024), including every
// substrate it depends on: message broker, object store, state store, auth
// service, batch scheduler simulator, pilot-job engine, MPI engine,
// multi-user endpoints, SDK executor, ProxyStore, and a Globus Transfer
// simulator.
//
// See DESIGN.md for the system inventory and per-experiment index,
// EXPERIMENTS.md for paper-vs-measured results, and examples/ for runnable
// walkthroughs. The benchmarks in bench_test.go regenerate every table and
// figure; `go run ./cmd/gc-bench -exp all` prints them as reports.
package globuscompute
