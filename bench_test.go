// Benchmarks regenerating the paper's quantitative artifacts (see
// DESIGN.md's per-experiment index): T1 streaming vs polling, T2 batching,
// T3/T4 ShellFunction mechanics, T5/A2 MPI packing, T6 MEP reuse, T8
// payload paths, plus the A1/A3 ablations and substrate microbenchmarks.
//
// Run with:
//
//	go test -bench=. -benchmem ./...
package globuscompute_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/engine"
	"globuscompute/internal/idmap"
	"globuscompute/internal/mpiengine"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/provider"
	"globuscompute/internal/proxystore"
	"globuscompute/internal/scheduler"
	"globuscompute/internal/sdk"
	"globuscompute/internal/statestore"
	"globuscompute/internal/workload"
)

// benchEnv boots a full deployment for client-path benchmarks.
type benchEnv struct {
	tb     *core.Testbed
	client *sdk.Client
	conn   broker.Conn
	dial   *broker.Client
	objs   *objectstore.Client
	epID   protocol.UUID
}

func newBenchEnv(b *testing.B, opts core.EndpointOptions) *benchEnv {
	b.Helper()
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 8})
	if err != nil {
		b.Fatal(err)
	}
	tok, err := tb.IssueToken("bench@uchicago.edu", "uchicago")
	if err != nil {
		tb.Close()
		b.Fatal(err)
	}
	if opts.Name == "" {
		opts.Name = "bench-ep"
	}
	if opts.Workers == 0 {
		opts.Workers = 8
	}
	epID, err := tb.StartEndpoint(opts)
	if err != nil {
		tb.Close()
		b.Fatal(err)
	}
	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		tb.Close()
		b.Fatal(err)
	}
	e := &benchEnv{
		tb:     tb,
		client: sdk.NewClient(tb.ServiceAddr(), tok.Value),
		conn:   bc.AsConn(),
		dial:   bc,
		objs:   objectstore.NewClient(tb.ObjectsSrv.Addr()),
		epID:   epID,
	}
	b.Cleanup(func() {
		bc.Close()
		tb.Close()
	})
	return e
}

// --- T1: executor streaming vs polling ---

func benchTasksThrough(b *testing.B, ex *sdk.Executor) {
	b.Helper()
	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fut, err := ex.Submit(fn, i)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fut.ResultWithin(60 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecutorStreaming(b *testing.B) {
	e := newBenchEnv(b, core.EndpointOptions{})
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: e.client, EndpointID: e.epID, Conn: e.conn, Objects: e.objs,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ex.Close()
	benchTasksThrough(b, ex)
}

func BenchmarkClientPolling(b *testing.B) {
	for _, interval := range []time.Duration{10 * time.Millisecond, 100 * time.Millisecond} {
		b.Run(interval.String(), func(b *testing.B) {
			e := newBenchEnv(b, core.EndpointOptions{})
			ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
				Client: e.client, EndpointID: e.epID, // no Conn: polling
				PollInterval: interval, Objects: e.objs,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer ex.Close()
			benchTasksThrough(b, ex)
		})
	}
}

// --- T2: request batching ---

func benchBatchArm(b *testing.B, window time.Duration, maxBatch int) {
	e := newBenchEnv(b, core.EndpointOptions{})
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: e.client, EndpointID: e.epID, Conn: e.conn, Objects: e.objs,
		BatchWindow: window, MaxBatch: maxBatch,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ex.Close()
	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	b.ResetTimer()
	futs := make([]*sdk.Future, b.N)
	for i := 0; i < b.N; i++ {
		fut, err := ex.Submit(fn, i)
		if err != nil {
			b.Fatal(err)
		}
		futs[i] = fut
	}
	for _, fut := range futs {
		if _, err := fut.ResultWithin(120 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(e.client.Requests.Load())/float64(b.N), "rest-reqs/task")
}

func BenchmarkSubmitBatched(b *testing.B) {
	benchBatchArm(b, 2*time.Millisecond, 512)
}

func BenchmarkSubmitUnbatched(b *testing.B) {
	benchBatchArm(b, time.Nanosecond, 1)
}

// --- T3/T4: ShellFunction mechanics ---

func BenchmarkShellFunction(b *testing.B) {
	e := newBenchEnv(b, core.EndpointOptions{SandboxRoot: b.TempDir()})
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: e.client, EndpointID: e.epID, Conn: e.conn, Objects: e.objs,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ex.Close()
	sf := sdk.NewShellFunction("echo bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fut, err := ex.SubmitShell(sf, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fut.ResultWithin(60 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSandboxOverhead(b *testing.B) {
	for _, sandboxed := range []bool{false, true} {
		name := "shared"
		if sandboxed {
			name = "sandboxed"
		}
		b.Run(name, func(b *testing.B) {
			e := newBenchEnv(b, core.EndpointOptions{SandboxRoot: b.TempDir()})
			ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
				Client: e.client, EndpointID: e.epID, Conn: e.conn, Objects: e.objs,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer ex.Close()
			sf := sdk.NewShellFunction("true")
			sf.Sandbox = sandboxed
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fut, err := ex.SubmitShell(sf, nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := fut.ResultWithin(60 * time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T5/A2: MPI engine packing ---

func benchMPIEngine(b *testing.B, strategy mpiengine.Strategy, serial bool) {
	const blockNodes = 8
	specs := workload.MPISpecs(1, 64, blockNodes)
	sched := scheduler.SimpleCluster(blockNodes)
	defer sched.Close()
	prov, err := provider.NewBatch(provider.BatchConfig{
		Scheduler: sched, Partition: "default", NodesPerBlock: blockNodes,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := mpiengine.New(mpiengine.Config{Provider: prov, Strategy: strategy})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer eng.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := specs[i%len(specs)]
		payload, _ := protocol.EncodePayload(protocol.ShellSpec{Command: "true"})
		if err := eng.Submit(protocol.Task{
			ID: protocol.NewUUID(), Kind: protocol.KindMPI, Payload: payload,
			Resources: protocol.ResourceSpec{NumNodes: s.Nodes, RanksPerNode: 1},
		}); err != nil {
			b.Fatal(err)
		}
		if serial {
			<-eng.Results()
		}
	}
	if !serial {
		for i := 0; i < b.N; i++ {
			<-eng.Results()
		}
	}
}

func BenchmarkMPIEnginePacking(b *testing.B) {
	b.Run("packed-fifo", func(b *testing.B) { benchMPIEngine(b, mpiengine.FIFO, false) })
	b.Run("packed-smallest-first", func(b *testing.B) { benchMPIEngine(b, mpiengine.SmallestFirst, false) })
	b.Run("serial-baseline", func(b *testing.B) { benchMPIEngine(b, mpiengine.FIFO, true) })
}

func BenchmarkPartitionerStrategies(b *testing.B) {
	for _, s := range []mpiengine.Strategy{mpiengine.FIFO, mpiengine.SmallestFirst, mpiengine.LargestFirst} {
		b.Run(string(s), func(b *testing.B) { benchMPIEngine(b, s, false) })
	}
}

// --- T6: MEP config-hash reuse ---

func BenchmarkMEPReuse(b *testing.B) {
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	tok, _ := tb.IssueToken("bench@uchicago.edu", "uchicago")
	mapper, err := idmap.NewExpressionMapper([]idmap.Rule{{
		Match: `(.*)@uchicago\.edu`, Output: "{0}",
	}})
	if err != nil {
		b.Fatal(err)
	}
	mepID, _, err := tb.StartMEP(core.MEPOptions{
		Name: "bench-mep", Owner: "admin@uchicago.edu",
		Mapper: mapper,
	})
	if err != nil {
		b.Fatal(err)
	}
	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer bc.Close()
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client:     sdk.NewClient(tb.ServiceAddr(), tok.Value),
		EndpointID: mepID, Conn: bc.AsConn(),
		Objects: objectstore.NewClient(tb.ObjectsSrv.Addr()),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ex.Close()
	ex.UserEndpointConfig = map[string]any{"NODES_PER_BLOCK": 1, "ACCOUNT_ID": "bench"}
	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	// Pay the spawn once, outside the timer.
	fut, err := ex.Submit(fn, "warmup")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := fut.ResultWithin(60 * time.Second); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fut, err := ex.Submit(fn, i)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fut.ResultWithin(60 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T8: payload paths ---

func BenchmarkPayloadViaCloud(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			e := newBenchEnv(b, core.EndpointOptions{})
			ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
				Client: e.client, EndpointID: e.epID, Conn: e.conn, Objects: e.objs,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer ex.Close()
			payload := strings.Repeat("v", size)
			fn := &sdk.PythonFunction{Entrypoint: "identity"}
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fut, err := ex.Submit(fn, payload)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := fut.ResultWithin(120 * time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPayloadViaProxy(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			e := newBenchEnv(b, core.EndpointOptions{})
			ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
				Client: e.client, EndpointID: e.epID, Conn: e.conn, Objects: e.objs,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer ex.Close()
			store, err := proxystore.NewStore("bench",
				proxystore.ObjectStoreConnector{Backend: e.tb.Objects}, 16)
			if err != nil {
				b.Fatal(err)
			}
			payload := strings.Repeat("v", size)
			fn := &sdk.PythonFunction{Entrypoint: "identity"}
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				proxy, err := store.Put(payload)
				if err != nil {
					b.Fatal(err)
				}
				ref := proxy.Reference()
				fut, err := ex.Submit(fn, map[string]any{"ps_store": ref.Store, "ps_key": ref.Key})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := fut.ResultWithin(120 * time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- A1: manager multiplexing ---

// BenchmarkManagerMultiplexing compares one manager multiplexing N workers
// (the paper's "communication with nodes is multiplexed via managers")
// against N single-worker managers.
func BenchmarkManagerMultiplexing(b *testing.B) {
	const workers = 8
	for _, cfg := range []struct {
		name               string
		managers, perBlock int
	}{
		{"1-manager-x8-workers", 1, workers},
		{"8-managers-x1-worker", 8, 1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			eng, err := engine.New(engine.Config{
				Provider: provider.NewLocal(cfg.perBlock),
				Run: func(_ context.Context, task protocol.Task, w engine.WorkerInfo) protocol.Result {
					return protocol.Result{State: protocol.StateSuccess}
				},
				InitBlocks: cfg.managers, MinBlocks: cfg.managers, MaxBlocks: cfg.managers,
				WorkersPerNode: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Start(); err != nil {
				b.Fatal(err)
			}
			defer eng.Stop()
			// Wait for all managers to connect.
			deadline := time.Now().Add(5 * time.Second)
			for eng.Stats().TotalWorkers < workers {
				if time.Now().After(deadline) {
					b.Fatalf("workers = %d", eng.Stats().TotalWorkers)
				}
				time.Sleep(time.Millisecond)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Submit(protocol.Task{ID: protocol.NewUUID()}); err != nil {
					b.Fatal(err)
				}
				<-eng.Results()
			}
		})
	}
}

// BenchmarkEngineTransport compares the in-process channel interchange
// against the framed-TCP transport (the real engine's ZeroMQ-style
// topology) on the same workload.
func BenchmarkEngineTransport(b *testing.B) {
	for _, transport := range []string{"channel", "tcp"} {
		b.Run(transport, func(b *testing.B) {
			eng, err := engine.New(engine.Config{
				Provider: provider.NewLocal(4),
				Run: func(_ context.Context, task protocol.Task, w engine.WorkerInfo) protocol.Result {
					return protocol.Result{State: protocol.StateSuccess, Output: task.Payload}
				},
				InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
				WorkersPerNode: 1,
				Transport:      transport,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Start(); err != nil {
				b.Fatal(err)
			}
			defer eng.Stop()
			deadline := time.Now().Add(5 * time.Second)
			for eng.Stats().TotalWorkers < 4 {
				if time.Now().After(deadline) {
					b.Fatalf("workers = %d", eng.Stats().TotalWorkers)
				}
				time.Sleep(time.Millisecond)
			}
			payload := bytes.Repeat([]byte("t"), 256)
			b.SetBytes(256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Submit(protocol.Task{ID: protocol.NewUUID(), Payload: payload}); err != nil {
					b.Fatal(err)
				}
				<-eng.Results()
			}
		})
	}
}

// --- substrate microbenchmarks ---

func BenchmarkBrokerPublishConsume(b *testing.B) {
	brk := broker.New()
	defer brk.Close()
	brk.Declare("bench")
	c, _ := brk.Consume("bench", 64)
	body := bytes.Repeat([]byte("m"), 512)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := brk.Publish("bench", body); err != nil {
			b.Fatal(err)
		}
		m := <-c.Messages()
		c.Ack(m.Tag)
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	task := protocol.Task{ID: protocol.NewUUID(), Kind: protocol.KindShell, Payload: bytes.Repeat([]byte("p"), 256)}
	env := protocol.MustEnvelope(protocol.EnvTask, string(task.ID), task)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		w := protocol.NewFrameWriter(&buf)
		if err := w.Write(env); err != nil {
			b.Fatal(err)
		}
		r := protocol.NewFrameReader(&buf)
		if _, err := r.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStateStoreTaskLifecycle(b *testing.B) {
	s := statestore.New()
	ep := protocol.NewUUID()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task := protocol.Task{ID: protocol.NewUUID(), EndpointID: ep, Kind: protocol.KindPython}
		if err := s.CreateTask(task); err != nil {
			b.Fatal(err)
		}
		s.TransitionTask(task.ID, protocol.StateWaiting)
		s.TransitionTask(task.ID, protocol.StateDelivered)
		s.CompleteTask(protocol.Result{TaskID: task.ID, State: protocol.StateSuccess})
	}
}

func BenchmarkFig2TraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace := workload.Fig2Trace(workload.Fig2Config{Seed: int64(i)})
		if len(trace) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkBrokerSaturation pushes b.N messages through the TCP broker,
// unbatched (one publish + one ack round trip per message) vs batched (32
// per frame) — the PR-3 wire-batching speedup, measured by the harness that
// gc-bench -exp saturation records into BENCH_pr3.json.
func BenchmarkBrokerSaturation(b *testing.B) {
	for _, batch := range []int{1, 32} {
		name := "tcp-unbatched"
		if batch > 1 {
			name = fmt.Sprintf("tcp-batched-%d", batch)
		}
		b.Run(name, func(b *testing.B) {
			brk := broker.New()
			if err := brk.Declare("sat"); err != nil {
				b.Fatal(err)
			}
			srv, err := broker.Serve(brk, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			var bc *broker.Client
			if batch > 1 {
				bc, err = broker.DialBatched(srv.Addr(), broker.BatchConfig{MaxBatch: batch})
			} else {
				bc, err = broker.Dial(srv.Addr())
			}
			if err != nil {
				b.Fatal(err)
			}
			defer bc.Close()
			sub, err := bc.Consume("sat", 2*batch+64)
			if err != nil {
				b.Fatal(err)
			}
			defer sub.Cancel()
			done := make(chan struct{})
			go func() {
				defer close(done)
				seen := 0
				tags := make([]uint64, 0, batch)
				for m := range sub.Messages() {
					tags = append(tags, m.Tag)
					seen++
					if len(tags) >= batch || seen == b.N {
						_ = sub.AckBatch(tags)
						tags = tags[:0]
					}
					if seen == b.N {
						return
					}
				}
			}()
			body := bytes.Repeat([]byte("x"), 64)
			b.ResetTimer()
			if batch <= 1 {
				for i := 0; i < b.N; i++ {
					if err := bc.Publish("sat", body); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				for i := 0; i < b.N; i += batch {
					k := batch
					if b.N-i < k {
						k = b.N - i
					}
					bodies := make([][]byte, k)
					for j := range bodies {
						bodies[j] = body
					}
					if err := bc.PublishBatch("sat", bodies, nil); err != nil {
						b.Fatal(err)
					}
				}
			}
			<-done
		})
	}
}
